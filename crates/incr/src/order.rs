//! Order maintenance by list labeling.
//!
//! An [`OrderMaintenance`] structure maintains a totally ordered list of
//! items under `insert-after` / `insert-first` / `delete`, answering
//! "does `a` precede `b`?" in O(1) by comparing integer *tags*.  Tags live
//! in a bounded universe; when an insertion finds no gap, the smallest
//! enclosing dyadic tag range whose density is at most 1/4 is relabelled
//! with evenly spaced tags (the classic Itai–Konheim–Rodeh / Bender
//! list-labeling scheme).  With the default 62-bit universe, relabels are
//! essentially never observed at realistic sizes; the amortized bound —
//! O(log n) tag reassignments per insertion — is what the property tests
//! pin against a naive full-renumber oracle (with a deliberately tiny
//! universe to force the relabel machinery to actually run).
//!
//! This is the structure that lets preorder/postorder-style comparisons
//! survive document edits without renumbering every node: node ids may
//! shift wholesale on each edit, but the order tags of untouched nodes
//! never move, so interval-shaped relation rows keyed by order remain
//! valid (see `xpath_incr::live`).

/// Stable handle to one item of an [`OrderMaintenance`] list.
///
/// Slots survive relabels (which change tags, not slots) and are only
/// invalidated by [`OrderMaintenance::delete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot(pub u32);

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Rec {
    prev: u32,
    next: u32,
    tag: u64,
    alive: bool,
}

/// An order-maintenance list over a bounded tag universe.
#[derive(Debug, Clone)]
pub struct OrderMaintenance {
    recs: Vec<Rec>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    /// log2 of the tag universe size.
    bits: u32,
    /// Total tag reassignments performed by relabel windows (monotone).
    relabels: u64,
}

impl Default for OrderMaintenance {
    fn default() -> Self {
        OrderMaintenance::new()
    }
}

impl OrderMaintenance {
    /// An empty list over the default 62-bit tag universe.
    pub fn new() -> OrderMaintenance {
        OrderMaintenance::with_universe_bits(62)
    }

    /// An empty list over a `bits`-bit tag universe (capacity `2^(bits-2)`
    /// items).  Small universes exist so tests can force the relabel path;
    /// production uses [`OrderMaintenance::new`].
    pub fn with_universe_bits(bits: u32) -> OrderMaintenance {
        assert!((4..=62).contains(&bits), "universe must be 4..=62 bits");
        OrderMaintenance {
            recs: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            bits,
            relabels: 0,
        }
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total tag reassignments performed so far (for amortized-bound tests).
    pub fn relabel_count(&self) -> u64 {
        self.relabels
    }

    fn universe(&self) -> u64 {
        1u64 << self.bits
    }

    fn alloc(&mut self, prev: u32, next: u32, tag: u64) -> Slot {
        let id = match self.free.pop() {
            Some(id) => {
                self.recs[id as usize] = Rec { prev, next, tag, alive: true };
                id
            }
            None => {
                self.recs.push(Rec { prev, next, tag, alive: true });
                (self.recs.len() - 1) as u32
            }
        };
        if prev == NIL {
            self.head = id;
        } else {
            self.recs[prev as usize].next = id;
        }
        if next == NIL {
            self.tail = id;
        } else {
            self.recs[next as usize].prev = id;
        }
        self.len += 1;
        Slot(id)
    }

    fn rec(&self, s: Slot) -> &Rec {
        let r = &self.recs[s.0 as usize];
        assert!(r.alive, "slot {s:?} was deleted");
        r
    }

    /// The current tag of a slot.  Tags order the list but are unstable
    /// across relabels; compare via [`OrderMaintenance::precedes`] instead
    /// of caching tags.
    pub fn tag(&self, s: Slot) -> u64 {
        self.rec(s).tag
    }

    /// Does `a` precede `b` in the list order?  O(1).
    #[inline]
    pub fn precedes(&self, a: Slot, b: Slot) -> bool {
        self.rec(a).tag < self.rec(b).tag
    }

    /// Insert a new item at the front of the list.
    pub fn insert_first(&mut self) -> Slot {
        self.insert_between(NIL, self.head)
    }

    /// Insert a new item immediately after `after`.
    pub fn insert_after(&mut self, after: Slot) -> Slot {
        let next = self.rec(after).next;
        self.insert_between(after.0, next)
    }

    /// Delete an item.  Its slot becomes invalid; tags of other items do
    /// not move.
    pub fn delete(&mut self, s: Slot) {
        let Rec { prev, next, .. } = *self.rec(s);
        if prev == NIL {
            self.head = next;
        } else {
            self.recs[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.recs[next as usize].prev = prev;
        }
        self.recs[s.0 as usize].alive = false;
        self.free.push(s.0);
        self.len -= 1;
    }

    /// Iterate slots in list order (for tests and rebuilds).
    pub fn iter(&self) -> impl Iterator<Item = Slot> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let s = Slot(cur);
            cur = self.recs[cur as usize].next;
            Some(s)
        })
    }

    fn insert_between(&mut self, prev: u32, next: u32) -> Slot {
        if self.len == 0 {
            let mid = self.universe() / 2;
            return self.alloc(NIL, NIL, mid);
        }
        loop {
            // Virtual boundary tags: -1 on the far left, `universe` on the
            // far right (both exclusive), so `gap >= 2` means a free tag
            // strictly between the neighbours exists.
            let left: i128 = if prev == NIL { -1 } else { self.recs[prev as usize].tag as i128 };
            let right: i128 = if next == NIL {
                self.universe() as i128
            } else {
                self.recs[next as usize].tag as i128
            };
            debug_assert!(left < right, "list tags out of order");
            let gap = right - left;
            if gap >= 2 {
                // Midpoint insertion halves the available gap each time, so
                // a pure append (or prepend) run would burn through the
                // boundary gap in O(bits) steps and then relabel on every
                // insertion.  Bias boundary insertions by a fixed stride
                // instead: appends land `stride` past the tail, prepends
                // `stride` before the head, giving ~universe/stride
                // relabel-free sequential insertions.
                let stride = 1i128 << (self.bits / 2);
                let tag = if next == NIL && gap > stride {
                    left + stride
                } else if prev == NIL && gap > stride {
                    right - stride
                } else {
                    left + gap / 2
                };
                return self.alloc(prev, next, tag as u64);
            }
            // No gap: relabel the smallest enclosing dyadic range whose
            // density is <= 1/4, anchored at the crowded neighbour.
            let anchor = if prev != NIL { prev } else { next };
            self.relabel_window(anchor);
        }
    }

    /// Find the smallest dyadic tag range around `anchor` whose occupancy is
    /// at most a quarter of its size, and respace its items evenly with a
    /// margin of `step/2` at both ends (so every boundary gap is >= 2).
    fn relabel_window(&mut self, anchor: u32) {
        let anchor_tag = self.recs[anchor as usize].tag;
        for j in 2..=self.bits {
            let width = 1u64 << j;
            let start = anchor_tag & !(width - 1);
            // Collect the window members by walking both directions from the
            // anchor — the list is tag-ordered, so members are contiguous.
            let mut first = anchor;
            loop {
                let p = self.recs[first as usize].prev;
                if p == NIL || self.recs[p as usize].tag < start {
                    break;
                }
                first = p;
            }
            let mut members: Vec<u32> = Vec::new();
            let mut cur = first;
            while cur != NIL && self.recs[cur as usize].tag < start + width {
                members.push(cur);
                cur = self.recs[cur as usize].next;
            }
            let count = members.len() as u64;
            if count <= width / 4 {
                let step = width / count;
                debug_assert!(step >= 4);
                for (i, &id) in members.iter().enumerate() {
                    self.recs[id as usize].tag = start + i as u64 * step + step / 2;
                }
                self.relabels += count;
                return;
            }
        }
        panic!(
            "order-maintenance universe exhausted: {} items in a {}-bit tag space",
            self.len, self.bits
        );
    }

    /// Check internal invariants (tests only): tags strictly increase along
    /// the list and stay inside the universe.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_tag: Option<u64> = None;
        let mut seen = 0usize;
        for s in self.iter() {
            let t = self.tag(s);
            if t >= self.universe() {
                return Err(format!("tag {t} outside the universe"));
            }
            if let Some(p) = prev_tag {
                if p >= t {
                    return Err(format!("tags not strictly increasing: {p} >= {t}"));
                }
            }
            prev_tag = Some(t);
            seen += 1;
        }
        if seen != self.len {
            return Err(format!("len {} but iterated {seen}", self.len));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_compare() {
        let mut om = OrderMaintenance::new();
        let a = om.insert_first();
        let b = om.insert_after(a);
        let c = om.insert_after(a);
        // List order: a, c, b.
        assert!(om.precedes(a, c));
        assert!(om.precedes(c, b));
        assert!(om.precedes(a, b));
        assert!(!om.precedes(b, a));
        assert_eq!(om.len(), 3);
        om.check_invariants().unwrap();
    }

    #[test]
    fn delete_frees_slots() {
        let mut om = OrderMaintenance::new();
        let a = om.insert_first();
        let b = om.insert_after(a);
        om.delete(a);
        assert_eq!(om.len(), 1);
        let c = om.insert_first();
        assert!(om.precedes(c, b));
        om.check_invariants().unwrap();
    }

    #[test]
    fn adversarial_front_insertion_forces_relabels_but_stays_ordered() {
        // A tiny universe makes the relabel window machinery run for real.
        let mut om = OrderMaintenance::with_universe_bits(8);
        let mut order: Vec<Slot> = vec![om.insert_first()];
        for _ in 0..40 {
            order.insert(0, om.insert_first());
            om.check_invariants().unwrap();
        }
        for w in order.windows(2) {
            assert!(om.precedes(w[0], w[1]));
        }
        assert!(om.relabel_count() > 0, "a 8-bit universe must relabel");
    }

    #[test]
    #[should_panic(expected = "universe exhausted")]
    fn overfull_universe_panics() {
        let mut om = OrderMaintenance::with_universe_bits(4);
        let mut last = om.insert_first();
        for _ in 0..16 {
            last = om.insert_after(last);
        }
    }

    #[test]
    fn default_universe_never_relabels_at_small_scale() {
        // Sequential appends (how a LiveDoc tour is built) and prepends
        // must both be relabel-free in the 62-bit universe.
        let mut om = OrderMaintenance::new();
        let mut last = om.insert_first();
        for _ in 0..10_000 {
            last = om.insert_after(last);
        }
        for _ in 0..10_000 {
            om.insert_first();
        }
        assert_eq!(om.relabel_count(), 0);
        om.check_invariants().unwrap();
    }
}
