//! Unions of acyclic conjunctive queries (ACQ∨) — Proposition 9.
//!
//! Proposition 9 of the paper relates `HCL⁻(L)` to *finite unions* of ACQs:
//! every `HCL⁻` expression is equivalent to a union of union-free
//! expressions, obtained by distributing unions upwards — "possibly at the
//! cost of an exponential blowup".  This module implements that direction:
//!
//! * [`UnionAcq`] — a union of conjunctive queries sharing one database;
//! * [`distribute_unions`] — rewrite an HCL expression into its union-free
//!   disjuncts (with an explicit disjunct budget, since the blowup is
//!   exponential in the worst case);
//! * [`hcl_to_union_acq`] — the full HCL⁻ → ACQ∨ translation, used to
//!   cross-check the Fig. 8 algorithm against Yannakakis on queries *with*
//!   unions (the union-free case is covered by [`crate::from_hcl`]).

use crate::db::BinaryDatabase;
use crate::from_hcl::{hcl_to_acq, FromHclError};
use crate::query::ConjunctiveQuery;
use crate::yannakakis::{answer_acq, AcqError};
use std::collections::BTreeSet;
use std::fmt;
use xpath_ast::{BinExpr, Var};
use xpath_hcl::Hcl;
use xpath_tree::{NodeId, Tree};

/// A union of conjunctive queries over a shared binary database.
#[derive(Debug, Clone)]
pub struct UnionAcq {
    /// The disjuncts (each answered independently; answers are unioned).
    pub disjuncts: Vec<ConjunctiveQuery>,
    /// The shared database of binary relations.
    pub db: BinaryDatabase,
}

impl UnionAcq {
    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// True when there are no disjuncts (the empty query).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Answer the union by answering every disjunct with Yannakakis and
    /// taking the union of the answer sets.
    pub fn answer(&self) -> Result<BTreeSet<Vec<NodeId>>, AcqError> {
        let mut out = BTreeSet::new();
        for q in &self.disjuncts {
            out.extend(answer_acq(q, &self.db)?);
        }
        Ok(out)
    }
}

/// Errors of the HCL⁻ → ACQ∨ translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnionAcqError {
    /// Distributing the unions would exceed the disjunct budget.
    TooManyDisjuncts { budget: usize },
    /// A disjunct could not be translated (should not happen for union-free
    /// inputs produced by [`distribute_unions`]).
    Disjunct(FromHclError),
}

impl fmt::Display for UnionAcqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnionAcqError::TooManyDisjuncts { budget } => write!(
                f,
                "distributing unions exceeds the disjunct budget of {budget} \
                 (the blowup of Prop. 9 is exponential in the worst case)"
            ),
            UnionAcqError::Disjunct(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UnionAcqError {}

/// Distribute unions upwards, producing the union-free disjuncts of an HCL
/// expression (Prop. 9).  Fails once more than `budget` disjuncts would be
/// produced.
pub fn distribute_unions<B: Clone>(
    hcl: &Hcl<B>,
    budget: usize,
) -> Result<Vec<Hcl<B>>, UnionAcqError> {
    fn go<B: Clone>(hcl: &Hcl<B>, budget: usize) -> Result<Vec<Hcl<B>>, UnionAcqError> {
        let out = match hcl {
            Hcl::Atom(b) => vec![Hcl::Atom(b.clone())],
            Hcl::Var(x) => vec![Hcl::Var(x.clone())],
            Hcl::Union(a, b) => {
                let mut left = go(a, budget)?;
                let right = go(b, budget)?;
                left.extend(right);
                left
            }
            Hcl::Seq(a, b) => {
                let left = go(a, budget)?;
                let right = go(b, budget)?;
                let mut combined = Vec::with_capacity(left.len() * right.len());
                for l in &left {
                    for r in &right {
                        combined.push(l.clone().then(r.clone()));
                    }
                }
                combined
            }
            Hcl::Filter(inner) => go(inner, budget)?
                .into_iter()
                .map(|d| Hcl::Filter(Box::new(d)))
                .collect(),
        };
        if out.len() > budget {
            return Err(UnionAcqError::TooManyDisjuncts { budget });
        }
        Ok(out)
    }
    go(hcl, budget)
}

/// Translate an `HCL⁻(PPLbin)` expression (possibly containing unions) into
/// a union of ACQs over one database, materialised on `tree`.
pub fn hcl_to_union_acq(
    tree: &Tree,
    hcl: &Hcl<BinExpr>,
    output: &[Var],
    budget: usize,
) -> Result<UnionAcq, UnionAcqError> {
    let disjunct_exprs = distribute_unions(hcl, budget)?;
    // Build one database over the union of all atoms so relation ids are
    // shared; the easiest way is to translate each disjunct with its own
    // database and then merge, but merging relation ids is error-prone.
    // Instead, translate each disjunct separately and answer it over its own
    // database — except that UnionAcq carries one db.  To keep one shared
    // db, collect the distinct atoms of the whole expression first.
    let mut atoms: Vec<BinExpr> = Vec::new();
    for a in hcl.atoms() {
        if !atoms.contains(a) {
            atoms.push(a.clone());
        }
    }
    let db = BinaryDatabase::from_binexprs(tree, &atoms);

    // Re-translate every disjunct against the shared atom ordering by reusing
    // `hcl_to_acq` (which builds its own db) and remapping relation ids by
    // expression equality.
    let mut disjuncts = Vec::with_capacity(disjunct_exprs.len());
    for d in &disjunct_exprs {
        let (cq, local_db) = hcl_to_acq(tree, d, output).map_err(UnionAcqError::Disjunct)?;
        // Remap the local relation ids onto the shared database by matching
        // relation names (the printed PPLbin expressions, which are unique).
        let remapped_atoms = cq
            .atoms
            .iter()
            .map(|atom| {
                let name = local_db.name(atom.relation.0);
                let shared = (0..db.relation_count())
                    .find(|&r| db.name(r) == name)
                    .expect("every disjunct atom occurs in the full expression");
                crate::query::Atom {
                    relation: crate::query::RelId(shared),
                    x: atom.x.clone(),
                    y: atom.y.clone(),
                }
            })
            .collect();
        disjuncts.push(ConjunctiveQuery::new(remapped_atoms, cq.output));
    }
    Ok(UnionAcq { disjuncts, db })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::parse_path;
    use xpath_hcl::answer_hcl_pplbin;

    fn bin(src: &str) -> BinExpr {
        from_variable_free_path(&parse_path(src).unwrap()).unwrap()
    }

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    fn bib() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title),paper(title))")
            .unwrap()
    }

    #[test]
    fn distribution_counts_disjuncts() {
        let c: Hcl<BinExpr> = Hcl::Atom(bin("child::a"))
            .or(Hcl::Atom(bin("child::b")))
            .then(Hcl::Atom(bin("child::c")).or(Hcl::Atom(bin("child::d"))));
        let disjuncts = distribute_unions(&c, 16).unwrap();
        assert_eq!(disjuncts.len(), 4);
        assert!(disjuncts.iter().all(|d| d.is_union_free()));
        // Budget enforcement.
        assert_eq!(
            distribute_unions(&c, 3).unwrap_err(),
            UnionAcqError::TooManyDisjuncts { budget: 3 }
        );
    }

    #[test]
    fn union_acq_matches_hcl_on_queries_with_unions() {
        let t = bib();
        let output = [v("x")];
        let queries: Vec<Hcl<BinExpr>> = vec![
            // (descendant::author ∪ descendant::title)/x
            Hcl::Atom(bin("descendant::author"))
                .or(Hcl::Atom(bin("descendant::title")))
                .then(Hcl::Var(v("x"))),
            // descendant::book/([child::author/x] ∪ [child::title/x])
            Hcl::Atom(bin("descendant::book")).then(
                Hcl::Filter(Box::new(Hcl::Atom(bin("child::author")).then(Hcl::Var(v("x")))))
                    .or(Hcl::Filter(Box::new(
                        Hcl::Atom(bin("child::title")).then(Hcl::Var(v("x"))),
                    ))),
            ),
        ];
        for hcl in queries {
            let via_hcl = answer_hcl_pplbin(&t, &hcl, &output).unwrap();
            let union_acq = hcl_to_union_acq(&t, &hcl, &output, 64).unwrap();
            assert!(union_acq.len() >= 2);
            assert!(!union_acq.is_empty());
            let via_acq = union_acq.answer().unwrap();
            assert_eq!(via_acq, via_hcl, "{hcl}");
        }
    }

    #[test]
    fn union_free_expressions_give_a_single_disjunct() {
        let t = bib();
        let hcl = Hcl::Atom(bin("descendant::book")).then(Hcl::Var(v("b")));
        let union_acq = hcl_to_union_acq(&t, &hcl, &[v("b")], 8).unwrap();
        assert_eq!(union_acq.len(), 1);
        assert_eq!(
            union_acq.answer().unwrap(),
            answer_hcl_pplbin(&t, &hcl, &[v("b")]).unwrap()
        );
    }

    #[test]
    fn error_display() {
        let e = UnionAcqError::TooManyDisjuncts { budget: 4 };
        assert!(e.to_string().contains("budget of 4"));
    }
}
