//! Conjunctive queries over binary relations.
//!
//! A conjunctive query is a set of atoms `r(x, y)` over relation names of a
//! [`crate::BinaryDatabase`], together with a sequence of output variables:
//!
//! ```text
//! Q(x₁,…,xₙ) :- r₁(y₁, z₁), …, r_k(y_k, z_k)
//! ```
//!
//! Non-output variables are existentially quantified.  The query is
//! *acyclic* when its hypergraph admits a join forest (see
//! [`crate::acyclic`]).

use std::collections::BTreeSet;
use std::fmt;
use xpath_ast::Var;

/// Identifier of a relation in the accompanying [`crate::BinaryDatabase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub usize);

/// One atom `r(x, y)` of a conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation applied by the atom.
    pub relation: RelId,
    /// First argument.
    pub x: Var,
    /// Second argument.
    pub y: Var,
}

impl Atom {
    /// Create an atom.
    pub fn new(relation: RelId, x: &str, y: &str) -> Atom {
        Atom {
            relation,
            x: Var::new(x),
            y: Var::new(y),
        }
    }

    /// The set of variables of the atom (one element for self-loops
    /// `r(x, x)`).
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        s.insert(self.x.clone());
        s.insert(self.y.clone());
        s
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}({}, {})", self.relation.0, self.x.name(), self.y.name())
    }
}

/// A conjunctive query over binary relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// The body atoms (conjuncts).
    pub atoms: Vec<Atom>,
    /// The output (free) variables, in answer-tuple order.
    pub output: Vec<Var>,
}

impl ConjunctiveQuery {
    /// Create a query.
    pub fn new(atoms: Vec<Atom>, output: Vec<Var>) -> ConjunctiveQuery {
        ConjunctiveQuery { atoms, output }
    }

    /// All variables occurring in the body.
    pub fn body_vars(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// `|Q|` — number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if the body is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Output arity `n`.
    pub fn arity(&self) -> usize {
        self.output.len()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let outs: Vec<&str> = self.output.iter().map(|v| v.name()).collect();
        write!(f, "Q({}) :- ", outs.join(", "))?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_vars_and_display() {
        let a = Atom::new(RelId(0), "x", "y");
        assert_eq!(a.vars().len(), 2);
        assert_eq!(a.to_string(), "r0(x, y)");
        let self_loop = Atom::new(RelId(1), "x", "x");
        assert_eq!(self_loop.vars().len(), 1);
    }

    #[test]
    fn query_accessors() {
        let q = ConjunctiveQuery::new(
            vec![Atom::new(RelId(0), "x", "y"), Atom::new(RelId(1), "y", "z")],
            vec![Var::new("x"), Var::new("z")],
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.arity(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.body_vars().len(), 3);
        assert_eq!(q.to_string(), "Q(x, z) :- r0(x, y), r1(y, z)");
    }
}
