//! Acyclicity testing and join-forest construction (the GYO reduction).
//!
//! A conjunctive query is (α-)acyclic iff the GYO reduction eliminates all
//! of its hyperedges.  The reduction repeatedly
//!
//! 1. removes *ear* vertices that occur in a single hyperedge, and
//! 2. removes a hyperedge whose (remaining) vertex set is contained in
//!    another hyperedge, attaching it to that hyperedge in the join forest.
//!
//! For queries over binary relations the hyperedges have at most two
//! vertices, but the implementation below works for the general definition
//! so it can serve as a reusable component.

use crate::query::ConjunctiveQuery;
use std::collections::BTreeSet;
use xpath_ast::Var;

/// A join forest over the atoms of a query: `parent[i]` is the parent atom
/// of atom `i`, or `None` for roots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinForest {
    /// Parent pointers, indexed by atom position in the query.
    pub parent: Vec<Option<usize>>,
}

impl JoinForest {
    /// The children of each atom (derived from the parent pointers).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.parent.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                out[*p].push(i);
            }
        }
        out
    }

    /// The root atoms.
    pub fn roots(&self) -> Vec<usize> {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// A bottom-up (children before parents) ordering of the atoms.
    pub fn bottom_up_order(&self) -> Vec<usize> {
        let children = self.children();
        let mut order = Vec::with_capacity(self.parent.len());
        let mut stack: Vec<(usize, bool)> = self.roots().into_iter().map(|r| (r, false)).collect();
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
            } else {
                stack.push((node, true));
                for &c in &children[node] {
                    stack.push((c, false));
                }
            }
        }
        order
    }
}

/// Run the GYO reduction on the query's hypergraph.
///
/// Returns a join forest over the atoms when the query is acyclic, or
/// `None` when it is cyclic.
pub fn gyo_join_forest(query: &ConjunctiveQuery) -> Option<JoinForest> {
    let n = query.atoms.len();
    let mut edges: Vec<Option<BTreeSet<Var>>> =
        query.atoms.iter().map(|a| Some(a.vars())).collect();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut removed = 0usize;

    while removed < n {
        let mut progress = false;

        // Rule 1: drop vertices occurring in exactly one remaining edge.
        let mut counts: std::collections::HashMap<&Var, usize> = std::collections::HashMap::new();
        for e in edges.iter().flatten() {
            for v in e {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let lonely: BTreeSet<Var> = counts
            .iter()
            .filter(|(_, &c)| c == 1)
            .map(|(v, _)| (*v).clone())
            .collect();
        drop(counts);
        if !lonely.is_empty() {
            for e in edges.iter_mut().flatten() {
                let before = e.len();
                e.retain(|v| !lonely.contains(v));
                if e.len() != before {
                    progress = true;
                }
            }
        }

        // Rule 2: remove an edge whose vertices are contained in another
        // remaining edge (or that became empty), attaching it there.
        'outer: for i in 0..n {
            let Some(ei) = edges[i].clone() else { continue };
            if ei.is_empty() {
                // An isolated atom: becomes a root of its own tree.
                edges[i] = None;
                removed += 1;
                progress = true;
                continue;
            }
            for j in 0..n {
                if i == j {
                    continue;
                }
                let Some(ej) = &edges[j] else { continue };
                if ei.is_subset(ej) {
                    parent[i] = Some(j);
                    edges[i] = None;
                    removed += 1;
                    progress = true;
                    continue 'outer;
                }
            }
        }

        if !progress {
            return None; // cyclic
        }
    }
    Some(JoinForest { parent })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Atom, RelId};

    fn q(atoms: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery::new(atoms, vec![])
    }

    #[test]
    fn path_query_is_acyclic() {
        let query = q(vec![
            Atom::new(RelId(0), "x", "y"),
            Atom::new(RelId(1), "y", "z"),
            Atom::new(RelId(2), "z", "w"),
        ]);
        let forest = gyo_join_forest(&query).expect("path queries are acyclic");
        assert_eq!(forest.parent.len(), 3);
        // Exactly one root, and the bottom-up order visits children first.
        assert_eq!(forest.roots().len(), 1);
        let order = forest.bottom_up_order();
        assert_eq!(order.len(), 3);
        for (i, &atom) in order.iter().enumerate() {
            if let Some(p) = forest.parent[atom] {
                assert!(order[i + 1..].contains(&p), "parent must come after child");
            }
        }
    }

    #[test]
    fn star_query_is_acyclic() {
        let query = q(vec![
            Atom::new(RelId(0), "c", "a"),
            Atom::new(RelId(1), "c", "b"),
            Atom::new(RelId(2), "c", "d"),
        ]);
        assert!(gyo_join_forest(&query).is_some());
    }

    #[test]
    fn triangle_query_is_cyclic() {
        let query = q(vec![
            Atom::new(RelId(0), "x", "y"),
            Atom::new(RelId(1), "y", "z"),
            Atom::new(RelId(2), "z", "x"),
        ]);
        assert!(gyo_join_forest(&query).is_none());
    }

    #[test]
    fn longer_cycle_is_cyclic_but_chord_free_tree_is_not() {
        let square = q(vec![
            Atom::new(RelId(0), "a", "b"),
            Atom::new(RelId(1), "b", "c"),
            Atom::new(RelId(2), "c", "d"),
            Atom::new(RelId(3), "d", "a"),
        ]);
        assert!(gyo_join_forest(&square).is_none());
        let tree = q(vec![
            Atom::new(RelId(0), "a", "b"),
            Atom::new(RelId(1), "b", "c"),
            Atom::new(RelId(2), "b", "d"),
            Atom::new(RelId(3), "d", "e"),
        ]);
        assert!(gyo_join_forest(&tree).is_some());
    }

    #[test]
    fn parallel_edges_and_self_loops_are_acyclic() {
        let query = q(vec![
            Atom::new(RelId(0), "x", "y"),
            Atom::new(RelId(1), "x", "y"),
            Atom::new(RelId(2), "y", "y"),
        ]);
        let forest = gyo_join_forest(&query).expect("contained edges are ears");
        assert_eq!(forest.parent.len(), 3);
    }

    #[test]
    fn disconnected_queries_build_a_forest() {
        let query = q(vec![
            Atom::new(RelId(0), "x", "y"),
            Atom::new(RelId(1), "u", "v"),
        ]);
        let forest = gyo_join_forest(&query).unwrap();
        assert_eq!(forest.roots().len(), 2);
    }

    #[test]
    fn empty_query_is_acyclic() {
        let forest = gyo_join_forest(&q(vec![])).unwrap();
        assert!(forest.parent.is_empty());
        assert!(forest.roots().is_empty());
        assert!(forest.bottom_up_order().is_empty());
    }
}
