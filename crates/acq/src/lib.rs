//! # `xpath_acq` — acyclic conjunctive queries over binary relations
//!
//! Section 6 of the paper relates `HCL⁻(L)` to (unions of) acyclic
//! conjunctive queries (ACQ) over the binary relations `q_b(t)`, `b ∈ L`,
//! and derives the polynomial bound of Prop. 7 from Yannakakis' algorithm,
//! which answers an ACQ `Q` over a database `db` in time
//! `O(|db| · |Q| · |Q(db)|)`.
//!
//! This crate implements that machinery from scratch:
//!
//! * [`db::BinaryDatabase`] — the relational database
//!   `db = {q_b(t) | b ∈ L}` of binary relations over `nodes(t)`, built from
//!   PPLbin expressions (via the matrix engine) or from raw axis relations;
//! * [`query::ConjunctiveQuery`] — conjunctive queries whose atoms are
//!   binary relation applications `r(x, y)` with designated output
//!   variables;
//! * [`acyclic`] — the GYO reduction: acyclicity test and join-forest
//!   construction;
//! * [`yannakakis`] — the semijoin program (bottom-up + top-down passes)
//!   followed by an output-sensitive join along the join forest;
//! * [`from_hcl`] — the translation of union-free `HCL⁻(PPLbin)`
//!   expressions into ACQs over the atoms' relations (Prop. 8 direction),
//!   used to cross-check Yannakakis against the Fig. 8 algorithm.

#![forbid(unsafe_code)]

pub mod acyclic;
pub mod db;
pub mod from_hcl;
pub mod query;
pub mod union;
pub mod yannakakis;

pub use acyclic::{gyo_join_forest, JoinForest};
pub use db::BinaryDatabase;
pub use from_hcl::{hcl_to_acq, hcl_to_cq};
pub use query::{Atom, ConjunctiveQuery, RelId};
pub use union::{distribute_unions, hcl_to_union_acq, UnionAcq};
pub use yannakakis::{answer_acq, brute_force_answer, AcqError};
