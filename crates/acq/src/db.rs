//! The relational database `db = {q_b(t) | b ∈ L}` of Section 6.

use xpath_ast::{BinExpr, NameTest};
use xpath_pplbin::answer_binary;
use xpath_tree::{Axis, NodeId, Tree};

/// A database of named binary relations over the nodes of one tree.
#[derive(Debug, Clone)]
pub struct BinaryDatabase {
    names: Vec<String>,
    /// `relations[r]` — sorted, deduplicated pair list.
    relations: Vec<Vec<(NodeId, NodeId)>>,
    /// `by_first[r][u]` — successors of `u` in relation `r`.
    by_first: Vec<Vec<Vec<NodeId>>>,
    /// `by_second[r][v]` — predecessors of `v` in relation `r`.
    by_second: Vec<Vec<Vec<NodeId>>>,
    domain: usize,
}

impl BinaryDatabase {
    /// Build a database from explicit pair lists.
    pub fn new(domain: usize, relations: Vec<(String, Vec<(NodeId, NodeId)>)>) -> BinaryDatabase {
        let mut names = Vec::with_capacity(relations.len());
        let mut rels = Vec::with_capacity(relations.len());
        let mut by_first = Vec::with_capacity(relations.len());
        let mut by_second = Vec::with_capacity(relations.len());
        for (name, mut pairs) in relations {
            pairs.sort_unstable();
            pairs.dedup();
            let mut firsts = vec![Vec::new(); domain];
            let mut seconds = vec![Vec::new(); domain];
            for &(u, v) in &pairs {
                firsts[u.index()].push(v);
                seconds[v.index()].push(u);
            }
            names.push(name);
            rels.push(pairs);
            by_first.push(firsts);
            by_second.push(seconds);
        }
        BinaryDatabase {
            names,
            relations: rels,
            by_first,
            by_second,
            domain,
        }
    }

    /// Build the database for a set of PPLbin expressions on a tree, using
    /// the Boolean-matrix engine for each relation.
    pub fn from_binexprs(tree: &Tree, exprs: &[BinExpr]) -> BinaryDatabase {
        let relations = exprs
            .iter()
            .map(|b| (b.to_string(), answer_binary(tree, b).pairs()))
            .collect();
        BinaryDatabase::new(tree.len(), relations)
    }

    /// Build the database for a set of raw axis steps on a tree.
    pub fn from_axes(tree: &Tree, axes: &[(Axis, NameTest)]) -> BinaryDatabase {
        let relations = axes
            .iter()
            .map(|(axis, test)| {
                let mut pairs = Vec::new();
                for u in tree.nodes() {
                    for v in tree.axis_iter(*axis, u) {
                        if test.matches(tree.label_str(v)) {
                            pairs.push((u, v));
                        }
                    }
                }
                (format!("{axis}::{test}"), pairs)
            })
            .collect();
        BinaryDatabase::new(tree.len(), relations)
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Size of the node domain.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Total number of tuples, `|db|` in the paper's accounting.
    pub fn size(&self) -> usize {
        self.relations.iter().map(Vec::len).sum()
    }

    /// Name of a relation.
    pub fn name(&self, r: usize) -> &str {
        &self.names[r]
    }

    /// The pairs of relation `r`.
    pub fn pairs(&self, r: usize) -> &[(NodeId, NodeId)] {
        &self.relations[r]
    }

    /// Successors of `u` in relation `r`.
    pub fn successors(&self, r: usize, u: NodeId) -> &[NodeId] {
        &self.by_first[r][u.index()]
    }

    /// Predecessors of `v` in relation `r`.
    pub fn predecessors(&self, r: usize, v: NodeId) -> &[NodeId] {
        &self.by_second[r][v.index()]
    }

    /// Membership test.
    pub fn contains(&self, r: usize, u: NodeId, v: NodeId) -> bool {
        self.by_first[r][u.index()].binary_search(&v).is_ok()
            || self.by_first[r][u.index()].contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::parse_path;

    fn tree() -> Tree {
        Tree::from_terms("a(b(c),b(c,c))").unwrap()
    }

    #[test]
    fn from_binexprs_matches_matrix_pairs() {
        let t = tree();
        let child = from_variable_free_path(&parse_path("child::*").unwrap()).unwrap();
        let desc_c = from_variable_free_path(&parse_path("descendant::c").unwrap()).unwrap();
        let db = BinaryDatabase::from_binexprs(&t, &[child.clone(), desc_c.clone()]);
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.domain(), t.len());
        assert_eq!(db.pairs(0), answer_binary(&t, &child).pairs().as_slice());
        assert_eq!(db.pairs(1), answer_binary(&t, &desc_c).pairs().as_slice());
        assert_eq!(db.size(), db.pairs(0).len() + db.pairs(1).len());
        assert!(db.name(0).contains("child"));
    }

    #[test]
    fn indexes_are_consistent_with_pairs() {
        let t = tree();
        let db = BinaryDatabase::from_axes(
            &t,
            &[(Axis::Child, NameTest::Wildcard), (Axis::Descendant, NameTest::name("c"))],
        );
        for r in 0..db.relation_count() {
            for &(u, v) in db.pairs(r) {
                assert!(db.successors(r, u).contains(&v));
                assert!(db.predecessors(r, v).contains(&u));
                assert!(db.contains(r, u, v));
            }
            for u in t.nodes() {
                for &v in db.successors(r, u) {
                    assert!(db.pairs(r).contains(&(u, v)));
                }
            }
        }
    }

    #[test]
    fn duplicate_pairs_are_removed() {
        let db = BinaryDatabase::new(
            3,
            vec![(
                "r".into(),
                vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(1)), (NodeId(2), NodeId(0))],
            )],
        );
        assert_eq!(db.size(), 2);
        assert_eq!(db.successors(0, NodeId(0)), &[NodeId(1)]);
    }
}
