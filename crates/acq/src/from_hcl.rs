//! Translation of union-free `HCL⁻(PPLbin)` expressions into acyclic
//! conjunctive queries (the direction of Prop. 8 used for cross-checking the
//! two answering algorithms).
//!
//! The translation follows Prop. 6: walking the composition structure from
//! left to right introduces a fresh variable for every intermediate node;
//! HCL variables `x` are unified with the current position; filters `[C]`
//! branch off with their own fresh tail variable.  The resulting query graph
//! is tree-shaped, hence acyclic.

use crate::db::BinaryDatabase;
use crate::query::{Atom, ConjunctiveQuery, RelId};
use std::collections::HashMap;
use std::fmt;
use xpath_ast::{BinExpr, Var};
use xpath_hcl::Hcl;
use xpath_tree::Tree;

/// Errors of the HCL → ACQ translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromHclError {
    /// The expression contains a union; only the union-free fragment
    /// corresponds to a single conjunctive query (unions correspond to
    /// unions of ACQs).
    ContainsUnion,
}

impl fmt::Display for FromHclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromHclError::ContainsUnion => {
                write!(f, "only union-free HCL expressions translate to a single ACQ")
            }
        }
    }
}

impl std::error::Error for FromHclError {}

/// Translate a union-free `HCL⁻(PPLbin)` expression into a conjunctive
/// query plus the binary database of its atoms, materialised on `tree`.
///
/// The query's output variables are `output`; the start and end nodes of the
/// navigation are existentially quantified (fresh internal variables), as in
/// the n-ary query semantics `q_{C,x}`.
pub fn hcl_to_acq(
    tree: &Tree,
    hcl: &Hcl<BinExpr>,
    output: &[Var],
) -> Result<(ConjunctiveQuery, BinaryDatabase), FromHclError> {
    let (query, relations) = hcl_to_cq(hcl, output)?;
    let db = BinaryDatabase::from_binexprs(tree, &relations);
    Ok((query, db))
}

/// Translate a union-free `HCL⁻(PPLbin)` expression into a conjunctive
/// query *without* materialising the binary database — no tree is needed
/// and no PPLbin expression is evaluated.  Returns the query together with
/// its distinct atom relations (indexed by [`crate::query::RelId`]), so
/// callers that only need the query's *shape* — e.g. a planner probing GYO
/// acyclicity — pay translation cost only.
pub fn hcl_to_cq(
    hcl: &Hcl<BinExpr>,
    output: &[Var],
) -> Result<(ConjunctiveQuery, Vec<BinExpr>), FromHclError> {
    if !hcl.is_union_free() {
        return Err(FromHclError::ContainsUnion);
    }
    let mut builder = Builder {
        atoms: Vec::new(),
        relations: Vec::new(),
        relation_ids: HashMap::new(),
        fresh: 0,
        unions: UnionFind::default(),
    };
    let start = builder.fresh_var();
    builder.translate(hcl, start);

    // Apply the variable unification produced by HCL variable tests.
    let atoms = builder
        .atoms
        .iter()
        .map(|a| Atom {
            relation: a.relation,
            x: builder.unions.resolve(&a.x),
            y: builder.unions.resolve(&a.y),
        })
        .collect();
    let output_resolved: Vec<Var> = output.iter().map(|v| builder.unions.resolve(v)).collect();
    let query = ConjunctiveQuery::new(atoms, output_resolved);
    Ok((query, builder.relations))
}

#[derive(Default)]
struct UnionFind {
    parent: HashMap<Var, Var>,
}

impl UnionFind {
    fn resolve(&self, v: &Var) -> Var {
        let mut cur = v.clone();
        while let Some(next) = self.parent.get(&cur) {
            cur = next.clone();
        }
        cur
    }

    fn unify(&mut self, a: &Var, b: &Var) {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        if ra != rb {
            // Prefer keeping user-visible variables as representatives:
            // internal variables start with "__".
            if ra.name().starts_with("__") {
                self.parent.insert(ra, rb);
            } else {
                self.parent.insert(rb, ra);
            }
        }
    }
}

struct Builder {
    atoms: Vec<Atom>,
    relations: Vec<BinExpr>,
    relation_ids: HashMap<BinExpr, RelId>,
    fresh: usize,
    unions: UnionFind,
}

impl Builder {
    fn fresh_var(&mut self) -> Var {
        let v = Var::new(&format!("__v{}", self.fresh));
        self.fresh += 1;
        v
    }

    fn relation(&mut self, b: &BinExpr) -> RelId {
        if let Some(id) = self.relation_ids.get(b) {
            return *id;
        }
        let id = RelId(self.relations.len());
        self.relations.push(b.clone());
        self.relation_ids.insert(b.clone(), id);
        id
    }

    /// Translate `hcl`, navigating from the variable `current`; returns the
    /// variable denoting the end of the navigation.
    fn translate(&mut self, hcl: &Hcl<BinExpr>, current: Var) -> Var {
        match hcl {
            Hcl::Atom(b) => {
                let rel = self.relation(b);
                let next = self.fresh_var();
                self.atoms.push(Atom {
                    relation: rel,
                    x: current,
                    y: next.clone(),
                });
                next
            }
            Hcl::Var(x) => {
                // The variable test succeeds only when the current node *is*
                // α(x): unify the two variables.
                self.unions.unify(&current, x);
                current
            }
            Hcl::Seq(a, b) => {
                let mid = self.translate(a, current);
                self.translate(b, mid)
            }
            Hcl::Filter(inner) => {
                // [C] keeps the current node; the navigation inside the
                // filter uses its own existential tail.
                self.translate(inner, current.clone());
                current
            }
            Hcl::Union(_, _) => unreachable!("checked union-free before translation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yannakakis::answer_acq;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::parse_path;
    use xpath_hcl::answer_hcl_pplbin;

    fn bin(src: &str) -> BinExpr {
        from_variable_free_path(&parse_path(src).unwrap()).unwrap()
    }

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    fn check_against_hcl(tree: &Tree, hcl: &Hcl<BinExpr>, output: &[Var]) {
        let (query, db) = hcl_to_acq(tree, hcl, output).unwrap();
        let via_yannakakis = answer_acq(&query, &db).unwrap();
        let via_hcl = answer_hcl_pplbin(tree, hcl, output).unwrap();
        assert_eq!(
            via_yannakakis, via_hcl,
            "Yannakakis and the Fig. 8 algorithm disagree on {hcl}"
        );
    }

    fn bib() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title))").unwrap()
    }

    #[test]
    fn chain_queries_agree_with_hcl() {
        let t = bib();
        let hcl = Hcl::Atom(bin("descendant::book"))
            .then(Hcl::Atom(bin("child::author")))
            .then(Hcl::Var(v("a")));
        check_against_hcl(&t, &hcl, &[v("a")]);
    }

    #[test]
    fn filter_queries_agree_with_hcl() {
        let t = bib();
        let hcl = Hcl::Atom(bin("descendant::book"))
            .then(Hcl::Filter(Box::new(
                Hcl::Atom(bin("child::author")).then(Hcl::Var(v("x"))),
            )))
            .then(Hcl::Atom(bin("child::title")))
            .then(Hcl::Var(v("y")));
        check_against_hcl(&t, &hcl, &[v("x"), v("y")]);
    }

    #[test]
    fn boolean_and_free_variable_queries_agree() {
        let t = bib();
        let sat = Hcl::Atom(bin("descendant::title"));
        check_against_hcl(&t, &sat, &[]);
        check_against_hcl(&t, &sat, &[v("free")]);
        let unsat = Hcl::Atom(bin("descendant::publisher"));
        check_against_hcl(&t, &unsat, &[v("free")]);
    }

    #[test]
    fn unions_are_rejected() {
        let t = bib();
        let hcl = Hcl::Atom(bin("child::*")).or(Hcl::Atom(bin("descendant::*")));
        assert_eq!(
            hcl_to_acq(&t, &hcl, &[]).unwrap_err(),
            FromHclError::ContainsUnion
        );
    }

    #[test]
    fn produced_queries_are_acyclic_and_reuse_relations() {
        let t = bib();
        let hcl = Hcl::Atom(bin("child::*"))
            .then(Hcl::Atom(bin("child::*")))
            .then(Hcl::Var(v("x")));
        let (query, db) = hcl_to_acq(&t, &hcl, &[v("x")]).unwrap();
        assert_eq!(query.len(), 2);
        assert_eq!(db.relation_count(), 1, "equal atoms must share a relation");
        assert!(crate::acyclic::gyo_join_forest(&query).is_some());
        // Output variable is the (unified) end of the chain.
        assert!(query.output[0].name() == "x");
    }
}
