//! Yannakakis' algorithm for acyclic conjunctive queries (Prop. 7).
//!
//! The classical three phases over a join forest:
//!
//! 1. **bottom-up semijoins** — every parent is reduced to the tuples that
//!    join with each of its children;
//! 2. **top-down semijoins** — every child is reduced to the tuples that
//!    join with its (already reduced) parent;
//! 3. **output-sensitive join** — the reduced relations are joined along the
//!    forest, projecting intermediate results onto the output variables plus
//!    the connector variables, so intermediate sizes stay bounded by the
//!    projections of the final answer.
//!
//! The combined running time is `O(|db| · |Q| · |Q(db)|)`, the bound the
//! paper imports from Yannakakis (its reference \[24\]).

use crate::acyclic::{gyo_join_forest, JoinForest};
use crate::db::BinaryDatabase;
use crate::query::ConjunctiveQuery;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use xpath_ast::Var;
use xpath_tree::NodeId;

/// Errors of the ACQ answering pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcqError {
    /// The query hypergraph is cyclic; Yannakakis' algorithm does not apply.
    CyclicQuery,
    /// An atom refers to a relation id outside the database.
    UnknownRelation(usize),
}

impl fmt::Display for AcqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcqError::CyclicQuery => write!(f, "the conjunctive query is cyclic"),
            AcqError::UnknownRelation(r) => write!(f, "unknown relation id r{r}"),
        }
    }
}

impl std::error::Error for AcqError {}

/// A tuple over a subset of the query variables.
type Row = BTreeMap<Var, NodeId>;

/// Answer an acyclic conjunctive query with Yannakakis' algorithm.
pub fn answer_acq(
    query: &ConjunctiveQuery,
    db: &BinaryDatabase,
) -> Result<BTreeSet<Vec<NodeId>>, AcqError> {
    for atom in &query.atoms {
        if atom.relation.0 >= db.relation_count() {
            return Err(AcqError::UnknownRelation(atom.relation.0));
        }
    }
    let forest = gyo_join_forest(query).ok_or(AcqError::CyclicQuery)?;

    // Materialise each atom as a set of rows over its variables.
    let mut relations: Vec<Vec<Row>> = query
        .atoms
        .iter()
        .map(|atom| {
            db.pairs(atom.relation.0)
                .iter()
                .filter_map(|&(u, v)| {
                    if atom.x == atom.y && u != v {
                        return None; // self-loop atom r(x, x) keeps only the diagonal
                    }
                    let mut row = Row::new();
                    row.insert(atom.x.clone(), u);
                    row.insert(atom.y.clone(), v);
                    Some(row)
                })
                .collect::<Vec<Row>>()
        })
        .collect();

    // Empty body: satisfiable with the empty tuple, extended over the output.
    if query.atoms.is_empty() {
        let rows = vec![Row::new()];
        return Ok(project(&rows, &query.output, db.domain()));
    }

    let order = forest.bottom_up_order();

    // Phase 1: bottom-up semijoins (child reduces parent).
    for &i in &order {
        if let Some(p) = forest.parent[i] {
            let shared = shared_vars(query, i, p);
            let keys = key_set(&relations[i], &shared);
            relations[p].retain(|row| keys.contains(&key_of(row, &shared)));
        }
    }

    // Phase 2: top-down semijoins (parent reduces child).
    for &i in order.iter().rev() {
        if let Some(p) = forest.parent[i] {
            let shared = shared_vars(query, i, p);
            let keys = key_set(&relations[p], &shared);
            relations[i].retain(|row| keys.contains(&key_of(row, &shared)));
        }
    }

    // Phase 3: join along the forest with projection onto output ∪ connector
    // variables.
    let output_set: BTreeSet<Var> = query.output.iter().cloned().collect();
    let children = forest.children();
    let mut combined: Vec<Row> = vec![Row::new()];
    for root in forest.roots() {
        let subtree = join_subtree(
            root,
            &relations,
            &children,
            &forest,
            query,
            &output_set,
        );
        combined = join_rows(&combined, &subtree);
        combined = project_rows(&combined, &output_set);
        if combined.is_empty() {
            return Ok(BTreeSet::new());
        }
    }
    Ok(project(&combined, &query.output, db.domain()))
}

fn shared_vars(query: &ConjunctiveQuery, i: usize, j: usize) -> Vec<Var> {
    query.atoms[i]
        .vars()
        .intersection(&query.atoms[j].vars())
        .cloned()
        .collect()
}

fn key_of(row: &Row, vars: &[Var]) -> Vec<NodeId> {
    vars.iter().map(|v| row[v]).collect()
}

fn key_set(rows: &[Row], vars: &[Var]) -> HashSet<Vec<NodeId>> {
    rows.iter().map(|r| key_of(r, vars)).collect()
}

fn join_subtree(
    node: usize,
    relations: &[Vec<Row>],
    children: &[Vec<usize>],
    forest: &JoinForest,
    query: &ConjunctiveQuery,
    output: &BTreeSet<Var>,
) -> Vec<Row> {
    let mut current = relations[node].clone();
    for &child in &children[node] {
        let child_rows = join_subtree(child, relations, children, forest, query, output);
        current = join_rows(&current, &child_rows);
    }
    // Keep only the output variables and the connector to the parent.
    let mut keep: BTreeSet<Var> = output.clone();
    if let Some(p) = forest.parent[node] {
        keep.extend(shared_vars(query, node, p));
    }
    project_rows(&current, &keep)
}

fn join_rows(left: &[Row], right: &[Row]) -> Vec<Row> {
    let mut out = Vec::new();
    for a in left {
        'rows: for b in right {
            let mut merged = a.clone();
            for (k, v) in b {
                match merged.get(k) {
                    Some(existing) if existing != v => continue 'rows,
                    _ => {
                        merged.insert(k.clone(), *v);
                    }
                }
            }
            out.push(merged);
        }
    }
    dedup_rows(out)
}

fn project_rows(rows: &[Row], keep: &BTreeSet<Var>) -> Vec<Row> {
    let projected: Vec<Row> = rows
        .iter()
        .map(|r| {
            r.iter()
                .filter(|(k, _)| keep.contains(*k))
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        })
        .collect();
    dedup_rows(projected)
}

fn dedup_rows(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: BTreeSet<Vec<(Var, NodeId)>> = BTreeSet::new();
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        let key: Vec<(Var, NodeId)> = r.iter().map(|(k, v)| (k.clone(), *v)).collect();
        if seen.insert(key) {
            out.push(r);
        }
    }
    out
}

/// Project joined rows onto the output variable sequence, extending output
/// variables that do not occur in the body over the whole domain.
fn project(rows: &[Row], output: &[Var], domain: usize) -> BTreeSet<Vec<NodeId>> {
    let mut result = BTreeSet::new();
    for row in rows {
        let mut partial: Vec<Vec<NodeId>> = vec![Vec::new()];
        for var in output {
            match row.get(var) {
                Some(&v) => {
                    for t in partial.iter_mut() {
                        t.push(v);
                    }
                }
                None => {
                    let mut next = Vec::with_capacity(partial.len() * domain);
                    for t in partial {
                        for node in 0..domain {
                            let mut extended = t.clone();
                            extended.push(NodeId(node as u32));
                            next.push(extended);
                        }
                    }
                    partial = next;
                }
            }
        }
        result.extend(partial);
    }
    result
}

/// Reference implementation: enumerate every assignment of the body and
/// output variables and test all atoms.  Exponential; used only to validate
/// Yannakakis on small inputs.
pub fn brute_force_answer(
    query: &ConjunctiveQuery,
    db: &BinaryDatabase,
) -> BTreeSet<Vec<NodeId>> {
    let mut vars: Vec<Var> = query.body_vars().into_iter().collect();
    for v in &query.output {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    let mut out = BTreeSet::new();
    let mut assignment: Row = Row::new();
    brute_rec(query, db, &vars, 0, &mut assignment, &mut out);
    out
}

fn brute_rec(
    query: &ConjunctiveQuery,
    db: &BinaryDatabase,
    vars: &[Var],
    idx: usize,
    assignment: &mut Row,
    out: &mut BTreeSet<Vec<NodeId>>,
) {
    if idx == vars.len() {
        let ok = query.atoms.iter().all(|a| {
            db.pairs(a.relation.0)
                .contains(&(assignment[&a.x], assignment[&a.y]))
        });
        if ok {
            out.insert(query.output.iter().map(|v| assignment[v]).collect());
        }
        return;
    }
    for node in 0..db.domain() {
        assignment.insert(vars[idx].clone(), NodeId(node as u32));
        brute_rec(query, db, vars, idx + 1, assignment, out);
    }
    assignment.remove(&vars[idx]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Atom, RelId};
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::parse_path;
    use xpath_tree::Tree;

    fn tree() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title),paper(title))")
            .unwrap()
    }

    fn db(t: &Tree, sources: &[&str]) -> BinaryDatabase {
        let exprs: Vec<_> = sources
            .iter()
            .map(|s| from_variable_free_path(&parse_path(s).unwrap()).unwrap())
            .collect();
        BinaryDatabase::from_binexprs(t, &exprs)
    }

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    #[test]
    fn path_query_matches_brute_force() {
        let t = tree();
        let database = db(&t, &["child::book", "child::author", "child::title"]);
        // Q(a, ti) :- child::book(r, b), child::author(b, a), child::title(b, ti)
        let query = ConjunctiveQuery::new(
            vec![
                Atom::new(RelId(0), "r", "b"),
                Atom::new(RelId(1), "b", "a"),
                Atom::new(RelId(2), "b", "ti"),
            ],
            vec![v("a"), v("ti")],
        );
        let fast = answer_acq(&query, &database).unwrap();
        let slow = brute_force_answer(&query, &database);
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 3);
    }

    #[test]
    fn star_query_and_projection() {
        let t = tree();
        let database = db(&t, &["child::*", "descendant::title"]);
        // Q(x) :- child(x, y), descendant-title(x, z): books/papers with a
        // child and a title below.
        let query = ConjunctiveQuery::new(
            vec![Atom::new(RelId(0), "x", "y"), Atom::new(RelId(1), "x", "z")],
            vec![v("x")],
        );
        let fast = answer_acq(&query, &database).unwrap();
        assert_eq!(fast, brute_force_answer(&query, &database));
        assert!(fast
            .iter()
            .all(|tup| ["bib", "book", "paper"].contains(&t.label_str(tup[0]))));
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let t = tree();
        let database = db(&t, &["child::*"]);
        let query = ConjunctiveQuery::new(
            vec![
                Atom::new(RelId(0), "x", "y"),
                Atom::new(RelId(0), "y", "z"),
                Atom::new(RelId(0), "z", "x"),
            ],
            vec![v("x")],
        );
        assert_eq!(answer_acq(&query, &database), Err(AcqError::CyclicQuery));
    }

    #[test]
    fn unknown_relations_are_rejected() {
        let t = tree();
        let database = db(&t, &["child::*"]);
        let query = ConjunctiveQuery::new(vec![Atom::new(RelId(7), "x", "y")], vec![v("x")]);
        assert_eq!(
            answer_acq(&query, &database),
            Err(AcqError::UnknownRelation(7))
        );
    }

    #[test]
    fn empty_body_and_free_output_variables() {
        let t = tree();
        let database = db(&t, &["child::*"]);
        let query = ConjunctiveQuery::new(vec![], vec![v("w")]);
        let ans = answer_acq(&query, &database).unwrap();
        assert_eq!(ans.len(), t.len());
        // Boolean query with empty body: exactly the empty tuple.
        let boolean = ConjunctiveQuery::new(vec![], vec![]);
        assert_eq!(answer_acq(&boolean, &database).unwrap().len(), 1);
    }

    #[test]
    fn unsatisfiable_queries_give_empty_answers() {
        let t = tree();
        let database = db(&t, &["child::publisher", "child::book"]);
        let query = ConjunctiveQuery::new(
            vec![Atom::new(RelId(0), "x", "y"), Atom::new(RelId(1), "y", "z")],
            vec![v("x"), v("z")],
        );
        assert!(answer_acq(&query, &database).unwrap().is_empty());
    }

    #[test]
    fn self_loop_atoms_keep_only_the_diagonal() {
        let t = tree();
        let database = db(&t, &["descendant-or-self::*"]);
        // r(x, x) over descendant-or-self is the identity: every node.
        let query = ConjunctiveQuery::new(vec![Atom::new(RelId(0), "x", "x")], vec![v("x")]);
        let ans = answer_acq(&query, &database).unwrap();
        assert_eq!(ans.len(), t.len());
        assert_eq!(ans, brute_force_answer(&query, &database));
    }

    #[test]
    fn disconnected_queries_take_a_cartesian_product() {
        let t = Tree::from_terms("r(a,b)").unwrap();
        let database = db(&t, &["child::a", "child::b"]);
        let query = ConjunctiveQuery::new(
            vec![Atom::new(RelId(0), "x", "y"), Atom::new(RelId(1), "u", "w")],
            vec![v("y"), v("w")],
        );
        let ans = answer_acq(&query, &database).unwrap();
        assert_eq!(ans, brute_force_answer(&query, &database));
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn deep_chain_query_matches_brute_force() {
        let t = Tree::from_terms("a(b(c(d(e))))").unwrap();
        let database = db(&t, &["child::*"]);
        let query = ConjunctiveQuery::new(
            vec![
                Atom::new(RelId(0), "v0", "v1"),
                Atom::new(RelId(0), "v1", "v2"),
                Atom::new(RelId(0), "v2", "v3"),
                Atom::new(RelId(0), "v3", "v4"),
            ],
            vec![v("v0"), v("v4")],
        );
        let fast = answer_acq(&query, &database).unwrap();
        assert_eq!(fast, brute_force_answer(&query, &database));
        assert_eq!(fast.len(), 1);
    }
}
