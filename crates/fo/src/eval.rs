//! Tarskian satisfaction and n-ary FO query answering (the FO baseline).

use crate::formula::Formula;
use std::collections::{BTreeMap, BTreeSet};
use xpath_ast::Var;
use xpath_tree::{NodeId, Tree};

/// A variable assignment for FO evaluation.
pub type FoAssignment = BTreeMap<Var, NodeId>;

/// `t, α ⊨ φ` — the usual Tarskian satisfaction relation.
///
/// Free variables of `φ` must be bound by `alpha`; panics otherwise (the
/// query-level entry points below always provide total assignments).
pub fn fo_satisfies(tree: &Tree, phi: &Formula, alpha: &FoAssignment) -> bool {
    match phi {
        Formula::NsStar(x, y) => {
            let vx = lookup(alpha, x);
            let vy = lookup(alpha, y);
            tree.is_following_sibling_or_self(vy, vx)
        }
        Formula::ChStar(x, y) => {
            let vx = lookup(alpha, x);
            let vy = lookup(alpha, y);
            tree.is_descendant_or_self(vy, vx)
        }
        Formula::Label(label, x) => tree.label_str(lookup(alpha, x)) == label,
        Formula::Not(f) => !fo_satisfies(tree, f, alpha),
        Formula::And(a, b) => fo_satisfies(tree, a, alpha) && fo_satisfies(tree, b, alpha),
        Formula::Exists(x, body) => tree.nodes().any(|v| {
            let mut extended = alpha.clone();
            extended.insert(x.clone(), v);
            fo_satisfies(tree, body, &extended)
        }),
    }
}

fn lookup(alpha: &FoAssignment, v: &Var) -> NodeId {
    *alpha
        .get(v)
        .unwrap_or_else(|| panic!("unbound FO variable {v}"))
}

/// Answer the n-ary FO query `q_{φ,x}(t) = {(α(x₁),…,α(xₙ)) | t, α ⊨ φ}` by
/// enumerating all assignments of the output variables (free variables of
/// `φ` not listed in `x` are existentially closed first, so the answer
/// depends only on `x`).
pub fn fo_answer_nary(tree: &Tree, phi: &Formula, x: &[Var]) -> BTreeSet<Vec<NodeId>> {
    // Existentially close the free variables that are not output variables.
    let mut closed = phi.clone();
    for v in phi.free_vars() {
        if !x.contains(&v) {
            closed = Formula::Exists(v, Box::new(closed));
        }
    }
    let mut out = BTreeSet::new();
    let mut alpha = FoAssignment::new();
    enumerate(tree, &closed, x, 0, &mut alpha, &mut out);
    out
}

fn enumerate(
    tree: &Tree,
    phi: &Formula,
    x: &[Var],
    idx: usize,
    alpha: &mut FoAssignment,
    out: &mut BTreeSet<Vec<NodeId>>,
) {
    if idx == x.len() {
        if fo_satisfies(tree, phi, alpha) {
            out.insert(x.iter().map(|v| alpha[v]).collect());
        }
        return;
    }
    for node in tree.nodes() {
        alpha.insert(x[idx].clone(), node);
        enumerate(tree, phi, x, idx + 1, alpha, out);
    }
    alpha.remove(&x[idx]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Tree {
        Tree::from_terms("bib(book(author,title),book(title))").unwrap()
    }

    fn assign(pairs: &[(&str, NodeId)]) -> FoAssignment {
        pairs.iter().map(|(n, v)| (Var::new(n), *v)).collect()
    }

    #[test]
    fn atoms_follow_the_tree_relations() {
        let t = tree();
        let root = t.root();
        let book1 = t.nodes_with_label_str("book")[0];
        let book2 = t.nodes_with_label_str("book")[1];
        let author = t.nodes_with_label_str("author")[0];

        assert!(fo_satisfies(&t, &Formula::ch_star("x", "y"), &assign(&[("x", root), ("y", author)])));
        assert!(fo_satisfies(&t, &Formula::ch_star("x", "y"), &assign(&[("x", root), ("y", root)])));
        assert!(!fo_satisfies(&t, &Formula::ch_star("x", "y"), &assign(&[("x", author), ("y", root)])));
        assert!(fo_satisfies(&t, &Formula::ns_star("x", "y"), &assign(&[("x", book1), ("y", book2)])));
        assert!(!fo_satisfies(&t, &Formula::ns_star("x", "y"), &assign(&[("x", book2), ("y", book1)])));
        assert!(fo_satisfies(&t, &Formula::label("book", "x"), &assign(&[("x", book1)])));
        assert!(!fo_satisfies(&t, &Formula::label("book", "x"), &assign(&[("x", author)])));
    }

    #[test]
    fn connectives_and_quantifiers() {
        let t = tree();
        let root = t.root();
        // Every node is a descendant-or-self of the root.
        let all_below_root = Formula::forall("y", Formula::ch_star("x", "y"));
        assert!(fo_satisfies(&t, &all_below_root, &assign(&[("x", root)])));
        let book1 = t.nodes_with_label_str("book")[0];
        assert!(!fo_satisfies(&t, &all_below_root, &assign(&[("x", book1)])));
        // There is a book with an author child (as a descendant).
        let has_authored_book = Formula::exists(
            "b",
            Formula::label("book", "b").and(Formula::exists(
                "a",
                Formula::label("author", "a").and(Formula::ch_star("b", "a")),
            )),
        );
        assert!(fo_satisfies(&t, &has_authored_book, &FoAssignment::new()));
    }

    #[test]
    fn derived_equality() {
        let t = tree();
        let book1 = t.nodes_with_label_str("book")[0];
        let book2 = t.nodes_with_label_str("book")[1];
        assert!(fo_satisfies(&t, &Formula::eq("x", "y"), &assign(&[("x", book1), ("y", book1)])));
        assert!(!fo_satisfies(&t, &Formula::eq("x", "y"), &assign(&[("x", book1), ("y", book2)])));
    }

    #[test]
    fn nary_answers() {
        let t = tree();
        // Pairs (x, y): x is a book and y is a title below x.
        let phi = Formula::label("book", "x")
            .and(Formula::label("title", "y"))
            .and(Formula::ch_star("x", "y"));
        let ans = fo_answer_nary(&t, &phi, &[Var::new("x"), Var::new("y")]);
        assert_eq!(ans.len(), 2);
        for tuple in &ans {
            assert_eq!(t.label_str(tuple[0]), "book");
            assert_eq!(t.label_str(tuple[1]), "title");
            assert!(t.is_ancestor(tuple[1], tuple[0]));
        }
        // Unary projection: the same formula with only x as output
        // existentially closes y.
        let only_books = fo_answer_nary(&t, &phi, &[Var::new("x")]);
        assert_eq!(only_books.len(), 2);
    }

    #[test]
    fn boolean_fo_query() {
        let t = tree();
        let sat = Formula::exists("x", Formula::label("author", "x"));
        assert_eq!(fo_answer_nary(&t, &sat, &[]).len(), 1);
        let unsat = Formula::exists("x", Formula::label("publisher", "x"));
        assert!(fo_answer_nary(&t, &unsat, &[]).is_empty());
    }
}
