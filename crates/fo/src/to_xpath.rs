//! The linear-time translation from FO into Core XPath 2.0
//! (Lemma 1 / Proposition 1 of the paper).
//!
//! ```text
//! ⟦∃x.φ⟧      = for $x in nodes return ⟦φ⟧
//! ⟦¬φ⟧        = .[not ⟦φ⟧]
//! ⟦φ ∧ φ'⟧    = ⟦φ⟧ / ⟦φ'⟧
//! ⟦ns*(x,y)⟧  = $x/(following_sibling::* union .)/.[. is $y]
//! ⟦ch*(x,y)⟧  = $x/(descendant::* union .)/.[. is $y]
//! ⟦lab_a(x)⟧  = $x/self::a
//! ```
//!
//! where `nodes = (ancestor::* union .)/(descendant::* union .)` reaches
//! every node of the tree.  Correctness (Lemma 1): `t, α ⊨ φ` iff
//! `⟦⟦φ⟧⟧^{t,α} ≠ ∅`, which the tests below check differentially against the
//! naive evaluators of both logics.

use crate::formula::Formula;
use xpath_ast::expr::nodes_path;
use xpath_ast::{NameTest, NodeRef, PathExpr, TestExpr};
use xpath_tree::Axis;

/// Translate an FO formula into a Core XPath 2.0 path expression (Lemma 1).
pub fn fo_to_xpath(phi: &Formula) -> PathExpr {
    match phi {
        Formula::Exists(x, body) => PathExpr::For(
            x.clone(),
            Box::new(nodes_path()),
            Box::new(fo_to_xpath(body)),
        ),
        Formula::Not(body) => PathExpr::Filter(
            Box::new(PathExpr::NodeRef(NodeRef::Dot)),
            Box::new(TestExpr::Not(Box::new(TestExpr::Path(fo_to_xpath(body))))),
        ),
        Formula::And(a, b) => PathExpr::Seq(Box::new(fo_to_xpath(a)), Box::new(fo_to_xpath(b))),
        Formula::NsStar(x, y) => axis_literal(Axis::FollowingSibling, x, y),
        Formula::ChStar(x, y) => axis_literal(Axis::Descendant, x, y),
        Formula::Label(label, x) => PathExpr::Seq(
            Box::new(PathExpr::NodeRef(NodeRef::Var(x.clone()))),
            Box::new(PathExpr::Step(Axis::SelfAxis, NameTest::Name(label.clone()))),
        ),
    }
}

/// `$x/(axis::* union .)/.[. is $y]`
fn axis_literal(axis: Axis, x: &xpath_ast::Var, y: &xpath_ast::Var) -> PathExpr {
    let closure = PathExpr::Union(
        Box::new(PathExpr::Step(axis, NameTest::Wildcard)),
        Box::new(PathExpr::NodeRef(NodeRef::Dot)),
    );
    let is_y = PathExpr::Filter(
        Box::new(PathExpr::NodeRef(NodeRef::Dot)),
        Box::new(TestExpr::Comp(NodeRef::Dot, NodeRef::Var(y.clone()))),
    );
    PathExpr::Seq(
        Box::new(PathExpr::Seq(
            Box::new(PathExpr::NodeRef(NodeRef::Var(x.clone()))),
            Box::new(closure),
        )),
        Box::new(is_y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{fo_answer_nary, fo_satisfies, FoAssignment};
    use crate::parser::parse_formula;
    use std::collections::BTreeSet;
    use xpath_ast::Var;
    use xpath_naive::{answer_nary, boolean_query, Assignment};
    use xpath_tree::{NodeId, Tree};

    fn trees() -> Vec<Tree> {
        vec![
            Tree::from_terms("a").unwrap(),
            Tree::from_terms("a(b,c)").unwrap(),
            Tree::from_terms("bib(book(author,title),book(title))").unwrap(),
            Tree::from_terms("r(x(y(z)),x(y),w)").unwrap(),
        ]
    }

    /// Lemma 1: t, α ⊨ φ  iff  ⟦⟦φ⟧⟧^{t,α} ≠ ∅, for every assignment of the
    /// free variables.
    fn check_lemma1(tree: &Tree, phi: &Formula) {
        let xpath = fo_to_xpath(phi);
        let free: Vec<Var> = phi.free_vars().into_iter().collect();
        let mut alpha_fo = FoAssignment::new();
        check_rec(tree, phi, &xpath, &free, 0, &mut alpha_fo);
    }

    fn check_rec(
        tree: &Tree,
        phi: &Formula,
        xpath: &xpath_ast::PathExpr,
        free: &[Var],
        idx: usize,
        alpha: &mut FoAssignment,
    ) {
        if idx == free.len() {
            let fo_holds = fo_satisfies(tree, phi, alpha);
            let xp_alpha = Assignment::from_pairs(alpha.iter().map(|(v, n)| (v.clone(), *n)));
            let xp_holds = boolean_query(tree, xpath, &xp_alpha).unwrap();
            assert_eq!(
                fo_holds, xp_holds,
                "Lemma 1 violated for {phi} under {alpha:?} on {tree}"
            );
            return;
        }
        for node in tree.nodes() {
            alpha.insert(free[idx].clone(), node);
            check_rec(tree, phi, xpath, free, idx + 1, alpha);
        }
        alpha.remove(&free[idx]);
    }

    #[test]
    fn lemma1_on_literals() {
        for t in trees() {
            check_lemma1(&t, &Formula::ch_star("x", "y"));
            check_lemma1(&t, &Formula::ns_star("x", "y"));
            check_lemma1(&t, &Formula::label("book", "x"));
            check_lemma1(&t, &Formula::label("a", "x"));
        }
    }

    #[test]
    fn lemma1_on_connectives() {
        let phi1 = Formula::label("book", "x").and(Formula::ch_star("x", "y"));
        let phi2 = Formula::ch_star("x", "y").negate();
        let phi3 = Formula::label("author", "y").or(Formula::label("title", "y"));
        for t in trees() {
            check_lemma1(&t, &phi1);
            check_lemma1(&t, &phi2);
            check_lemma1(&t, &phi3);
        }
    }

    #[test]
    fn lemma1_on_quantified_formulas() {
        // ∃z. ch*(x,z) ∧ ch*(z,y)  (equivalent to ch*(x,y))
        let phi = parse_formula("exists z. chstar(x,z) and chstar(z,y)").unwrap();
        // ∃y. lab_author(y) ∧ ch*(x,y)  ("x has an author descendant")
        let psi = parse_formula("exists y. lab(author, y) and chstar(x, y)").unwrap();
        for t in trees() {
            check_lemma1(&t, &phi);
            check_lemma1(&t, &psi);
        }
    }

    #[test]
    fn translated_queries_give_the_same_nary_answers() {
        let t = Tree::from_terms("bib(book(author,title),book(title))").unwrap();
        let phi = Formula::label("book", "x")
            .and(Formula::label("title", "y"))
            .and(Formula::ch_star("x", "y"));
        let fo_ans = fo_answer_nary(&t, &phi, &[Var::new("x"), Var::new("y")]);
        let xpath = fo_to_xpath(&phi);
        let xp_ans: BTreeSet<Vec<NodeId>> =
            answer_nary(&t, &xpath, &[Var::new("x"), Var::new("y")])
                .unwrap()
                .into_iter()
                .collect();
        assert_eq!(fo_ans, xp_ans);
        assert_eq!(fo_ans.len(), 2);
    }

    #[test]
    fn translation_is_linear_in_formula_size() {
        let mut phi = Formula::label("a", "x0");
        for i in 1..40 {
            phi = phi.and(Formula::ch_star(&format!("x{}", i - 1), &format!("x{i}")));
        }
        let xpath = fo_to_xpath(&phi);
        assert!(xpath.size() <= 10 * phi.size());
    }

    #[test]
    fn quantifier_free_formulas_translate_without_for_loops() {
        // Lemma 2 direction: the image of a quantifier-free formula has no
        // for loops (and hence stays in the for-free fragment).
        let phi = Formula::label("a", "x").and(Formula::ch_star("x", "y")).negate();
        let xpath = fo_to_xpath(&phi);
        assert!(!xpath.has_for());
        let quantified = Formula::exists("x", Formula::label("a", "x"));
        assert!(fo_to_xpath(&quantified).has_for());
    }
}
