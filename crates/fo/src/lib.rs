//! # `xpath_fo` — first-order logic over unranked trees
//!
//! Section 2 of the paper works with FO logic over unranked trees with the
//! signature `{ns*, ch*, lab_a}`:
//!
//! ```text
//! φ := ns*(x, y) | ch*(x, y) | lab_a(x) | ¬φ | φ₁ ∧ φ₂ | ∃x φ
//! ```
//!
//! This crate provides:
//!
//! * [`formula::Formula`] — the FO abstract syntax, with derived connectives
//!   (`∨`, `→`, `∀`, node equality `x = y` as `ch*(x,y) ∧ ch*(y,x)`);
//! * [`parser`] — a small concrete syntax (`exists x. chstar(x,y) and lab(book, x)`);
//! * [`eval`] — the Tarskian satisfaction relation `t, α ⊨ φ` and n-ary FO
//!   query answering `q_{φ,x}(t)` by assignment enumeration (the FO
//!   baseline);
//! * [`to_xpath`] — the linear-time translation `⟦φ⟧` of FO into
//!   Core XPath 2.0 (Lemma 1 / Proposition 1), with
//!   `∃x.φ ↦ for $x in nodes return ⟦φ⟧`, `¬φ ↦ .[not ⟦φ⟧]`,
//!   `φ∧φ' ↦ ⟦φ⟧/⟦φ'⟧` and the two axis literals mapped to navigation
//!   paths anchored at `$x`.
//!
//! The crate is used by the FO-completeness example and by the benchmark
//! experiment E9 (translation linearity and answer preservation).

#![forbid(unsafe_code)]

pub mod eval;
pub mod formula;
pub mod parser;
pub mod to_xpath;

pub use eval::{fo_answer_nary, fo_satisfies};
pub use formula::Formula;
pub use parser::{parse_formula, FoParseError};
pub use to_xpath::fo_to_xpath;
