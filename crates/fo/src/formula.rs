//! Abstract syntax of FO over unranked trees (Section 2 of the paper).

use std::collections::BTreeSet;
use std::fmt;
use xpath_ast::Var;

/// An FO formula over the signature `{ns*, ch*, lab_a}`.
///
/// The primitive constructors mirror the paper's grammar exactly; the
/// associated functions [`Formula::or`], [`Formula::implies`],
/// [`Formula::forall`] and [`Formula::eq`] build the usual derived forms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// `ns*(x, y)` — `y` is `x` or a following sibling of `x`.
    NsStar(Var, Var),
    /// `ch*(x, y)` — `y` is `x` or a descendant of `x`.
    ChStar(Var, Var),
    /// `lab_a(x)` — the node `x` carries label `a`.
    Label(String, Var),
    /// `¬φ`
    Not(Box<Formula>),
    /// `φ₁ ∧ φ₂`
    And(Box<Formula>, Box<Formula>),
    /// `∃x φ`
    Exists(Var, Box<Formula>),
}

impl Formula {
    /// `ns*(x, y)`
    pub fn ns_star(x: &str, y: &str) -> Formula {
        Formula::NsStar(Var::new(x), Var::new(y))
    }

    /// `ch*(x, y)`
    pub fn ch_star(x: &str, y: &str) -> Formula {
        Formula::ChStar(Var::new(x), Var::new(y))
    }

    /// `lab_a(x)`
    pub fn label(label: &str, x: &str) -> Formula {
        Formula::Label(label.to_string(), Var::new(x))
    }

    /// `¬self`
    pub fn negate(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self ∧ other`
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Derived disjunction `self ∨ other = ¬(¬self ∧ ¬other)`.
    pub fn or(self, other: Formula) -> Formula {
        self.negate().and(other.negate()).negate()
    }

    /// Derived implication `self → other = ¬(self ∧ ¬other)`.
    pub fn implies(self, other: Formula) -> Formula {
        self.and(other.negate()).negate()
    }

    /// `∃x self`
    pub fn exists(x: &str, body: Formula) -> Formula {
        Formula::Exists(Var::new(x), Box::new(body))
    }

    /// Derived universal quantifier `∀x φ = ¬∃x ¬φ`.
    pub fn forall(x: &str, body: Formula) -> Formula {
        Formula::Exists(Var::new(x), Box::new(body.negate())).negate()
    }

    /// Derived node equality `x = y`, definable as `ch*(x,y) ∧ ch*(y,x)`
    /// (Section 2: "Node equality is definable too").
    pub fn eq(x: &str, y: &str) -> Formula {
        Formula::ch_star(x, y).and(Formula::ch_star(y, x))
    }

    /// Derived strict child relation `ch(x, y)`:
    /// `ch*(x,y) ∧ x ≠ y ∧ ¬∃z (x ≠ z ∧ z ≠ y ∧ ch*(x,z) ∧ ch*(z,y))`.
    pub fn child(x: &str, y: &str) -> Formula {
        let strictly_between = Formula::exists(
            "__mid",
            Formula::ch_star(x, "__mid")
                .and(Formula::ch_star("__mid", y))
                .and(Formula::eq(x, "__mid").negate())
                .and(Formula::eq("__mid", y).negate()),
        );
        Formula::ch_star(x, y)
            .and(Formula::eq(x, y).negate())
            .and(strictly_between.negate())
    }

    /// Number of AST nodes `|φ|`.
    pub fn size(&self) -> usize {
        match self {
            Formula::NsStar(_, _) | Formula::ChStar(_, _) | Formula::Label(_, _) => 1,
            Formula::Not(f) | Formula::Exists(_, f) => 1 + f.size(),
            Formula::And(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Quantifier rank (maximum nesting depth of `∃`).
    pub fn quantifier_rank(&self) -> usize {
        match self {
            Formula::NsStar(_, _) | Formula::ChStar(_, _) | Formula::Label(_, _) => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(a, b) => a.quantifier_rank().max(b.quantifier_rank()),
            Formula::Exists(_, f) => 1 + f.quantifier_rank(),
        }
    }

    /// Is the formula quantifier-free?
    pub fn is_quantifier_free(&self) -> bool {
        self.quantifier_rank() == 0
    }

    /// The free variables `Var(φ)`.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut out);
        out
    }

    fn collect_free(&self, out: &mut BTreeSet<Var>) {
        match self {
            Formula::NsStar(x, y) | Formula::ChStar(x, y) => {
                out.insert(x.clone());
                out.insert(y.clone());
            }
            Formula::Label(_, x) => {
                out.insert(x.clone());
            }
            Formula::Not(f) => f.collect_free(out),
            Formula::And(a, b) => {
                a.collect_free(out);
                b.collect_free(out);
            }
            Formula::Exists(x, f) => {
                let mut inner = BTreeSet::new();
                f.collect_free(&mut inner);
                inner.remove(x);
                out.extend(inner);
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::NsStar(x, y) => write!(f, "nsstar({}, {})", x.name(), y.name()),
            Formula::ChStar(x, y) => write!(f, "chstar({}, {})", x.name(), y.name()),
            Formula::Label(l, x) => write!(f, "lab({l}, {})", x.name()),
            Formula::Not(inner) => write!(f, "not ({inner})"),
            Formula::And(a, b) => write!(f, "({a} and {b})"),
            Formula::Exists(x, body) => write!(f, "exists {}. ({body})", x.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_variables_and_binding() {
        let phi = Formula::exists("z", Formula::ch_star("x", "z").and(Formula::ns_star("z", "y")));
        let free: Vec<_> = phi.free_vars().iter().map(|v| v.name().to_string()).collect();
        assert_eq!(free, vec!["x", "y"]);
        assert_eq!(phi.quantifier_rank(), 1);
        assert!(!phi.is_quantifier_free());
        assert!(Formula::label("a", "x").is_quantifier_free());
    }

    #[test]
    fn size_counts_nodes() {
        let phi = Formula::label("a", "x").and(Formula::ch_star("x", "y")).negate();
        assert_eq!(phi.size(), 4);
    }

    #[test]
    fn derived_forms_expand_to_primitives() {
        let or = Formula::label("a", "x").or(Formula::label("b", "x"));
        assert!(matches!(or, Formula::Not(_)));
        let forall = Formula::forall("x", Formula::label("a", "x"));
        assert!(matches!(forall, Formula::Not(_)));
        let eq = Formula::eq("x", "y");
        assert_eq!(eq.free_vars().len(), 2);
        let imp = Formula::label("a", "x").implies(Formula::label("b", "x"));
        assert!(matches!(imp, Formula::Not(_)));
    }

    #[test]
    fn display_is_readable() {
        let phi = Formula::exists("x", Formula::label("book", "x").and(Formula::ch_star("x", "y")));
        let s = phi.to_string();
        assert!(s.contains("exists x."));
        assert!(s.contains("lab(book, x)"));
        assert!(s.contains("chstar(x, y)"));
    }
}
