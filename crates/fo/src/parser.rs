//! Concrete syntax for FO formulas.
//!
//! Grammar (case-sensitive keywords, whitespace insensitive):
//!
//! ```text
//! formula := 'exists' name '.' formula
//!          | 'forall' name '.' formula
//!          | or_formula
//! or_formula  := and_formula ('or' and_formula)*
//! and_formula := unary ('and' unary)*
//! unary   := 'not' unary | atom | '(' formula ')'
//! atom    := 'chstar' '(' name ',' name ')'
//!          | 'nsstar' '(' name ',' name ')'
//!          | 'lab' '(' name ',' name ')'            (label, variable)
//!          | name '=' name
//! ```

use crate::formula::Formula;
use std::fmt;

/// Parse error with position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoParseError {
    /// Byte offset of the error.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for FoParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FO parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for FoParseError {}

/// Parse an FO formula from its concrete syntax.
pub fn parse_formula(input: &str) -> Result<Formula, FoParseError> {
    let mut p = P {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let f = p.formula()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(f)
}

struct P<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> FoParseError {
        FoParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek_word(&mut self) -> Option<String> {
        self.ws();
        let start = self.pos;
        let mut end = start;
        while end < self.bytes.len()
            && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
        {
            end += 1;
        }
        if end == start {
            None
        } else {
            Some(std::str::from_utf8(&self.bytes[start..end]).unwrap().to_string())
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        let save = self.pos;
        if self.peek_word().as_deref() == Some(w) {
            self.pos += w.len();
            true
        } else {
            self.pos = save;
            false
        }
    }

    fn name(&mut self) -> Result<String, FoParseError> {
        match self.peek_word() {
            Some(w) => {
                self.pos += w.len();
                Ok(w)
            }
            None => Err(self.err("expected a name")),
        }
    }

    fn eat_char(&mut self, c: u8) -> bool {
        self.ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == c {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: u8) -> Result<(), FoParseError> {
        if self.eat_char(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn formula(&mut self) -> Result<Formula, FoParseError> {
        if self.eat_word("exists") {
            let x = self.name()?;
            self.expect_char(b'.')?;
            let body = self.formula()?;
            return Ok(Formula::Exists(xpath_ast::Var::new(&x), Box::new(body)));
        }
        if self.eat_word("forall") {
            let x = self.name()?;
            self.expect_char(b'.')?;
            let body = self.formula()?;
            return Ok(Formula::forall(&x, body));
        }
        self.or_formula()
    }

    fn or_formula(&mut self) -> Result<Formula, FoParseError> {
        let mut left = self.and_formula()?;
        while self.eat_word("or") {
            let right = self.and_formula()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_formula(&mut self) -> Result<Formula, FoParseError> {
        let mut left = self.unary()?;
        while self.eat_word("and") {
            let right = self.unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Formula, FoParseError> {
        if self.eat_word("not") {
            return Ok(self.unary()?.negate());
        }
        if self.eat_char(b'(') {
            let inner = self.formula()?;
            self.expect_char(b')')?;
            return Ok(inner);
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula, FoParseError> {
        let word = self.name()?;
        match word.as_str() {
            "chstar" | "nsstar" => {
                self.expect_char(b'(')?;
                let x = self.name()?;
                self.expect_char(b',')?;
                let y = self.name()?;
                self.expect_char(b')')?;
                Ok(if word == "chstar" {
                    Formula::ch_star(&x, &y)
                } else {
                    Formula::ns_star(&x, &y)
                })
            }
            "lab" => {
                self.expect_char(b'(')?;
                let label = self.name()?;
                self.expect_char(b',')?;
                let x = self.name()?;
                self.expect_char(b')')?;
                Ok(Formula::label(&label, &x))
            }
            other => {
                // equality atom `x = y`
                if self.eat_char(b'=') {
                    let y = self.name()?;
                    Ok(Formula::eq(other, &y))
                } else {
                    Err(self.err(format!("unknown predicate or missing '=' after '{other}'")))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_atoms_and_connectives() {
        let f = parse_formula("chstar(x, y) and lab(book, x)").unwrap();
        assert_eq!(f, Formula::ch_star("x", "y").and(Formula::label("book", "x")));
        let g = parse_formula("nsstar(a,b) or not lab(t, a)").unwrap();
        assert_eq!(g.free_vars().len(), 2);
    }

    #[test]
    fn parse_quantifiers() {
        let f = parse_formula("exists z. chstar(x, z) and chstar(z, y)").unwrap();
        assert_eq!(f.quantifier_rank(), 1);
        assert_eq!(f.free_vars().len(), 2);
        let g = parse_formula("forall x. lab(a, x)").unwrap();
        assert!(matches!(g, Formula::Not(_)));
    }

    #[test]
    fn parse_equality_and_parens() {
        let f = parse_formula("(x = y) and lab(a, x)").unwrap();
        assert_eq!(f.free_vars().len(), 2);
        let nested = parse_formula("not (lab(a,x) or lab(b,x))").unwrap();
        assert!(matches!(nested, Formula::Not(_)));
    }

    #[test]
    fn errors_have_positions() {
        for bad in [
            "",
            "chstar(x)",
            "lab(a x)",
            "exists . lab(a,x)",
            "unknownpred(x, y)",
            "lab(a,x) and",
            "(lab(a,x)",
            "lab(a,x) lab(b,y)",
        ] {
            let err = parse_formula(bad).unwrap_err();
            assert!(err.to_string().contains("FO parse error"), "{bad:?}");
        }
    }
}
