//! The denotational semantics of Core XPath 2.0 (Fig. 2 of the paper),
//! implemented literally over explicit sets of node pairs.
//!
//! This evaluator is the *specification*: it favours obvious correctness
//! over speed and is used as the oracle in differential tests against the
//! optimised engines (`xpath_pplbin`, `xpath_hcl`, `ppl_xpath`).

use crate::assignment::Assignment;
use std::collections::BTreeSet;
use std::fmt;
use xpath_ast::{NameTest, NodeRef, PathExpr, TestExpr, Var};
use xpath_tree::{Axis, NodeId, NodeSet, Tree};

/// A binary relation over nodes, as an explicit ordered set of pairs.
pub type PairSet = BTreeSet<(NodeId, NodeId)>;

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was used but is not bound by the current assignment.
    UnboundVariable(Var),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
        }
    }
}

impl std::error::Error for EvalError {}

fn lookup(alpha: &Assignment, v: &Var) -> Result<NodeId, EvalError> {
    alpha
        .get(v)
        .ok_or_else(|| EvalError::UnboundVariable(v.clone()))
}

/// `⟦P⟧^{t,α}` — the set of node pairs denoted by a path expression
/// (Fig. 2, left column).
pub fn eval_path(tree: &Tree, p: &PathExpr, alpha: &Assignment) -> Result<PairSet, EvalError> {
    match p {
        PathExpr::Step(axis, test) => Ok(eval_step(tree, *axis, test)),
        PathExpr::NodeRef(NodeRef::Dot) => {
            Ok(tree.nodes().map(|v| (v, v)).collect())
        }
        PathExpr::NodeRef(NodeRef::Var(x)) => {
            let target = lookup(alpha, x)?;
            Ok(tree.nodes().map(|v| (v, target)).collect())
        }
        PathExpr::Seq(p1, p2) => {
            let r1 = eval_path(tree, p1, alpha)?;
            let r2 = eval_path(tree, p2, alpha)?;
            Ok(compose(&r1, &r2))
        }
        PathExpr::Union(p1, p2) => {
            let mut r1 = eval_path(tree, p1, alpha)?;
            let r2 = eval_path(tree, p2, alpha)?;
            r1.extend(r2);
            Ok(r1)
        }
        PathExpr::Intersect(p1, p2) => {
            let r1 = eval_path(tree, p1, alpha)?;
            let r2 = eval_path(tree, p2, alpha)?;
            Ok(r1.intersection(&r2).copied().collect())
        }
        PathExpr::Except(p1, p2) => {
            let r1 = eval_path(tree, p1, alpha)?;
            let r2 = eval_path(tree, p2, alpha)?;
            Ok(r1.difference(&r2).copied().collect())
        }
        PathExpr::Filter(base, test) => {
            let r = eval_path(tree, base, alpha)?;
            let keep = eval_test(tree, test, alpha)?;
            Ok(r.into_iter().filter(|&(_, v2)| keep.contains(v2)).collect())
        }
        PathExpr::For(x, p1, p2) => {
            // ⟦for $x in P1 return P2⟧ = {(v1,v3) | ∃v2. (v1,v2) ∈ ⟦P1⟧ and
            //                                        (v1,v3) ∈ ⟦P2⟧^{α[x↦v2]}}
            let r1 = eval_path(tree, p1, alpha)?;
            let mut out = PairSet::new();
            for v2 in tree.nodes() {
                // Which start nodes v1 reach v2 via P1?
                let starts: Vec<NodeId> = r1
                    .iter()
                    .filter(|&&(_, target)| target == v2)
                    .map(|&(v1, _)| v1)
                    .collect();
                if starts.is_empty() {
                    continue;
                }
                let extended = alpha.extended(x.clone(), v2);
                let r2 = eval_path(tree, p2, &extended)?;
                for &(v1, v3) in &r2 {
                    if starts.binary_search(&v1).is_ok() || starts.contains(&v1) {
                        out.insert((v1, v3));
                    }
                }
            }
            Ok(out)
        }
    }
}

fn eval_step(tree: &Tree, axis: Axis, test: &NameTest) -> PairSet {
    let mut out = PairSet::new();
    for v1 in tree.nodes() {
        for v2 in tree.axis_iter(axis, v1) {
            if test.matches(tree.label_str(v2)) {
                out.insert((v1, v2));
            }
        }
    }
    out
}

fn compose(r1: &PairSet, r2: &PairSet) -> PairSet {
    // Index r2 by its first component for the join.
    let mut out = PairSet::new();
    for &(v1, v2) in r1 {
        // All (v2, v3) in r2: use range query on the ordered set.
        for &(u, v3) in r2.range((v2, NodeId(0))..=(v2, NodeId(u32::MAX))) {
            debug_assert_eq!(u, v2);
            out.insert((v1, v3));
        }
    }
    out
}

/// `⟦T⟧^{t,α}_test` — the set of nodes satisfying a test expression
/// (Fig. 2, right column).
pub fn eval_test(tree: &Tree, t: &TestExpr, alpha: &Assignment) -> Result<NodeSet, EvalError> {
    let n = tree.len();
    match t {
        TestExpr::Path(p) => {
            let pairs = eval_path(tree, p, alpha)?;
            let mut out = NodeSet::empty(n);
            for &(v, _) in &pairs {
                out.insert(v);
            }
            Ok(out)
        }
        TestExpr::Comp(NodeRef::Dot, NodeRef::Dot) => Ok(NodeSet::full(n)),
        TestExpr::Comp(NodeRef::Dot, NodeRef::Var(x))
        | TestExpr::Comp(NodeRef::Var(x), NodeRef::Dot) => {
            Ok(NodeSet::singleton(n, lookup(alpha, x)?))
        }
        TestExpr::Comp(NodeRef::Var(x), NodeRef::Var(y)) => {
            let vx = lookup(alpha, x)?;
            let vy = lookup(alpha, y)?;
            if vx == vy {
                Ok(NodeSet::singleton(n, vx))
            } else {
                Ok(NodeSet::empty(n))
            }
        }
        TestExpr::Not(inner) => {
            let mut s = eval_test(tree, inner, alpha)?;
            s.complement();
            Ok(s)
        }
        TestExpr::And(a, b) => {
            let mut sa = eval_test(tree, a, alpha)?;
            let sb = eval_test(tree, b, alpha)?;
            sa.intersect_with(&sb);
            Ok(sa)
        }
        TestExpr::Or(a, b) => {
            let mut sa = eval_test(tree, a, alpha)?;
            let sb = eval_test(tree, b, alpha)?;
            sa.union_with(&sb);
            Ok(sa)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::parse_path;
    use xpath_ast::parser::parse_test;

    fn t() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title))").unwrap()
    }

    fn pairs(tree: &Tree, src: &str) -> PairSet {
        eval_path(tree, &parse_path(src).unwrap(), &Assignment::new()).unwrap()
    }

    fn pairs_with(tree: &Tree, src: &str, alpha: &Assignment) -> PairSet {
        eval_path(tree, &parse_path(src).unwrap(), alpha).unwrap()
    }

    #[test]
    fn step_semantics() {
        let tree = t();
        let r = pairs(&tree, "child::book");
        assert_eq!(r.len(), 2);
        for (v1, v2) in &r {
            assert_eq!(*v1, tree.root());
            assert_eq!(tree.label_str(*v2), "book");
        }
        // Wildcard step from every node.
        let all_children = pairs(&tree, "child::*");
        assert_eq!(all_children.len(), tree.len() - 1);
    }

    #[test]
    fn dot_is_identity() {
        let tree = t();
        let r = pairs(&tree, ".");
        assert_eq!(r.len(), tree.len());
        assert!(r.iter().all(|(a, b)| a == b));
    }

    #[test]
    fn variable_is_goto() {
        let tree = t();
        let target = tree.nodes_with_label_str("title")[0];
        let alpha = Assignment::from_pairs([(Var::new("x"), target)]);
        let r = pairs_with(&tree, "$x", &alpha);
        assert_eq!(r.len(), tree.len());
        assert!(r.iter().all(|&(_, v2)| v2 == target));
        // Unbound variable is an error.
        let err = eval_path(&tree, &parse_path("$y").unwrap(), &alpha).unwrap_err();
        assert!(matches!(err, EvalError::UnboundVariable(_)));
        assert!(err.to_string().contains("$y"));
    }

    #[test]
    fn composition_union_intersect_except() {
        let tree = t();
        let authors_of_books = pairs(&tree, "child::book/child::author");
        assert_eq!(authors_of_books.len(), 3);
        let u = pairs(&tree, "child::book union .");
        assert_eq!(u.len(), 2 + tree.len());
        let i = pairs(&tree, "descendant::* intersect child::*");
        assert_eq!(i, pairs(&tree, "child::*"));
        let e = pairs(&tree, "descendant::* except child::*");
        assert_eq!(
            e.len(),
            pairs(&tree, "descendant::*").len() - pairs(&tree, "child::*").len()
        );
    }

    #[test]
    fn filters_restrict_targets() {
        let tree = t();
        let with_two_authors = pairs(
            &tree,
            "child::book[child::author/following_sibling::author]",
        );
        assert_eq!(with_two_authors.len(), 1);
        let none = pairs(&tree, "child::book[child::publisher]");
        assert!(none.is_empty());
        let negated = pairs(&tree, "child::book[not(child::publisher)]");
        assert_eq!(negated.len(), 2);
    }

    #[test]
    fn comparison_tests() {
        let tree = t();
        let title = tree.nodes_with_label_str("title")[0];
        let alpha = Assignment::from_pairs([
            (Var::new("x"), title),
            (Var::new("y"), title),
            (Var::new("z"), tree.root()),
        ]);
        let keep_x = eval_test(&tree, &parse_test(". is $x").unwrap(), &alpha).unwrap();
        assert_eq!(keep_x.iter().collect::<Vec<_>>(), vec![title]);
        let xy = eval_test(&tree, &parse_test("$x is $y").unwrap(), &alpha).unwrap();
        assert_eq!(xy.len(), 1);
        let xz = eval_test(&tree, &parse_test("$x is $z").unwrap(), &alpha).unwrap();
        assert!(xz.is_empty());
        let dd = eval_test(&tree, &parse_test(". is .").unwrap(), &alpha).unwrap();
        assert_eq!(dd.len(), tree.len());
        let not_dd = eval_test(&tree, &parse_test("not(. is .)").unwrap(), &alpha).unwrap();
        assert!(not_dd.is_empty());
    }

    #[test]
    fn and_or_tests() {
        let tree = t();
        let both = eval_test(
            &tree,
            &parse_test("child::author and child::title").unwrap(),
            &Assignment::new(),
        )
        .unwrap();
        assert_eq!(both.len(), 2); // both books
        let either = eval_test(
            &tree,
            &parse_test("child::author or child::year").unwrap(),
            &Assignment::new(),
        )
        .unwrap();
        assert_eq!(either.len(), 2);
    }

    #[test]
    fn for_loop_semantics() {
        let tree = t();
        // for $x in child::book return child::book[. is $x]
        // relates the root to each of its book children (v1 = root).
        let r = pairs(&tree, "for $x in child::book return child::book[. is $x]");
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|&(v1, _)| v1 == tree.root()));

        // The quantifier only ranges over nodes reachable by P1 *from the
        // same start node*: starting from a book node, `child::book` is
        // empty, so the loop contributes nothing for those start nodes.
        let empty_from_books = pairs(&tree, "for $x in child::book return .");
        assert!(empty_from_books.iter().all(|&(v1, _)| v1 == tree.root()));
    }

    #[test]
    fn paper_intro_query_under_assignment() {
        let tree = t();
        let book2 = tree.nodes_with_label_str("book")[1];
        let author = tree
            .nodes_with_label_str("author")
            .iter()
            .copied()
            .find(|&a| tree.parent(a) == Some(book2))
            .unwrap();
        let title = tree
            .nodes_with_label_str("title")
            .iter()
            .copied()
            .find(|&a| tree.parent(a) == Some(book2))
            .unwrap();
        let q = "descendant::book[child::author[. is $y] and child::title[. is $z]]";
        let good = Assignment::from_pairs([(Var::new("y"), author), (Var::new("z"), title)]);
        assert!(!pairs_with(&tree, q, &good).is_empty());
        // Mixing author of book 2 with title of book 1 must fail.
        let title1 = tree.nodes_with_label_str("title")[0];
        let bad = Assignment::from_pairs([(Var::new("y"), author), (Var::new("z"), title1)]);
        assert!(pairs_with(&tree, q, &bad).is_empty());
    }
}
