//! N-ary query answering by assignment enumeration — the exponential
//! baseline.
//!
//! The paper defines the n-ary query of a path expression `P` and a variable
//! sequence `x = x₁ … xₙ` as
//!
//! ```text
//! q_{P,x}(t) = { (α(x₁), …, α(xₙ)) | ⟦P⟧^{t,α} ≠ ∅ }
//! ```
//!
//! The brute-force way to compute this set is to enumerate every assignment
//! of the relevant variables — `|t|^k` of them, where `k` is the number of
//! distinct variables — and to evaluate `P` under each.  This is the PSPACE/
//! exponential baseline that motivates the PPL fragment; the polynomial
//! algorithm lives in `xpath_hcl`.

use crate::assignment::Assignment;
use crate::eval::{eval_path, EvalError};
use std::collections::BTreeSet;
use xpath_ast::{PathExpr, Var};
use xpath_tree::{NodeId, Tree};

/// The answer set of an n-ary query: a sorted set of n-tuples of nodes.
pub type NaryAnswer = BTreeSet<Vec<NodeId>>;

/// Answer the Boolean query "`⟦P⟧^{t,α} ≠ ∅`" (model checking) under a given
/// assignment.
pub fn boolean_query(tree: &Tree, p: &PathExpr, alpha: &Assignment) -> Result<bool, EvalError> {
    Ok(!eval_path(tree, p, alpha)?.is_empty())
}

/// Answer the binary query `q^bin_P` of a *variable-free* expression: the set
/// of pairs (start node, end node) related by `P`.
pub fn answer_binary(tree: &Tree, p: &PathExpr) -> Result<Vec<(NodeId, NodeId)>, EvalError> {
    Ok(eval_path(tree, p, &Assignment::new())?
        .into_iter()
        .collect())
}

/// Answer the n-ary query `q_{P,x}(t)` by enumerating assignments.
///
/// The enumeration ranges over the union of the free variables of `P` and
/// the output variables `x`; output variables not occurring in `P` range
/// freely over `nodes(t)` (matching the paper's definition, where the
/// assignment is total).
///
/// Cost: `Θ(|t|^k)` evaluations of `P`, where `k` is the number of distinct
/// enumerated variables — exponential in the tuple width.
pub fn answer_nary(tree: &Tree, p: &PathExpr, x: &[Var]) -> Result<NaryAnswer, EvalError> {
    let mut vars: Vec<Var> = p.free_vars().into_iter().collect();
    for v in x {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    let mut out = NaryAnswer::new();
    let mut alpha = Assignment::new();
    enumerate(tree, p, x, &vars, 0, &mut alpha, &mut out)?;
    Ok(out)
}

fn enumerate(
    tree: &Tree,
    p: &PathExpr,
    x: &[Var],
    vars: &[Var],
    idx: usize,
    alpha: &mut Assignment,
    out: &mut NaryAnswer,
) -> Result<(), EvalError> {
    if idx == vars.len() {
        if boolean_query(tree, p, alpha)? {
            let tuple: Vec<NodeId> = x
                .iter()
                .map(|v| alpha.get(v).expect("output variable was enumerated"))
                .collect();
            out.insert(tuple);
        }
        return Ok(());
    }
    for node in tree.nodes() {
        alpha.bind(vars[idx].clone(), node);
        enumerate(tree, p, x, vars, idx + 1, alpha, out)?;
    }
    alpha.unbind(&vars[idx]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::parse_path;

    fn bib() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title))").unwrap()
    }

    #[test]
    fn intro_example_selects_author_title_pairs_per_book() {
        let tree = bib();
        let q = parse_path(
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        )
        .unwrap();
        let ans = answer_nary(&tree, &q, &[Var::new("y"), Var::new("z")]).unwrap();
        // book1 has 1 author × 1 title, book2 has 2 authors × 1 title.
        assert_eq!(ans.len(), 3);
        for tuple in &ans {
            let (author, title) = (tuple[0], tuple[1]);
            assert_eq!(tree.label_str(author), "author");
            assert_eq!(tree.label_str(title), "title");
            // Both come from the same book.
            assert_eq!(tree.parent(author), tree.parent(title));
        }
    }

    #[test]
    fn output_variables_not_in_the_query_range_freely() {
        let tree = Tree::from_terms("a(b,c)").unwrap();
        let q = parse_path("child::b").unwrap();
        let ans = answer_nary(&tree, &q, &[Var::new("w")]).unwrap();
        // The query is satisfiable, so $w can be any of the 3 nodes.
        assert_eq!(ans.len(), 3);
        // An unsatisfiable query yields the empty answer regardless.
        let empty = answer_nary(&tree, &parse_path("child::zzz").unwrap(), &[Var::new("w")])
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn unary_query_with_anchor() {
        let tree = bib();
        // Select every author node: $y such that some book child has $y
        // among its author children.
        let q = parse_path("descendant::book/child::author[. is $y]").unwrap();
        let ans = answer_nary(&tree, &q, &[Var::new("y")]).unwrap();
        assert_eq!(ans.len(), 3);
        assert!(ans
            .iter()
            .all(|tuple| tree.label_str(tuple[0]) == "author"));
    }

    #[test]
    fn boolean_queries() {
        let tree = bib();
        let yes = parse_path("child::book/child::title").unwrap();
        let no = parse_path("child::publisher").unwrap();
        assert!(boolean_query(&tree, &yes, &Assignment::new()).unwrap());
        assert!(!boolean_query(&tree, &no, &Assignment::new()).unwrap());
    }

    #[test]
    fn binary_answers_match_pair_semantics() {
        let tree = bib();
        let q = parse_path("descendant::author").unwrap();
        let pairs = answer_binary(&tree, &q).unwrap();
        // Every proper ancestor of an author is a valid start node: the root
        // reaches all 3 authors and each book reaches its own author(s).
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().all(|&(v1, v2)| {
            tree.label_str(v2) == "author" && tree.is_ancestor(v2, v1)
        }));
    }

    #[test]
    fn for_loop_queries_are_supported_by_the_baseline() {
        let tree = bib();
        // All pairs (book, its title) via an explicit for loop over titles.
        let q = parse_path(
            "descendant::book[. is $b]/child::title[. is $t]",
        )
        .unwrap();
        let ans = answer_nary(&tree, &q, &[Var::new("b"), Var::new("t")]).unwrap();
        assert_eq!(ans.len(), 2);
        for tuple in &ans {
            assert_eq!(tree.label_str(tuple[0]), "book");
            assert_eq!(tree.label_str(tuple[1]), "title");
            assert_eq!(tree.parent(tuple[1]), Some(tuple[0]));
        }
    }

    #[test]
    fn zero_ary_query_yields_empty_tuple_iff_satisfiable() {
        let tree = bib();
        let sat = parse_path("child::book").unwrap();
        let ans = answer_nary(&tree, &sat, &[]).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&Vec::new()));
        let unsat = parse_path("child::nothing").unwrap();
        assert!(answer_nary(&tree, &unsat, &[]).unwrap().is_empty());
    }
}
