//! # `xpath_naive` — the specification evaluator for Core XPath 2.0
//!
//! This crate implements the denotational semantics of Fig. 2 of the paper
//! *literally*: a path expression `P` denotes a set of node pairs
//! `⟦P⟧^{t,α} ⊆ nodes(t)²` for every tree `t` and variable assignment
//! `α : Var → nodes(t)`, and a test expression denotes a set of nodes.
//!
//! Two evaluation entry points are provided:
//!
//! * [`eval::eval_path`] / [`eval::eval_test`] — evaluate a single expression
//!   under a fixed assignment (model checking / Boolean queries);
//! * [`nary::answer_nary`] — answer an n-ary query
//!   `q_{P,x}(t) = {(α(x₁),…,α(xₙ)) | ⟦P⟧^{t,α} ≠ ∅}`
//!   by **enumerating all assignments** of the free variables.
//!
//! The n-ary algorithm is intentionally the brute-force one: its cost is
//! `Θ(|t|^{#vars})` evaluations, which is the exponential baseline that the
//! paper's PPL algorithm (crates `xpath_hcl` / `ppl_xpath`) improves to
//! polynomial time.  It is used throughout the workspace as the *oracle* in
//! differential tests and as the baseline in the benchmark experiments
//! (EXPERIMENTS.md, experiment E4).

#![forbid(unsafe_code)]

pub mod assignment;
pub mod eval;
pub mod nary;

pub use assignment::Assignment;
pub use eval::{eval_path, eval_test, EvalError, PairSet};
pub use nary::{answer_binary, answer_nary, boolean_query, NaryAnswer};
