//! Variable assignments `α : Var → nodes(t)`.

use std::collections::BTreeMap;
use std::fmt;
use xpath_ast::Var;
use xpath_tree::NodeId;

/// A (partial) variable assignment.
///
/// The paper works with total assignments `α : Var → nodes(t)`; in practice
/// only the finitely many variables occurring in the query matter, so an
/// assignment is a finite map.  Looking up an unbound variable during
/// evaluation raises [`crate::EvalError::UnboundVariable`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    map: BTreeMap<Var, NodeId>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Build an assignment from `(variable, node)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Var, NodeId)>>(pairs: I) -> Assignment {
        Assignment {
            map: pairs.into_iter().collect(),
        }
    }

    /// Look up a variable.
    pub fn get(&self, var: &Var) -> Option<NodeId> {
        self.map.get(var).copied()
    }

    /// Bind a variable in place (overwriting any previous binding).
    pub fn bind(&mut self, var: Var, node: NodeId) {
        self.map.insert(var, node);
    }

    /// `α[x ↦ v]` — a copy of the assignment with one extra binding.
    pub fn extended(&self, var: Var, node: NodeId) -> Assignment {
        let mut out = self.clone();
        out.bind(var, node);
        out
    }

    /// Remove a binding.
    pub fn unbind(&mut self, var: &Var) {
        self.map.remove(var);
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the assignment empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, NodeId)> {
        self.map.iter().map(|(v, &n)| (v, n))
    }

    /// The bound variables, in order.
    pub fn variables(&self) -> impl Iterator<Item = &Var> {
        self.map.keys()
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (v, n)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v} ↦ {n}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let mut a = Assignment::new();
        assert!(a.is_empty());
        a.bind(Var::new("x"), NodeId(3));
        assert_eq!(a.get(&Var::new("x")), Some(NodeId(3)));
        assert_eq!(a.get(&Var::new("y")), None);
        assert_eq!(a.len(), 1);
        a.unbind(&Var::new("x"));
        assert!(a.is_empty());
    }

    #[test]
    fn extended_does_not_mutate_original() {
        let a = Assignment::from_pairs([(Var::new("x"), NodeId(1))]);
        let b = a.extended(Var::new("y"), NodeId(2));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        let c = a.extended(Var::new("x"), NodeId(9));
        assert_eq!(a.get(&Var::new("x")), Some(NodeId(1)));
        assert_eq!(c.get(&Var::new("x")), Some(NodeId(9)));
    }

    #[test]
    fn display_lists_bindings() {
        let a = Assignment::from_pairs([
            (Var::new("x"), NodeId(1)),
            (Var::new("y"), NodeId(2)),
        ]);
        let s = a.to_string();
        assert!(s.contains("$x ↦ n1"));
        assert!(s.contains("$y ↦ n2"));
    }
}
