//! Failure-injection fuzz for the sharding router: a deterministic script
//! of mixed LOADTERMS / QUERY / QUERYALL / STATS / EVICT traffic runs
//! against three *real* backend daemons while a fault hook randomly kills
//! shard connections mid-query, delays past the shard deadline, and
//! poisons responses with garbage and truncated status lines — and one
//! backend is genuinely shut down mid-burst.
//!
//! The invariant under all of that: the router **always answers, in
//! bounded time**.  Every response is either
//!
//! * correct data — verified against a single-process [`Corpus`] oracle
//!   holding every document with its canonical content, so any successful
//!   payload must match the oracle bit-for-bit (all replicas of a document
//!   carry identical content), or
//! * a well-formed `ERR`/partial answer (non-empty message, `doc=… error=`
//!   lines) naming what failed.
//!
//! A hang, a panic, a malformed frame, or wrong data all fail the test.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xpath_corpus::router::{FaultAction, Router, RouterConfig, RouterConn};
use xpath_corpus::server::{
    bind, execute_command, parse_command, serve_with_options, IoMode, ServeOptions,
};
use xpath_corpus::Corpus;
use xpath_wire::{ClientConfig, ShardClient};

const BACKENDS: usize = 3;
const ROUNDS: usize = 120;
const DOCS: usize = 8;
const SHARD_TIMEOUT: Duration = Duration::from_millis(300);
/// Generous per-request bound: a fan-out may pay the shard timeout on every
/// replica sequentially plus injected sub-deadline delays.
const REQUEST_BOUND: Duration = Duration::from_secs(3);

/// Canonical content of document `k`: every replica of a document loads the
/// same terms, so any *successful* answer must match the oracle exactly.
fn shape(k: usize) -> &'static str {
    [
        "r(a(b),a(b,c))",
        "r(a(b),a(b),a(b))",
        "r(c(a(b)),a(b))",
        "r(a,b(a(b)))",
    ][k % 4]
}

fn doc_name(k: usize) -> String {
    format!("fuzz_d{k}")
}

/// xorshift64* — a tiny deterministic PRNG; no crates, no clock.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn spawn_backend() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let (listener, addr) = bind("127.0.0.1:0").unwrap();
    let corpus = Arc::new(Corpus::new());
    let options = ServeOptions {
        io: IoMode::Threads,
        // Short enough that a shut-down backend's lingering handler threads
        // drain quickly; the router's stale-connection detection absorbs the
        // idle-close goodbyes.
        idle_timeout: Some(Duration::from_millis(500)),
        ..ServeOptions::default()
    };
    let handle = std::thread::spawn(move || serve_with_options(listener, corpus, &options));
    (addr.to_string(), handle)
}

/// The fault plan: a deterministic mix over a shared request counter.
/// Roughly one in five shard requests is sabotaged — connections killed,
/// deadlines blown, status lines poisoned or truncated.
fn install_faults(router: &Router) {
    let counter = Arc::new(AtomicUsize::new(0));
    router.set_fault_hook(Arc::new(move |shard, _command| {
        let n = counter.fetch_add(1, Ordering::Relaxed) as u64;
        let mut rng = Rng(0x9e37_79b9_7f4a_7c15 ^ (n << 8) ^ shard as u64);
        match rng.below(100) {
            0..=5 => FaultAction::KillConn,
            6..=8 => FaultAction::Garbage("!!not a response!!".to_string()),
            // A truncated frame: promises payload the stream does not hold.
            9..=10 => FaultAction::Garbage("OK 99999".to_string()),
            // An injected daemon ERR: a healthy-looking wire that answers
            // the wrong thing, leaving the real response unread (the stale
            // detection must absorb it).
            11..=12 => FaultAction::Garbage("ERR injected fault".to_string()),
            13..=14 => FaultAction::Delay(SHARD_TIMEOUT * 2), // past deadline
            15..=19 => FaultAction::Delay(Duration::from_millis(3)),
            _ => FaultAction::None,
        }
    }));
}

/// Split a QUERYALL payload into per-document blocks: header line (starts
/// with `doc=`) plus its tuple lines.
fn doc_blocks(payload: &[String]) -> Vec<(String, Vec<String>)> {
    let mut blocks: Vec<(String, Vec<String>)> = Vec::new();
    for line in payload {
        if line.starts_with("doc=") {
            blocks.push((line.clone(), Vec::new()));
        } else {
            let (_, tuples) = blocks
                .last_mut()
                .expect("QUERYALL payload must start with a doc= header");
            tuples.push(line.clone());
        }
    }
    blocks
}

fn block_doc_name(header: &str) -> &str {
    header
        .strip_prefix("doc=")
        .and_then(|rest| rest.split_whitespace().next())
        .expect("doc= header carries a name")
}

#[test]
fn router_fuzz_always_answers_under_injected_faults() {
    let backends: Vec<_> = (0..BACKENDS).map(|_| spawn_backend()).collect();
    let addrs: Vec<String> = backends.iter().map(|(addr, _)| addr.clone()).collect();

    let router = Arc::new(Router::new(RouterConfig {
        backends: addrs.clone(),
        replication: 2,
        shard_timeout: SHARD_TIMEOUT,
        connect_timeout: Duration::from_millis(400),
        fail_threshold: 2,
        probe_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    }));
    install_faults(&router);
    let mut conn = RouterConn::new(Arc::clone(&router));

    // The oracle: a private corpus holding *every* document with its
    // canonical content.  Any successful router answer must match it.
    let oracle = Corpus::new();
    for k in 0..DOCS {
        oracle.insert_terms(&doc_name(k), shape(k)).unwrap();
    }
    let queries = [
        "descendant::b[. is $x] -> x",
        "descendant::a[child::b[. is $y]] -> y",
        "descendant::c",
    ];

    let mut rng = Rng(0xfeed_beef_cafe_f00d);
    let mut loads = 0usize;
    let mut load_failures = 0usize;
    for round in 0..ROUNDS {
        // Mid-burst, one backend really goes away: a clean SHUTDOWN, after
        // which the router must degrade instead of hanging or lying.
        if round == ROUNDS / 2 {
            let mut killer = ShardClient::new(
                addrs[0].clone(),
                ClientConfig {
                    connect_timeout: Some(Duration::from_millis(400)),
                    read_timeout: Some(Duration::from_millis(400)),
                    ..ClientConfig::default()
                },
            );
            assert_eq!(killer.request("SHUTDOWN").unwrap(), Ok(vec!["bye".to_string()]));
        }

        let k = rng.below(DOCS as u64) as usize;
        let doc = doc_name(k);
        let line = match rng.below(10) {
            0..=2 => format!("LOADTERMS {doc} {}", shape(k)),
            3..=6 => format!(
                "QUERY {doc} {}",
                queries[rng.below(queries.len() as u64) as usize]
            ),
            7 => format!("QUERYALL {}", queries[rng.below(queries.len() as u64) as usize]),
            8 => "STATS".to_string(),
            _ => format!("EVICT {doc}"),
        };

        let start = Instant::now();
        let response = conn.handle_line(&line);
        let elapsed = start.elapsed();
        assert!(
            elapsed < REQUEST_BOUND,
            "round {round}: {line:?} took {elapsed:?} — the router must never hang"
        );

        match &response {
            Err(message) => {
                // Degradation is allowed; silence and malformed frames are
                // not.
                assert!(
                    !message.trim().is_empty(),
                    "round {round}: {line:?} answered an empty ERR"
                );
                if line.starts_with("LOADTERMS") {
                    load_failures += 1;
                }
            }
            Ok(payload) => {
                let command = parse_command(&line).unwrap();
                let expected = execute_command(&oracle, &command);
                if line.starts_with("LOADTERMS") {
                    loads += 1;
                    assert!(
                        payload[0].starts_with(&format!("loaded {doc} replicas=")),
                        "round {round}: bad LOAD ack {payload:?}"
                    );
                } else if line.starts_with("QUERY ") {
                    // Data correctness: a successful QUERY must match the
                    // oracle exactly — every replica holds identical content.
                    assert_eq!(
                        payload,
                        &expected.unwrap(),
                        "round {round}: {line:?} answered wrong data"
                    );
                } else if line.starts_with("QUERYALL") {
                    // Per-document: healthy blocks match the oracle, failed
                    // documents carry a well-formed error line, and no
                    // document reports twice (replica dedup).
                    let oracle_blocks: std::collections::HashMap<String, (String, Vec<String>)> =
                        doc_blocks(&expected.unwrap())
                            .into_iter()
                            .map(|b| (block_doc_name(&b.0).to_string(), b))
                            .collect();
                    let mut seen = std::collections::HashSet::new();
                    for (header, tuples) in doc_blocks(payload) {
                        let name = block_doc_name(&header).to_string();
                        assert!(
                            seen.insert(name.clone()),
                            "round {round}: document {name} reported twice: {payload:?}"
                        );
                        if header.contains(" error=") {
                            continue; // a well-formed partial result
                        }
                        let (oracle_header, oracle_tuples) = oracle_blocks
                            .get(&name)
                            .unwrap_or_else(|| panic!("round {round}: unknown doc {name}"));
                        assert_eq!(&header, oracle_header, "round {round}: wrong header");
                        assert_eq!(&tuples, oracle_tuples, "round {round}: wrong tuples");
                    }
                } else if line == "STATS" {
                    assert_eq!(payload[0], format!("shards={BACKENDS}"));
                    assert!(payload[1].starts_with("shards_up="), "{payload:?}");
                    assert!(payload[2].starts_with("documents="), "{payload:?}");
                } else if line.starts_with("EVICT") {
                    assert!(
                        payload[0] == "evicted=true" || payload[0] == "evicted=false",
                        "round {round}: bad EVICT answer {payload:?}"
                    );
                }
            }
        }
    }

    // The script must have really exercised the load path, and the router
    // must still be answering at the end — with the dead shard degraded,
    // not wedging the fleet.
    assert!(loads >= 10, "only {loads} successful loads ({load_failures} failed)");
    let stats = conn.handle_line("STATS").expect("STATS must answer");
    assert_eq!(stats[0], format!("shards={BACKENDS}"));

    // Clean teardown: SHUTDOWN fans out to the surviving backends.
    assert_eq!(conn.handle_line("SHUTDOWN").unwrap(), vec!["bye".to_string()]);
    drop(conn);
    for (addr, handle) in backends {
        handle
            .join()
            .unwrap_or_else(|_| panic!("backend {addr} panicked"))
            .unwrap();
    }
}
