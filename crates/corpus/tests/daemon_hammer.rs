//! Multi-client daemon hammer: N concurrent clients pipeline mixed
//! LOADTERMS / QUERY / STATS / EVICT bursts against one daemon, and every
//! response is checked against a single-threaded oracle (the same command
//! list executed against a private, solo [`Corpus`]).  Run for both `--io`
//! modes.
//!
//! Determinism under concurrency: each client only ever touches its *own*
//! documents (`c<i>_d<j>`), so its QUERY/EVICT responses are independent of
//! interleaving.  The only globally-coupled outputs — the `documents=` count
//! in LOAD responses and the STATS counters — are normalized away before
//! comparison.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use xpath_corpus::server::{bind, execute_command, parse_command, serve_with_options, IoMode, ServeOptions};
use xpath_corpus::Corpus;

const CLIENTS: usize = 8;
const BURSTS: usize = 6;

/// The deterministic command script of one client: `BURSTS` bursts of
/// mixed load/query/stats/evict traffic over the client's own documents.
fn client_script(client: usize) -> Vec<Vec<String>> {
    let shapes = [
        "r(a(b),a(b,c))",
        "r(a(b),a(b),a(b))",
        "r(c(a(b)),a(b))",
        "r(a,b(a(b)))",
    ];
    (0..BURSTS)
        .map(|burst| {
            let doc = format!("c{client}_d{burst}");
            let shape = shapes[(client + burst) % shapes.len()];
            let mut lines = vec![
                format!("LOADTERMS {doc} {shape}"),
                format!("QUERY {doc} descendant::b[. is $x] -> x"),
                format!("QUERY {doc} descendant::a[child::b[. is $y]] -> y"),
                "STATS".to_string(),
                format!("QUERY {doc} descendant::c"),
            ];
            if burst % 2 == 1 {
                // Evict the previous burst's document, then prove the
                // session rebuilds on demand.
                let prev = format!("c{client}_d{}", burst - 1);
                lines.push(format!("EVICT {prev}"));
                lines.push(format!("QUERY {prev} descendant::b[. is $x] -> x"));
            }
            lines
        })
        .collect()
}

/// Strip interleaving-dependent fragments: the global document count in
/// LOAD responses.
fn normalize(line: &str) -> String {
    match line.split_once(" documents=") {
        Some((head, _)) if head.starts_with("loaded ") => head.to_string(),
        _ => line.to_string(),
    }
}

fn read_response<R: BufRead>(reader: &mut R) -> (String, Vec<String>) {
    let mut status = String::new();
    assert!(
        reader.read_line(&mut status).unwrap() > 0,
        "daemon closed the connection mid-script"
    );
    let status = status.trim().to_string();
    let n = status
        .strip_prefix("OK ")
        .map(|n| n.parse::<usize>().unwrap())
        .unwrap_or(0);
    let mut payload = Vec::with_capacity(n);
    for _ in 0..n {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "truncated payload");
        payload.push(line.trim_end().to_string());
    }
    (status, payload)
}

/// Run one client: write each burst as a single pipelined flush, then read
/// and verify the burst's responses in order against the oracle.
fn run_client(addr: SocketAddr, client: usize, barrier: Arc<Barrier>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);

    // The oracle: the same script against a private single-threaded corpus.
    let oracle = Corpus::new();

    barrier.wait();
    for burst in client_script(client) {
        let mut wire = String::new();
        for line in &burst {
            wire.push_str(line);
            wire.push('\n');
        }
        writer.write_all(wire.as_bytes()).unwrap();
        writer.flush().unwrap();

        for line in &burst {
            let expected = execute_command(&oracle, &parse_command(line).unwrap());
            let (status, payload) = read_response(&mut reader);
            match expected {
                Ok(expected_lines) => {
                    assert_eq!(
                        status,
                        format!("OK {}", expected_lines.len()),
                        "client {client}: bad status for {line:?}"
                    );
                    if line == "STATS" {
                        continue; // counters are global; the line count check suffices
                    }
                    let got: Vec<String> = payload.iter().map(|l| normalize(l)).collect();
                    let want: Vec<String> =
                        expected_lines.iter().map(|l| normalize(l)).collect();
                    assert_eq!(got, want, "client {client}: bad payload for {line:?}");
                }
                Err(message) => {
                    assert_eq!(
                        status,
                        format!("ERR {message}"),
                        "client {client}: bad error for {line:?}"
                    );
                }
            }
        }
    }

    writeln!(writer, "QUIT").unwrap();
    writer.flush().unwrap();
    let (status, payload) = read_response(&mut reader);
    assert_eq!(status, "OK 1");
    assert_eq!(payload[0], "bye");
}

fn hammer(io: IoMode) {
    let (listener, addr) = bind("127.0.0.1:0").unwrap();
    let corpus = Arc::new(Corpus::new());
    let options = ServeOptions {
        io,
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || serve_with_options(listener, corpus, &options));

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || run_client(addr, c, barrier))
        })
        .collect();
    for client in clients {
        client.join().expect("client thread must not panic");
    }

    // All clients done: shut the daemon down cleanly.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "SHUTDOWN").unwrap();
    writer.flush().unwrap();
    let (status, payload) = read_response(&mut reader);
    assert_eq!(status, "OK 1");
    assert_eq!(payload[0], "bye");
    server.join().unwrap().unwrap();
}

#[test]
fn hammer_threads_mode() {
    hammer(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn hammer_epoll_mode() {
    hammer(IoMode::Epoll);
}
