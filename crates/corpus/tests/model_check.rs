//! Model-check lane (`RUSTFLAGS="--cfg model_check"`): drive the *real*
//! ported types — `BoundedQueue`, `Conn`, the corpus fan-out — through the
//! `xpath_sync` facade under the deterministic scheduler.
//!
//! Unlike the replica tests in `crates/sync/tests/`, these assert
//! *invariants only* and commit no seeds: real types hash with the
//! process-random `HashMap` state, so a failing seed here is reported (and
//! replayable within the same process run) but not stable across runs.
#![cfg(model_check)]

use std::sync::Arc;
use xpath_corpus::protocol::{Conn, ConnEvent};
use xpath_corpus::queue::BoundedQueue;
use xpath_corpus::{Corpus, CorpusConfig};
use xpath_sync::model;

/// The real `BoundedQueue` delivers everything in FIFO order on every
/// explored schedule, including through the capacity-1 backpressure path.
#[test]
fn real_bounded_queue_is_fifo_under_model_schedules() {
    let failure = model::explore(24, || {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        model::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut seen = Vec::new();
                while let Some(v) = q.pop() {
                    seen.push(v);
                }
                seen
            });
            for i in 0..3 {
                q.push(i);
            }
            q.close();
            assert_eq!(consumer.join().unwrap(), vec![0, 1, 2]);
        });
    });
    assert!(failure.is_none(), "{}", failure.unwrap());
}

/// The real `Conn` releases pipelined responses strictly in request order
/// no matter how the scheduler orders the completing workers.
#[test]
fn real_conn_releases_responses_in_request_order() {
    let failure = model::explore(24, || {
        let conn = xpath_sync::Mutex::new(Conn::new(1024));
        let seqs: Vec<u64> = {
            let mut c = conn.lock().unwrap();
            c.feed(b"STATS\nSTATS\nSTATS\nSTATS\n")
                .into_iter()
                .filter_map(|e| match e {
                    ConnEvent::Execute { seq, .. } => Some(seq),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(seqs.len(), 4, "four pipelined requests parsed");
        let conn = &conn;
        model::thread::scope(|scope| {
            let (front, back) = (seqs.clone(), seqs.clone());
            let w1 = scope.spawn(move || {
                for &seq in front.iter().rev().take(2) {
                    conn.lock().unwrap().complete(seq, Ok(vec![format!("r{seq}")]));
                }
            });
            let w2 = scope.spawn(move || {
                for &seq in back.iter().take(2) {
                    conn.lock().unwrap().complete(seq, Ok(vec![format!("r{seq}")]));
                }
            });
            w1.join().unwrap();
            w2.join().unwrap();
        });
        let c = conn.lock().unwrap();
        let out = String::from_utf8_lossy(c.pending_output()).to_string();
        let positions: Vec<usize> = seqs
            .iter()
            .map(|seq| out.find(&format!("r{seq}")).expect("every response rendered"))
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "responses out of request order: {out:?}"
        );
        assert_eq!(c.in_flight(), 0, "every slot drains");
    });
    assert!(failure.is_none(), "{}", failure.unwrap());
}

/// The whole real fan-out pool — `answer_all` over the session pool, plan
/// cache, bounded queue, and scoped workers — survives model schedules end
/// to end and answers correctly.
#[test]
fn real_corpus_fanout_answers_under_model_schedules() {
    let failure = model::explore(4, || {
        let corpus = Arc::new(Corpus::with_config(CorpusConfig {
            threads: 2,
            queue_capacity: 1, // force backpressure through the queue
            ..CorpusConfig::default()
        }));
        for i in 0..3 {
            corpus
                .insert_terms(&format!("d{i}"), "l0(l1(l0,l2),l1(l2))")
                .unwrap();
        }
        let answers = corpus
            .answer_all("descendant::l1[. is $x]", &["x"])
            .expect("fan-out answers on every schedule");
        assert_eq!(answers.len(), 3);
    });
    assert!(failure.is_none(), "{}", failure.unwrap());
}
