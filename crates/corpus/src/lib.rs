//! # `xpath_corpus` — multi-document serving over the Theorem-1 pipeline
//!
//! `ppl_xpath::Session` (PR 4) makes *one* document servable from many
//! threads; this crate scales that to *many* documents.  A [`Corpus`] ingests
//! named XML documents (strings, files, or a directory walk) and owns one
//! session per document behind a **memory-bounded LRU pool**:
//!
//! * **byte accounting** — each pooled session is charged its tree size plus
//!   the occupancy of its shared matrix store (`SharedMatrixStore::
//!   approx_bytes`, summing compiled relations and Prop. 10 successor
//!   lists).  The `|t|³` PPLbin compilation of Theorem 1 is exactly the
//!   state worth caching per document — and exactly the state that grows
//!   without bound if nobody evicts it;
//! * **two-tier LRU eviction** — when the pool exceeds
//!   [`CorpusConfig::memory_budget`], the least-recently-used session first
//!   drops its matrix cache (cheap to rebuild: the answers are recomputed,
//!   never wrong), and only then the session itself; the tree is always
//!   retained, so an evicted document rebuilds its session from the shared
//!   `Arc<Tree>` on the next request.  [`CorpusStats`] counts admissions,
//!   evictions and rebuilds;
//! * **shared plan cache** — plans are keyed by `(query, output variables,
//!   tree-size band)`, so one `Planner` decision (parse, Definition 1
//!   check, Fig. 7 translation, engine choice) is reused across documents of
//!   similar size instead of being re-derived per document;
//! * **cross-document fan-out** — [`Corpus::answer_all`] and
//!   [`Corpus::answer_where`] execute one query over every (matching)
//!   document on a fixed `std::thread::scope` worker pool fed through a
//!   bounded work queue ([`queue::BoundedQueue`]), returning per-document
//!   answers tagged by document name.
//!
//! The [`protocol`] module is the sans-IO half of the `pplxd` wire
//! protocol (`LOAD` / `QUERY` / `QUERYALL` / `STATS` / `EVICT` / `QUIT` /
//! `SHUTDOWN`); the [`server`] module serves it over TCP — a portable
//! thread-per-client loop or, on Linux, the [`reactor`] epoll event loop
//! with request pipelining and backpressure.  The `pplxd` binary is a thin
//! wrapper around it, and `pplx --connect host:port` is the matching
//! client.
//!
//! ```
//! use xpath_corpus::Corpus;
//!
//! let corpus = Corpus::new();
//! corpus.insert_xml("bib1", "<bib><book><author/><title/></book></bib>").unwrap();
//! corpus.insert_xml("bib2", "<bib><book><author/></book><book><author/></book></bib>").unwrap();
//!
//! let per_doc = corpus.answer_all("descendant::author[. is $a]", &["a"]).unwrap();
//! assert_eq!(per_doc.len(), 2);
//! assert_eq!(per_doc[0].name, "bib1");
//! assert_eq!(per_doc[0].answers.len(), 1);
//! assert_eq!(per_doc[1].answers.len(), 2);
//! ```

pub mod protocol;
pub mod queue;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod router;
pub mod server;

use ppl_xpath::document::DocumentError;
use ppl_xpath::{AnswerSet, CompileError, Engine, Planner, QueryError, QueryPlan, Session};
use queue::BoundedQueue;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use xpath_sync::atomic::{AtomicU64, Ordering};
use xpath_sync::Mutex;
use xpath_ast::{parse_path, Var};
use xpath_pplbin::EditApplyStats;
use xpath_tree::{EditKind, NodeId, Tree, TreeError};
use xpath_xml::{parse_with, ParseOptions};

/// Configuration of a [`Corpus`].
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Approximate byte budget for the session pool (tree bytes + matrix
    /// store occupancy, summed over live sessions).  `None` = unbounded.
    pub memory_budget: Option<usize>,
    /// Worker threads of the cross-document fan-out pool.
    pub threads: usize,
    /// Capacity of the bounded fan-out work queue.
    pub queue_capacity: usize,
    /// Engine forced on every plan (`None` = let the planner decide per
    /// size band).
    pub engine: Option<Engine>,
    /// XML parse options used by the ingestion paths.
    pub parse_options: ParseOptions,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            memory_budget: None,
            threads: 4,
            queue_capacity: 8,
            engine: None,
            parse_options: ParseOptions::default(),
        }
    }
}

/// Counters describing a [`Corpus`]'s pool behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Documents currently ingested.
    pub documents: usize,
    /// Documents with a live (non-evicted) session.
    pub live_sessions: usize,
    /// Approximate bytes charged to the session pool right now.
    pub pool_bytes: usize,
    /// Sessions built (first admission or rebuild after eviction).
    pub admissions: u64,
    /// Admissions that were rebuilds of a previously evicted session.
    pub rebuilds: u64,
    /// Tier-1 evictions: a session's matrix cache was dropped.
    pub cache_evictions: u64,
    /// Tier-2 evictions: a whole session was dropped from the pool.
    pub session_evictions: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses (a planner decision was derived).
    pub plan_misses: u64,
    /// Live edits applied through [`Corpus::mutate`].
    pub edits: u64,
    /// Edits that carried a warm session through the edit incrementally.
    pub edits_incremental: u64,
    /// Edits applied to a document without a live session (next query
    /// compiles cold).
    pub edits_full: u64,
    /// Matrix rows recomputed (not merely remapped) across all edits.
    pub edit_rows_invalidated: u64,
}

/// Errors raised by corpus operations.
#[derive(Debug)]
pub enum CorpusError {
    /// The named document is not in the corpus.
    UnknownDocument(String),
    /// Ingestion of a document failed.
    Document {
        /// The document being ingested.
        name: String,
        /// The underlying parse failure.
        source: DocumentError,
    },
    /// Query compilation / planning failed (document-independent).
    Compile(CompileError),
    /// Query execution failed on one document.
    Query {
        /// The document whose execution failed.
        name: String,
        /// The underlying engine error.
        source: QueryError,
    },
    /// A filesystem ingestion path failed.
    Io(String),
    /// A fan-out worker panicked while answering one document.  The panic is
    /// caught at the job boundary so one bad document cannot take down the
    /// pool (or, in `pplxd`, the daemon) — the failure is reported like any
    /// other per-document error.
    Panicked {
        /// The document whose job panicked.
        name: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A live edit ([`Corpus::mutate`]) was rejected by the tree layer.
    Edit {
        /// The document being edited.
        name: String,
        /// The underlying tree-edit failure.
        source: TreeError,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::UnknownDocument(name) => write!(f, "unknown document '{name}'"),
            CorpusError::Document { name, source } => {
                write!(f, "cannot ingest document '{name}': {source}")
            }
            CorpusError::Compile(e) => write!(f, "query does not compile: {e}"),
            CorpusError::Query { name, source } => {
                write!(f, "query failed on document '{name}': {source}")
            }
            CorpusError::Io(message) => write!(f, "{message}"),
            CorpusError::Panicked { name, message } => {
                write!(f, "worker panicked on document '{name}': {message}")
            }
            CorpusError::Edit { name, source } => {
                write!(f, "cannot edit document '{name}': {source}")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// The answers of one document in a cross-document fan-out, tagged by the
/// document's name and carrying the tree snapshot the answers were
/// computed against — node ids in `answers` index *this* tree, which stays
/// valid even if the corpus document is concurrently replaced by a `LOAD`.
#[derive(Debug, Clone)]
pub struct DocAnswer {
    /// The document name the answers belong to.
    pub name: String,
    /// The answer set over that document.
    pub answers: AnswerSet,
    /// The tree the answers were computed against.
    pub tree: Arc<Tree>,
}

/// Equality ignores the tree snapshot: two fan-out results agree when the
/// same documents produced the same answer tuples.
impl PartialEq for DocAnswer {
    fn eq(&self, other: &DocAnswer) -> bool {
        self.name == other.name && self.answers == other.answers
    }
}

impl Eq for DocAnswer {}

/// One edit of a live document, applied through [`Corpus::mutate`].
#[derive(Debug, Clone)]
pub enum DocEdit {
    /// Graft a copy of `subtree` as the `index`-th child of `parent`.
    Insert {
        /// Preorder id of the parent node (current tree coordinates).
        parent: u32,
        /// Child position under `parent` (clamped by the tree layer's
        /// contract: out-of-range indices are rejected).
        index: usize,
        /// The subtree to graft.
        subtree: Tree,
    },
    /// Remove the subtree rooted at `node` (never the root).
    Delete {
        /// Preorder id of the subtree root to remove.
        node: u32,
    },
    /// Change the label of `node`.
    Relabel {
        /// Preorder id of the node to relabel.
        node: u32,
        /// The new label.
        label: String,
    },
}

/// What one [`Corpus::mutate`] call did.
#[derive(Debug, Clone)]
pub struct MutateOutcome {
    /// Which kind of edit was applied.
    pub kind: EditKind,
    /// Node count of the document after the edit.
    pub nodes: usize,
    /// The document's edit epoch after this edit (1 for the first edit
    /// since ingestion; a `LOAD` replacing the document resets it).
    pub epoch: u64,
    /// Whether a warm session was carried through the edit incrementally
    /// (`false`: the document had no live session, so there was nothing to
    /// patch and the next query compiles cold).
    pub incremental: bool,
    /// Per-entry patch/rebuild counters of the incremental carry-over
    /// (all zero when `incremental` is false).
    pub stats: EditApplyStats,
}

/// One pooled document: the always-retained tree plus the evictable session.
#[derive(Debug)]
struct DocEntry {
    tree: Arc<Tree>,
    tree_bytes: usize,
    session: Option<Session>,
    last_used: u64,
    ever_built: bool,
    /// Edits applied since this document was (last) ingested.
    epoch: u64,
}

impl DocEntry {
    fn pooled_bytes(&self) -> usize {
        match &self.session {
            Some(session) => self.tree_bytes + session.store().approx_bytes(),
            None => 0,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    docs: BTreeMap<String, DocEntry>,
    tick: u64,
    admissions: u64,
    rebuilds: u64,
    cache_evictions: u64,
    session_evictions: u64,
    edits: u64,
    edits_incremental: u64,
    edits_full: u64,
    edit_rows_invalidated: u64,
}

/// Key of the shared plan cache: `(query source, output variables,
/// tree-size band)`.  Documents in the same power-of-two size band share one
/// planner decision.
type PlanKey = (String, String, u32);

/// A corpus of named documents served through a memory-bounded session pool.
///
/// All methods take `&self`; the type is `Send + Sync` and is meant to be
/// shared behind an `Arc` by however many serving threads the traffic needs
/// (the `pplxd` daemon spawns one connection-handler thread per client over
/// one shared corpus).
#[derive(Debug)]
pub struct Corpus {
    config: CorpusConfig,
    inner: Mutex<Inner>,
    plans: Mutex<HashMap<PlanKey, QueryPlan>>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    /// Fault injection for the pool tests: fan-out jobs for these documents
    /// panic, exercising the catch-at-job-boundary path.
    #[cfg(test)]
    panic_docs: Mutex<std::collections::HashSet<String>>,
}

/// Render a caught panic payload (`String` / `&str` payloads, which is what
/// `panic!` produces; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Corpus>();

/// Approximate heap bytes of a tree: per-node bookkeeping plus label
/// storage.  Deliberately coarse — the budget it feeds is approximate by
/// contract.
fn approx_tree_bytes(tree: &Tree) -> usize {
    let labels: usize = tree
        .nodes()
        .map(|n| tree.label_str(n).len())
        .sum();
    tree.len() * 32 + labels
}

/// The power-of-two size band of a tree (`⌊log2 |t|⌋ + 1`): documents in the
/// same band share plan-cache entries.
fn size_band(tree_size: usize) -> u32 {
    usize::BITS - tree_size.leading_zeros()
}

impl Default for Corpus {
    fn default() -> Corpus {
        Corpus::new()
    }
}

impl Corpus {
    /// An empty corpus with the default configuration (unbounded pool).
    pub fn new() -> Corpus {
        Corpus::with_config(CorpusConfig::default())
    }

    /// An empty corpus with an explicit configuration.
    pub fn with_config(config: CorpusConfig) -> Corpus {
        Corpus {
            config,
            inner: Mutex::new(Inner::default()),
            plans: Mutex::new(HashMap::new()),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            #[cfg(test)]
            panic_docs: Mutex::new(std::collections::HashSet::new()),
        }
    }

    /// The configuration the corpus was created with.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    fn lock(&self) -> xpath_sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    // -- ingestion -----------------------------------------------------------

    /// Ingest an XML document under `name` (replacing any previous document
    /// of that name).  Returns the node count.
    pub fn insert_xml(&self, name: &str, xml: &str) -> Result<usize, CorpusError> {
        let tree = parse_with(xml, &self.config.parse_options).map_err(|e| {
            CorpusError::Document {
                name: name.to_string(),
                source: DocumentError::Xml(e),
            }
        })?;
        Ok(self.insert_tree(name, tree))
    }

    /// Ingest a document given in the compact term syntax `a(b,c(d))`.
    pub fn insert_terms(&self, name: &str, terms: &str) -> Result<usize, CorpusError> {
        let tree = Tree::from_terms(terms).map_err(|e| CorpusError::Document {
            name: name.to_string(),
            source: DocumentError::Terms(e),
        })?;
        Ok(self.insert_tree(name, tree))
    }

    /// Ingest an already constructed tree.  Returns the node count.
    pub fn insert_tree(&self, name: &str, tree: Tree) -> usize {
        let nodes = tree.len();
        let tree_bytes = approx_tree_bytes(&tree);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.docs.insert(
            name.to_string(),
            DocEntry {
                tree: Arc::new(tree),
                tree_bytes,
                session: None,
                last_used: tick,
                ever_built: false,
                epoch: 0,
            },
        );
        nodes
    }

    /// Ingest one XML file; the document name is the file stem.  Returns the
    /// name used.
    pub fn load_file(&self, path: &Path) -> Result<String, CorpusError> {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| CorpusError::Io(format!("no usable file name in {}", path.display())))?
            .to_string();
        let xml = std::fs::read_to_string(path)
            .map_err(|e| CorpusError::Io(format!("cannot read {}: {e}", path.display())))?;
        self.insert_xml(&name, &xml)?;
        Ok(name)
    }

    /// Walk a directory (recursively, skipping symlinks entirely so link
    /// cycles cannot loop the walk) and ingest every `*.xml` file.
    /// Document names are the `/`-separated paths relative to `dir`, minus
    /// the extension (`sub/two` for `dir/sub/two.xml`), so files sharing a
    /// stem in different subdirectories never overwrite each other.
    /// Returns the ingested document names, sorted.
    pub fn load_dir(&self, dir: &Path) -> Result<Vec<String>, CorpusError> {
        let io_err = |path: &Path, e: std::io::Error| {
            CorpusError::Io(format!("cannot read {}: {e}", path.display()))
        };
        let mut names = Vec::new();
        let mut stack = vec![dir.to_path_buf()];
        while let Some(current) = stack.pop() {
            let entries = std::fs::read_dir(&current).map_err(|e| io_err(&current, e))?;
            for entry in entries {
                let entry = entry.map_err(|e| io_err(&current, e))?;
                let path = entry.path();
                let meta = std::fs::symlink_metadata(&path).map_err(|e| io_err(&path, e))?;
                if meta.is_dir() {
                    stack.push(path);
                } else if meta.is_file() && path.extension().is_some_and(|ext| ext == "xml") {
                    let name = path
                        .strip_prefix(dir)
                        .unwrap_or(&path)
                        .with_extension("")
                        .components()
                        .filter_map(|c| c.as_os_str().to_str())
                        .collect::<Vec<_>>()
                        .join("/");
                    if name.is_empty() {
                        return Err(CorpusError::Io(format!(
                            "no usable document name for {}",
                            path.display()
                        )));
                    }
                    let xml =
                        std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
                    self.insert_xml(&name, &xml)?;
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    // -- inspection ----------------------------------------------------------

    /// Number of ingested documents.
    pub fn len(&self) -> usize {
        self.lock().docs.len()
    }

    /// True when no documents are ingested.
    pub fn is_empty(&self) -> bool {
        self.lock().docs.is_empty()
    }

    /// Is `name` in the corpus?
    pub fn contains(&self, name: &str) -> bool {
        self.lock().docs.contains_key(name)
    }

    /// The ingested document names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.lock().docs.keys().cloned().collect()
    }

    /// The tree of a document, without touching the LRU state (used by the
    /// daemon to render answer tuples).
    pub fn tree(&self, name: &str) -> Option<Arc<Tree>> {
        self.lock().docs.get(name).map(|e| Arc::clone(&e.tree))
    }

    /// Remove a document (tree, session and all) from the corpus.
    pub fn remove(&self, name: &str) -> bool {
        self.lock().docs.remove(name).is_some()
    }

    /// Pool and plan-cache counters.
    pub fn stats(&self) -> CorpusStats {
        let inner = self.lock();
        CorpusStats {
            documents: inner.docs.len(),
            live_sessions: inner.docs.values().filter(|e| e.session.is_some()).count(),
            pool_bytes: inner.docs.values().map(DocEntry::pooled_bytes).sum(),
            admissions: inner.admissions,
            rebuilds: inner.rebuilds,
            cache_evictions: inner.cache_evictions,
            session_evictions: inner.session_evictions,
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            edits: inner.edits,
            edits_incremental: inner.edits_incremental,
            edits_full: inner.edits_full,
            edit_rows_invalidated: inner.edit_rows_invalidated,
        }
    }

    // -- the session pool ----------------------------------------------------

    /// The serving session of a document: touches the LRU clock, rebuilds
    /// the session if it was evicted, and enforces the memory budget.
    /// The returned session is a cheap clone sharing the pooled cache.
    pub fn session(&self, name: &str) -> Result<Session, CorpusError> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let (session, built, rebuilt) = {
            let entry = inner
                .docs
                .get_mut(name)
                .ok_or_else(|| CorpusError::UnknownDocument(name.to_string()))?;
            entry.last_used = tick;
            match &entry.session {
                Some(session) => (session.clone(), false, false),
                None => {
                    let session = Session::from_shared_tree(Arc::clone(&entry.tree));
                    let rebuilt = entry.ever_built;
                    entry.session = Some(session.clone());
                    entry.ever_built = true;
                    (session, true, rebuilt)
                }
            }
        };
        if built {
            inner.admissions += 1;
        }
        if rebuilt {
            inner.rebuilds += 1;
        }
        self.enforce_budget(&mut inner, Some(name));
        Ok(session)
    }

    /// Drop a document's session (and its matrix cache) from the pool; the
    /// tree is kept and the session rebuilds on the next request.  Returns
    /// whether a live session was dropped.
    pub fn evict(&self, name: &str) -> bool {
        let mut inner = self.lock();
        let Some(entry) = inner.docs.get_mut(name) else {
            return false;
        };
        let had_session = entry.session.take().is_some();
        if had_session {
            inner.session_evictions += 1;
        }
        had_session
    }

    /// Drop every live session from the pool.  Returns how many were
    /// dropped.
    pub fn evict_all(&self) -> usize {
        let mut inner = self.lock();
        let mut dropped = 0;
        for entry in inner.docs.values_mut() {
            if entry.session.take().is_some() {
                dropped += 1;
            }
        }
        inner.session_evictions += dropped as u64;
        dropped
    }

    // -- live edits ----------------------------------------------------------

    /// Apply one edit to a live document, carrying its warm session through
    /// the edit instead of recompiling it.
    ///
    /// Fork-and-swap: the edit runs on a *snapshot* (tree `Arc` + session
    /// clone) taken under the lock, the expensive work —
    /// [`Tree::insert_subtree`]-family edits plus
    /// [`Session::fork_edited`]'s row-wise cache patching — happens with
    /// the lock *released*, and the result is swapped in only if the
    /// document was not concurrently replaced (checked by tree pointer
    /// identity; a race retries on the new snapshot).  Concurrent queries
    /// therefore never block behind an edit and never observe a
    /// half-applied one: they hold `Arc`s to the old tree/session pair
    /// until they finish, and the swap is a single pointer exchange.
    pub fn mutate(&self, name: &str, edit: &DocEdit) -> Result<MutateOutcome, CorpusError> {
        loop {
            let (tree, session) = {
                let inner = self.lock();
                let entry = inner
                    .docs
                    .get(name)
                    .ok_or_else(|| CorpusError::UnknownDocument(name.to_string()))?;
                (Arc::clone(&entry.tree), entry.session.clone())
            };
            let (new_tree, delta) = match edit {
                DocEdit::Insert { parent, index, subtree } => {
                    tree.insert_subtree(NodeId(*parent), *index, subtree)
                }
                DocEdit::Delete { node } => tree.delete_subtree(NodeId(*node)),
                DocEdit::Relabel { node, label } => tree.relabel(NodeId(*node), label),
            }
            .map_err(|source| CorpusError::Edit {
                name: name.to_string(),
                source,
            })?;
            let new_tree = Arc::new(new_tree);
            let (new_session, stats) = match &session {
                Some(s) => {
                    let (forked, stats) = s.fork_edited(Arc::clone(&new_tree), &delta);
                    (Some(forked), stats)
                }
                None => (None, EditApplyStats::default()),
            };

            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let Some(entry) = inner.docs.get_mut(name) else {
                return Err(CorpusError::UnknownDocument(name.to_string()));
            };
            if !Arc::ptr_eq(&entry.tree, &tree) {
                // Lost the race against a LOAD or another MUTATE: redo the
                // edit on the current snapshot.
                continue;
            }
            entry.tree_bytes = approx_tree_bytes(&new_tree);
            entry.tree = Arc::clone(&new_tree);
            entry.session = new_session;
            entry.last_used = tick;
            entry.epoch += 1;
            let outcome = MutateOutcome {
                kind: delta.kind,
                nodes: new_tree.len(),
                epoch: entry.epoch,
                incremental: session.is_some(),
                stats,
            };
            inner.edits += 1;
            if outcome.incremental {
                inner.edits_incremental += 1;
            } else {
                inner.edits_full += 1;
            }
            inner.edit_rows_invalidated += stats.rows_invalidated;
            self.enforce_budget(&mut inner, Some(name));
            return Ok(outcome);
        }
    }

    /// The edit epoch of a document (0 = never edited since ingestion).
    pub fn epoch(&self, name: &str) -> Option<u64> {
        self.lock().docs.get(name).map(|e| e.epoch)
    }

    /// Re-run budget enforcement (normally done automatically after every
    /// session access and query).
    pub fn maintain(&self) {
        let mut inner = self.lock();
        self.enforce_budget(&mut inner, None);
    }

    /// Evict least-recently-used pool state until the budget holds again.
    /// Tier 1 drops a victim's matrix cache; tier 2 drops the session.  The
    /// `protect`ed document (the one just requested) is evicted only when it
    /// is the last live session — and then only its cache, never the
    /// session itself.
    fn enforce_budget(&self, inner: &mut Inner, protect: Option<&str>) {
        let Some(budget) = self.config.memory_budget else {
            return;
        };
        loop {
            let pool: usize = inner.docs.values().map(DocEntry::pooled_bytes).sum();
            if pool <= budget {
                return;
            }
            let victim = inner
                .docs
                .iter()
                .filter(|(name, entry)| {
                    entry.session.is_some() && Some(name.as_str()) != protect
                })
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    let entry = inner.docs.get_mut(&name).expect("victim exists");
                    let session = entry.session.as_ref().expect("victim has a session");
                    if session.store().approx_bytes() > 0 {
                        session.clear_cache();
                        inner.cache_evictions += 1;
                    } else {
                        entry.session = None;
                        inner.session_evictions += 1;
                    }
                }
                None => {
                    // Only the protected session is left: drop its cache if
                    // that helps, otherwise the budget simply cannot be met
                    // (a single tree outweighs it) and we stop.
                    let Some(name) = protect else { return };
                    let Some(entry) = inner.docs.get_mut(name) else { return };
                    let Some(session) = entry.session.as_ref() else { return };
                    if session.store().approx_bytes() == 0 {
                        return;
                    }
                    session.clear_cache();
                    inner.cache_evictions += 1;
                }
            }
        }
    }

    // -- planning ------------------------------------------------------------

    /// Prepare `query` for `session` through the shared plan cache: one
    /// planner decision per `(query, vars, size band)`.
    fn plan_for(
        &self,
        session: &Session,
        query: &str,
        vars: &[&str],
    ) -> Result<QueryPlan, CorpusError> {
        let key: PlanKey = (query.to_string(), vars.join(","), size_band(session.len()));
        if let Some(plan) = self
            .plans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(&key)
        {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan.clone());
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let path = parse_path(query).map_err(|e| CorpusError::Compile(e.into()))?;
        let output: Vec<Var> = vars.iter().map(|n| Var::new(n)).collect();
        let plan = Planner::default()
            .plan_with(session, path, output, self.config.engine)
            .map_err(CorpusError::Compile)?;
        self.plans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(key, plan.clone());
        Ok(plan)
    }

    /// Drop every cached plan (used by tests; plans are also correct across
    /// evictions, so there is no correctness reason to call this).
    pub fn clear_plan_cache(&self) {
        self.plans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clear();
    }

    // -- answering -----------------------------------------------------------

    /// Answer one query over one document, through the session pool and the
    /// shared plan cache.
    pub fn answer(&self, name: &str, query: &str, vars: &[&str]) -> Result<AnswerSet, CorpusError> {
        self.answer_tagged(name, query, vars).map(|doc| doc.answers)
    }

    /// Like [`Corpus::answer`], but returns the answers together with the
    /// tree snapshot they were computed against.  Callers that render node
    /// ids (the `pplxd` daemon) must use *this* tree: re-fetching the
    /// document after answering races with concurrent `LOAD`s replacing it.
    pub fn answer_tagged(
        &self,
        name: &str,
        query: &str,
        vars: &[&str],
    ) -> Result<DocAnswer, CorpusError> {
        let session = self.session(name)?;
        let plan = self.plan_for(&session, query, vars)?;
        let answers = session.execute(&plan).map_err(|e| CorpusError::Query {
            name: name.to_string(),
            source: e,
        })?;
        // Execution grows the matrix cache; re-check the budget.
        let mut inner = self.lock();
        self.enforce_budget(&mut inner, None);
        drop(inner);
        Ok(DocAnswer {
            name: name.to_string(),
            answers,
            tree: session.shared_tree(),
        })
    }

    /// Answer one query over *every* document: fan out over the fixed
    /// worker pool, return per-document answers tagged by name, in name
    /// order.  On failure the error of the lexicographically smallest
    /// failing document is returned.
    pub fn answer_all(&self, query: &str, vars: &[&str]) -> Result<Vec<DocAnswer>, CorpusError> {
        self.answer_where(|_| true, query, vars)
    }

    /// Answer one query over every document whose name satisfies `pred`
    /// (same contract as [`Corpus::answer_all`]).
    pub fn answer_where<F>(
        &self,
        pred: F,
        query: &str,
        vars: &[&str],
    ) -> Result<Vec<DocAnswer>, CorpusError>
    where
        F: Fn(&str) -> bool,
    {
        let mut out = Vec::new();
        for (_, result) in self.answer_where_detailed(pred, query, vars) {
            out.push(result?);
        }
        Ok(out)
    }

    /// Like [`Corpus::answer_all`], but a failing document does not abort
    /// the fan-out: every document reports its own `Result`, tagged by
    /// name, in name order.  The `pplxd` `QUERYALL` command uses this so
    /// healthy documents still answer next to a sick one.
    pub fn answer_all_detailed(
        &self,
        query: &str,
        vars: &[&str],
    ) -> Vec<(String, Result<DocAnswer, CorpusError>)> {
        self.answer_where_detailed(|_| true, query, vars)
    }

    /// [`Corpus::answer_all_detailed`] restricted to documents whose name
    /// satisfies `pred`.
    pub fn answer_where_detailed<F>(
        &self,
        pred: F,
        query: &str,
        vars: &[&str],
    ) -> Vec<(String, Result<DocAnswer, CorpusError>)>
    where
        F: Fn(&str) -> bool,
    {
        let names: Vec<String> = self.names().into_iter().filter(|n| pred(n)).collect();
        if names.is_empty() {
            return Vec::new();
        }
        let slots: Vec<Mutex<Option<Result<DocAnswer, CorpusError>>>> =
            names.iter().map(|_| Mutex::new(None)).collect();
        let work: BoundedQueue<usize> = BoundedQueue::new(self.config.queue_capacity.max(1));
        let workers = self.config.threads.clamp(1, names.len());
        xpath_sync::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(i) = work.pop() {
                        // Catch panics at the job boundary: a panicking
                        // document must surface as a per-document error,
                        // not unwind the worker (which would poison shared
                        // locks and re-panic the whole scope).
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || {
                                #[cfg(test)]
                                if self
                                    .panic_docs
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .contains(&names[i])
                                {
                                    panic!("injected job panic");
                                }
                                self.answer_tagged(&names[i], query, vars)
                            },
                        ))
                        .unwrap_or_else(|payload| {
                            Err(CorpusError::Panicked {
                                name: names[i].clone(),
                                message: panic_message(payload.as_ref()),
                            })
                        });
                        *slots[i]
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(result);
                    }
                });
            }
            for i in 0..names.len() {
                work.push(i); // backpressure: blocks at queue capacity
            }
            work.close();
        });
        names
            .into_iter()
            .zip(slots)
            .map(|(name, slot)| {
                let result = slot
                    .into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .expect("every queued document gets a result");
                (name, result)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_doc_corpus() -> Corpus {
        let corpus = Corpus::new();
        corpus
            .insert_xml("bib1", "<bib><book><author/><title/></book></bib>")
            .unwrap();
        corpus
            .insert_terms("bib2", "bib(book(author,title),book(author,author,title))")
            .unwrap();
        corpus
    }

    /// A corpus whose every plan is forced onto the cached-matrix engine —
    /// tiny test documents would otherwise plan onto naive, which never
    /// touches the pool's matrix caches.
    fn ppl_corpus(budget: Option<usize>) -> Corpus {
        Corpus::with_config(CorpusConfig {
            memory_budget: budget,
            engine: Some(Engine::Ppl),
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn panicked_job_does_not_kill_the_pool() {
        let corpus = two_doc_corpus();
        corpus
            .panic_docs
            .lock()
            .unwrap()
            .insert("bib1".to_string());
        // The injected panic must come back as a per-document error — not
        // unwind through the worker, the scope, or the caller.
        let err = corpus
            .answer_all("descendant::book[child::author[. is $a]]", &["a"])
            .expect_err("the panicking document must fail the fan-out");
        match &err {
            CorpusError::Panicked { name, message } => {
                assert_eq!(name, "bib1");
                assert!(message.contains("injected"), "unexpected payload: {message}");
            }
            other => panic!("expected a Panicked error, got: {other}"),
        }
        // The pool (queue, sessions, plan cache) must still serve normally.
        corpus.panic_docs.lock().unwrap().clear();
        let answers = corpus
            .answer_all("descendant::book[child::author[. is $a]]", &["a"])
            .expect("the corpus must keep serving after a panicked job");
        assert_eq!(answers.len(), 2);
        assert!(answers.iter().all(|a| !a.answers.is_empty()));
    }

    #[test]
    fn ingestion_and_inspection_round_trip() {
        let corpus = two_doc_corpus();
        assert_eq!(corpus.len(), 2);
        assert!(!corpus.is_empty());
        assert!(corpus.contains("bib1"));
        assert!(!corpus.contains("bib3"));
        assert_eq!(corpus.names(), vec!["bib1", "bib2"]);
        assert_eq!(corpus.tree("bib2").unwrap().len(), 8);
        assert!(corpus.tree("nope").is_none());
        assert!(corpus.remove("bib1"));
        assert!(!corpus.remove("bib1"));
        assert_eq!(corpus.names(), vec!["bib2"]);
    }

    #[test]
    fn ingestion_errors_carry_the_document_name() {
        let corpus = Corpus::new();
        let err = corpus.insert_xml("broken", "<a><b></a>").unwrap_err();
        assert!(matches!(err, CorpusError::Document { .. }));
        assert!(err.to_string().contains("broken"), "{err}");
        let err = corpus.insert_terms("alsobad", "a(()").unwrap_err();
        assert!(err.to_string().contains("alsobad"), "{err}");
        assert!(corpus.is_empty(), "failed ingestion must not insert");
    }

    #[test]
    fn answers_match_a_fresh_session_per_document() {
        let corpus = two_doc_corpus();
        let query = "descendant::book[child::author[. is $y] and child::title[. is $z]]";
        let a1 = corpus.answer("bib1", query, &["y", "z"]).unwrap();
        let a2 = corpus.answer("bib2", query, &["y", "z"]).unwrap();
        assert_eq!(a1.len(), 1);
        assert_eq!(a2.len(), 3);
        let fresh = Session::from_terms("bib(book(author,title),book(author,author,title))").unwrap();
        assert_eq!(fresh.answer(query, &["y", "z"]).unwrap(), a2);
        let err = corpus.answer("nope", query, &["y", "z"]).unwrap_err();
        assert!(matches!(err, CorpusError::UnknownDocument(_)));
        let err = corpus.answer("bib1", "child::(", &[]).unwrap_err();
        assert!(matches!(err, CorpusError::Compile(_)));
    }

    #[test]
    fn answer_all_tags_and_orders_by_document_name() {
        let corpus = two_doc_corpus();
        let per_doc = corpus
            .answer_all("descendant::author[. is $a]", &["a"])
            .unwrap();
        assert_eq!(per_doc.len(), 2);
        assert_eq!(per_doc[0].name, "bib1");
        assert_eq!(per_doc[0].answers.len(), 1);
        assert_eq!(per_doc[1].name, "bib2");
        assert_eq!(per_doc[1].answers.len(), 3);
        // Single-threaded config answers identically.
        let single = Corpus::with_config(CorpusConfig {
            threads: 1,
            queue_capacity: 1,
            ..CorpusConfig::default()
        });
        single
            .insert_xml("bib1", "<bib><book><author/><title/></book></bib>")
            .unwrap();
        single
            .insert_terms("bib2", "bib(book(author,title),book(author,author,title))")
            .unwrap();
        assert_eq!(
            single.answer_all("descendant::author[. is $a]", &["a"]).unwrap(),
            per_doc
        );
    }

    #[test]
    fn answer_tagged_snapshots_the_tree_across_replacement() {
        // The daemon renders node ids against DocAnswer::tree; that
        // snapshot must stay valid even after a concurrent LOAD replaces
        // the document with a smaller one.
        let corpus = Corpus::new();
        corpus.insert_terms("d", "bib(book(author,title),book(author))").unwrap();
        let tagged = corpus.answer("d", "descendant::author[. is $a]", &["a"]).unwrap();
        let doc = corpus.answer_tagged("d", "descendant::author[. is $a]", &["a"]).unwrap();
        assert_eq!(doc.answers, tagged);
        assert_eq!(doc.tree.len(), 6);
        corpus.insert_terms("d", "r(a)").unwrap(); // replacement shrinks the doc
        for tuple in doc.answers.tuples() {
            for &node in tuple {
                assert_eq!(doc.tree.label_str(node), "author", "snapshot stays indexable");
            }
        }
        assert_eq!(corpus.tree("d").unwrap().len(), 2, "corpus serves the new doc");
    }

    #[test]
    fn answer_where_filters_by_name() {
        let corpus = two_doc_corpus();
        let only2 = corpus
            .answer_where(|n| n.ends_with('2'), "descendant::author[. is $a]", &["a"])
            .unwrap();
        assert_eq!(only2.len(), 1);
        assert_eq!(only2[0].name, "bib2");
        assert!(corpus
            .answer_where(|_| false, "descendant::author", &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn fan_out_with_many_documents_and_few_workers() {
        // More documents than workers and than queue capacity: the bounded
        // queue must backpressure, and every document must still answer.
        let corpus = Corpus::with_config(CorpusConfig {
            threads: 3,
            queue_capacity: 2,
            ..CorpusConfig::default()
        });
        for i in 0..17 {
            corpus
                .insert_terms(&format!("doc{i:02}"), "r(a(b),a(b,b))")
                .unwrap();
        }
        let per_doc = corpus.answer_all("descendant::b[. is $x]", &["x"]).unwrap();
        assert_eq!(per_doc.len(), 17);
        for (i, doc) in per_doc.iter().enumerate() {
            assert_eq!(doc.name, format!("doc{i:02}"), "name order");
            assert_eq!(doc.answers.len(), 3);
        }
    }

    #[test]
    fn fan_out_reports_the_smallest_failing_document() {
        let corpus = Corpus::with_config(CorpusConfig {
            engine: Some(Engine::Acq),
            ..CorpusConfig::default()
        });
        corpus.insert_terms("a", "r(l0,l1)").unwrap();
        corpus.insert_terms("b", "r(l0,l1)").unwrap();
        // Nest unions 9 deep: 2^9 = 512 disjuncts exceed the acq executor's
        // Prop. 9 distribution budget (256), so execution fails per
        // document and the fan-out must surface the smallest document name.
        let mut query = String::from("descendant::l0[. is $x]");
        for _ in 0..9 {
            query = format!("({query}) union ({query})");
        }
        let err = corpus.answer_all(&query, &["x"]).unwrap_err();
        match err {
            CorpusError::Query { name, .. } => assert_eq!(name, "a"),
            other => panic!("expected a per-document query error, got {other}"),
        }
        let err = corpus.answer("missing", "child::l0", &[]).unwrap_err();
        assert!(matches!(err, CorpusError::UnknownDocument(_)));
    }

    #[test]
    fn plan_cache_shares_decisions_within_a_size_band() {
        let corpus = Corpus::new();
        // Two documents in the same power-of-two size band (5 and 7 nodes)
        // share one planner decision; the third (64 nodes) derives its own.
        corpus.insert_terms("d1", "bib(book(author,title),book)").unwrap();
        corpus
            .insert_terms("d2", "bib(book(author,title),book(author,title))")
            .unwrap();
        corpus.answer("d1", "descendant::author[. is $a]", &["a"]).unwrap();
        corpus.answer("d2", "descendant::author[. is $a]", &["a"]).unwrap();
        corpus.answer("d1", "descendant::author[. is $a]", &["a"]).unwrap();
        let stats = corpus.stats();
        assert_eq!(stats.plan_misses, 1, "{stats:?}");
        assert_eq!(stats.plan_hits, 2, "{stats:?}");
        // A different variable list is a different plan.
        corpus.answer("d1", "descendant::author[. is $a]", &[]).unwrap();
        assert_eq!(corpus.stats().plan_misses, 2);
        // Documents in a *different* band derive their own decision.
        let mut big = String::from("bib(");
        for i in 0..200 {
            if i > 0 {
                big.push(',');
            }
            big.push_str("book(author,title)");
        }
        big.push(')');
        corpus.insert_terms("big", &big).unwrap();
        corpus.answer("big", "descendant::author[. is $a]", &["a"]).unwrap();
        assert_eq!(corpus.stats().plan_misses, 3);
        corpus.clear_plan_cache();
        corpus.answer("d1", "descendant::author[. is $a]", &["a"]).unwrap();
        assert_eq!(corpus.stats().plan_misses, 4);
    }

    #[test]
    fn sessions_are_pooled_and_admissions_counted() {
        let corpus = ppl_corpus(None);
        corpus.insert_terms("d", "r(a,b)").unwrap();
        assert_eq!(corpus.stats().live_sessions, 0);
        let s1 = corpus.session("d").unwrap();
        let s2 = corpus.session("d").unwrap();
        // Same pooled session: warming one warms the other.
        s1.answer("descendant::a[. is $x]", &["x"]).ok();
        assert_eq!(s2.cache_stats().lookups(), s1.cache_stats().lookups());
        let stats = corpus.stats();
        assert_eq!(stats.admissions, 1, "{stats:?}");
        assert_eq!(stats.rebuilds, 0);
        assert_eq!(stats.live_sessions, 1);
        assert!(matches!(
            corpus.session("missing").unwrap_err(),
            CorpusError::UnknownDocument(_)
        ));
    }

    #[test]
    fn explicit_eviction_drops_sessions_and_rebuild_is_counted() {
        let corpus = ppl_corpus(None);
        corpus.insert_terms("d", "r(a,b)").unwrap();
        corpus.answer("d", "descendant::a[. is $x]", &["x"]).unwrap();
        assert!(corpus.stats().pool_bytes > 0);
        assert!(corpus.evict("d"));
        assert!(!corpus.evict("d"), "already evicted");
        assert!(!corpus.evict("missing"));
        let stats = corpus.stats();
        assert_eq!(stats.live_sessions, 0);
        assert_eq!(stats.pool_bytes, 0, "evicted sessions must not be charged");
        // The next answer rebuilds the session and is still correct.
        let again = corpus.answer("d", "descendant::a[. is $x]", &["x"]).unwrap();
        assert_eq!(again.len(), 1);
        let stats = corpus.stats();
        assert_eq!(stats.admissions, 2);
        assert_eq!(stats.rebuilds, 1);
        // evict_all over several documents.
        corpus.insert_terms("e", "r(a)").unwrap();
        corpus.answer("e", "child::a", &[]).unwrap();
        assert_eq!(corpus.evict_all(), 2);
        assert_eq!(corpus.stats().live_sessions, 0);
    }

    #[test]
    fn budget_enforcement_evicts_lru_first_and_answers_stay_correct() {
        // Budget far below the working set of four warmed documents: the
        // pool must thrash, counters must move, and answers must stay
        // exactly the cold-session answers.
        let corpus = ppl_corpus(Some(512));
        let query = "descendant::l1[not(descendant::* except child::l0)][. is $x]";
        for i in 0..4 {
            corpus
                .insert_terms(&format!("d{i}"), "l0(l1(l0,l2),l1(l2),l0(l1))")
                .unwrap();
        }
        for round in 0..3 {
            for i in 0..4 {
                let name = format!("d{i}");
                let got = corpus.answer(&name, query, &["x"]).unwrap();
                let cold = Session::from_shared_tree(corpus.tree(&name).unwrap());
                let plan = Planner::default()
                    .plan_with(
                        &cold,
                        parse_path(query).unwrap(),
                        vec![Var::new("x")],
                        Some(Engine::Ppl),
                    )
                    .unwrap();
                assert_eq!(got, cold.execute(&plan).unwrap(), "round {round} doc {name}");
            }
        }
        let stats = corpus.stats();
        assert!(
            stats.cache_evictions + stats.session_evictions > 0,
            "a 512-byte budget must evict: {stats:?}"
        );
        assert!(stats.rebuilds > 0, "thrash must rebuild sessions: {stats:?}");
        if let Some(budget) = corpus.config().memory_budget {
            assert!(
                stats.pool_bytes <= budget + 4 * 512,
                "pool must settle near the budget: {stats:?}"
            );
        }
    }

    #[test]
    fn unbounded_corpus_never_evicts() {
        let corpus = ppl_corpus(None);
        for i in 0..3 {
            corpus.insert_terms(&format!("d{i}"), "r(a(b),a)").unwrap();
        }
        for _ in 0..2 {
            corpus.answer_all("descendant::a[. is $x]", &["x"]).unwrap();
        }
        let stats = corpus.stats();
        assert_eq!(stats.cache_evictions, 0);
        assert_eq!(stats.session_evictions, 0);
        assert_eq!(stats.live_sessions, 3);
        assert!(stats.pool_bytes > 0);
    }

    #[test]
    fn load_file_and_load_dir_ingest_xml_files() {
        let dir = std::env::temp_dir().join(format!("xpath_corpus_test_{}", std::process::id()));
        let sub = dir.join("sub");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(dir.join("one.xml"), "<r><a/></r>").unwrap();
        std::fs::write(sub.join("two.xml"), "<r><a/><a/></r>").unwrap();
        // Same stem in a different directory: path-derived names keep both.
        std::fs::write(sub.join("one.xml"), "<other><b/></other>").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not xml").unwrap();
        // A symlink loop must not hang the walk (best-effort: some
        // filesystems refuse symlink creation; then nothing to test).
        #[cfg(unix)]
        let _ = std::os::unix::fs::symlink(&dir, sub.join("loop"));
        let corpus = Corpus::new();
        let names = corpus.load_dir(&dir).unwrap();
        assert_eq!(names, vec!["one", "sub/one", "sub/two"]);
        assert_eq!(corpus.len(), 3);
        assert!(!corpus.answer("sub/two", "child::a", &[]).unwrap().is_empty());
        assert!(!corpus.answer("sub/one", "child::b", &[]).unwrap().is_empty());
        assert!(!corpus.answer("one", "child::a", &[]).unwrap().is_empty());
        let err = corpus.load_file(&dir.join("missing.xml")).unwrap_err();
        assert!(matches!(err, CorpusError::Io(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_answering_over_a_shared_corpus() {
        let corpus = Arc::new(ppl_corpus(Some(4096)));
        for i in 0..4 {
            corpus.insert_terms(&format!("d{i}"), "l0(l1(l0,l2),l1(l2))").unwrap();
        }
        let expected = corpus
            .answer("d0", "descendant::l1[. is $x]", &["x"])
            .unwrap();
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let corpus = Arc::clone(&corpus);
                let expected = expected.clone();
                scope.spawn(move || {
                    for i in 0..4 {
                        let got = corpus
                            .answer(&format!("d{i}"), "descendant::l1[. is $x]", &["x"])
                            .unwrap();
                        assert_eq!(got, expected);
                    }
                });
            }
        });
        assert!(corpus.stats().plan_hits > 0);
    }

    #[test]
    fn size_bands_group_power_of_two_sizes() {
        assert_eq!(size_band(1), 1);
        assert_eq!(size_band(2), 2);
        assert_eq!(size_band(3), 2);
        assert_eq!(size_band(4), 3);
        assert_eq!(size_band(1023), 10);
        assert_eq!(size_band(1024), 11);
    }

    // -- live edits ----------------------------------------------------------

    /// After every edit the mutated document must answer exactly like a
    /// cold corpus ingested from the post-edit tree.
    fn assert_matches_cold(corpus: &Corpus, name: &str, query: &str) {
        let tree = corpus.tree(name).expect("document must exist");
        let cold = ppl_corpus(None);
        cold.insert_tree(name, (*tree).clone());
        let got = corpus.answer(name, query, &["x"]).unwrap();
        let want = cold.answer(name, query, &["x"]).unwrap();
        assert_eq!(got, want, "warm-mutated answers diverge from cold for {query}");
    }

    #[test]
    fn mutate_insert_is_incremental_on_a_warm_document() {
        let corpus = ppl_corpus(None);
        corpus
            .insert_terms("bib", "bib(book(author,title),book(author,author,title))")
            .unwrap();
        let query = "descendant::book[child::author[. is $x]]";
        // Warm the session so the edit has caches to carry over.
        corpus.answer("bib", query, &["x"]).unwrap();
        let subtree = Tree::from_terms("book(author,title)").unwrap();
        let outcome = corpus
            .mutate("bib", &DocEdit::Insert { parent: 0, index: 2, subtree })
            .unwrap();
        assert_eq!(outcome.kind, EditKind::Insert);
        assert!(outcome.incremental, "a warm document must fork its session");
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.nodes, 8 + 3);
        assert_matches_cold(&corpus, "bib", query);
        assert_matches_cold(&corpus, "bib", "child::book/child::author[. is $x]");
        let stats = corpus.stats();
        assert_eq!(stats.edits, 1);
        assert_eq!(stats.edits_incremental, 1);
        assert_eq!(stats.edits_full, 0);
    }

    #[test]
    fn mutate_on_a_cold_document_counts_as_a_full_rebuild() {
        let corpus = ppl_corpus(None);
        corpus.insert_terms("d", "r(a(b),a(b,b))").unwrap();
        let outcome = corpus
            .mutate("d", &DocEdit::Delete { node: 1 })
            .unwrap();
        assert!(!outcome.incremental, "no session existed to fork");
        assert_eq!(outcome.stats, EditApplyStats::default());
        let stats = corpus.stats();
        assert_eq!(stats.edits_full, 1);
        assert_eq!(stats.edits_incremental, 0);
        assert_matches_cold(&corpus, "d", "descendant::b[. is $x]");
    }

    #[test]
    fn delete_and_relabel_round_trip_and_bump_the_epoch() {
        let corpus = ppl_corpus(None);
        corpus
            .insert_terms("bib", "bib(book(author,title),book(author))")
            .unwrap();
        let query = "descendant::author[. is $x]";
        corpus.answer("bib", query, &["x"]).unwrap();
        corpus.mutate("bib", &DocEdit::Delete { node: 4 }).unwrap();
        assert_matches_cold(&corpus, "bib", query);
        let outcome = corpus
            .mutate(
                "bib",
                &DocEdit::Relabel { node: 3, label: "subtitle".to_string() },
            )
            .unwrap();
        assert_eq!(outcome.kind, EditKind::Relabel);
        assert_eq!(outcome.epoch, 2);
        assert_eq!(corpus.epoch("bib"), Some(2));
        assert_matches_cold(&corpus, "bib", query);
        assert_matches_cold(&corpus, "bib", "descendant::subtitle[. is $x]");
        // Replacement by LOAD resets the epoch: it is a new document.
        corpus.insert_terms("bib", "bib(book)").unwrap();
        assert_eq!(corpus.epoch("bib"), Some(0));
    }

    #[test]
    fn mutate_errors_name_the_document_and_leave_it_untouched() {
        let corpus = ppl_corpus(None);
        corpus.insert_terms("d", "r(a,b)").unwrap();
        let err = corpus
            .mutate("d", &DocEdit::Delete { node: 99 })
            .unwrap_err();
        match &err {
            CorpusError::Edit { name, .. } => assert_eq!(name, "d"),
            other => panic!("expected an Edit error, got: {other}"),
        }
        // Deleting the root is an edit error, not a corpus panic.
        let err = corpus.mutate("d", &DocEdit::Delete { node: 0 }).unwrap_err();
        assert!(matches!(err, CorpusError::Edit { .. }), "got: {err}");
        let err = corpus
            .mutate("nope", &DocEdit::Delete { node: 1 })
            .unwrap_err();
        assert!(matches!(err, CorpusError::UnknownDocument(_)), "got: {err}");
        assert_eq!(corpus.epoch("d"), Some(0));
        assert_eq!(corpus.stats().edits, 0);
    }

    #[test]
    fn queries_racing_a_mutate_see_a_consistent_snapshot() {
        let corpus = Arc::new(ppl_corpus(None));
        corpus
            .insert_terms("bib", "bib(book(author,title),book(author,title))")
            .unwrap();
        let query = "descendant::book[child::author[. is $x]]";
        let before = corpus.answer("bib", query, &["x"]).unwrap();
        std::thread::scope(|scope| {
            let writer = {
                let corpus = Arc::clone(&corpus);
                scope.spawn(move || {
                    for i in 0..16 {
                        let subtree = Tree::from_terms("book(author,title)").unwrap();
                        corpus
                            .mutate(
                                "bib",
                                &DocEdit::Insert { parent: 0, index: 2 + i, subtree },
                            )
                            .unwrap();
                    }
                })
            };
            for _ in 0..4 {
                let corpus = Arc::clone(&corpus);
                let before = before.clone();
                scope.spawn(move || {
                    for _ in 0..24 {
                        // Every read must be internally consistent: at least
                        // the pre-edit books, every answer tuple a real book
                        // node of the snapshot it was answered against.
                        let got = corpus.answer("bib", query, &["x"]).unwrap();
                        assert!(got.len() >= before.len());
                        assert!(got.len() <= before.len() + 16);
                    }
                });
            }
            writer.join().unwrap();
        });
        assert_eq!(corpus.epoch("bib"), Some(16));
        let after = corpus.answer("bib", query, &["x"]).unwrap();
        assert_eq!(after.len(), before.len() + 16);
        assert_matches_cold(&corpus, "bib", query);
    }
}
