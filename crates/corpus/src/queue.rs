//! A small bounded MPMC work queue for the corpus fan-out pool.
//!
//! [`BoundedQueue`] is a classic capacity-bounded queue over
//! `Mutex<VecDeque>` plus two condvars: producers block in
//! [`BoundedQueue::push`] while the queue is at capacity (backpressure —
//! a corpus fan-out over ten thousand documents never materialises ten
//! thousand pending work items), consumers block in [`BoundedQueue::pop`]
//! until an item arrives or the queue is closed.  After
//! [`BoundedQueue::close`], `pop` drains the remaining items and then
//! returns `None`, which is the worker-shutdown signal.

use std::collections::VecDeque;
use xpath_sync::{Condvar, Mutex, MutexGuard};

/// A blocking, capacity-bounded multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` pending items (`capacity >= 1`).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity >= 1, "a bounded queue needs capacity >= 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lock the queue state, recovering from poison.
    ///
    /// A worker that panics mid-`pop` (or a producer mid-`push`) poisons the
    /// mutex, but the `VecDeque` + `closed` flag are valid after any partial
    /// update — every mutation is a single push/pop/store.  Recovering keeps
    /// the rest of the pool draining work instead of cascading the panic
    /// through every thread that touches the queue.
    fn lock_state(&self) -> MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueue an item, blocking while the queue is at capacity.
    ///
    /// Panics if the queue has been closed — closing with producers still
    /// pushing is a caller bug, not a runtime condition.
    pub fn push(&self, item: T) {
        let mut state = self.lock_state();
        while state.items.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        assert!(!state.closed, "push on a closed BoundedQueue");
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
    }

    /// Dequeue an item, blocking until one is available.  Returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock_state();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Close the queue: consumers drain what is left, then see `None`.
    pub fn close(&self) {
        self.lock_state().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_single_thread() {
        let q = BoundedQueue::new(4);
        q.push(1);
        q.push(2);
        q.push(3);
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queues stay closed");
        assert_eq!(q.capacity(), 4);
    }

    #[test]
    fn consumers_block_until_close() {
        let q = BoundedQueue::new(2);
        let drained = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while q.pop().is_some() {
                        drained.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..20 {
                q.push(i); // blocks whenever more than 2 items are pending
            }
            q.close();
        });
        assert_eq!(drained.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn producers_respect_the_capacity_bound() {
        // A capacity-1 queue with a slow consumer: the producer can never
        // run ahead, so the observed pending count is always <= 1.
        let q = BoundedQueue::new(1);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut expected = 0;
                while let Some(item) = q.pop() {
                    assert_eq!(item, expected, "bounded queue must stay FIFO");
                    expected += 1;
                }
                assert_eq!(expected, 50);
            });
            for i in 0..50 {
                q.push(i);
            }
            q.close();
        });
    }

    #[test]
    fn poisoned_lock_does_not_wedge_the_queue() {
        let q = BoundedQueue::new(4);
        q.push(1);
        q.push(2);
        q.close();
        // `push` on a closed queue panics *while holding the state lock*,
        // poisoning the mutex — the same state a worker panicking mid-pop
        // leaves behind.  The queue must keep serving regardless.
        let pusher = std::thread::scope(|scope| scope.spawn(|| q.push(3)).join());
        assert!(pusher.is_err(), "push on a closed queue must panic");
        assert_eq!(q.pop(), Some(1), "pop must recover from the poisoned lock");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        q.close(); // close is idempotent even after poisoning
    }

    #[test]
    #[should_panic(expected = "closed BoundedQueue")]
    fn pushing_after_close_is_a_bug() {
        let q = BoundedQueue::new(1);
        q.close();
        q.push(1);
    }
}
