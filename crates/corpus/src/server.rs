//! The `pplxd` TCP serving layer.
//!
//! `pplxd` speaks a line-based protocol over TCP.  Every request is one
//! line; every response is a status line followed by zero or more payload
//! lines:
//!
//! ```text
//! -> LOAD bib <bib><book><author/><title/></book></bib>
//! <- OK 1
//! <- loaded bib nodes=4 documents=1
//! -> QUERY bib descendant::author[. is $a] -> a
//! <- OK 2
//! <- vars=a tuples=1
//! <- author#2
//! -> STATS
//! <- OK 9
//! <- documents=1
//! <- ...
//! -> QUIT
//! <- OK 1
//! <- bye
//! ```
//!
//! The status line is `OK <n>` (with exactly `n` payload lines following)
//! or `ERR <message>` (no payload).  The command set, parsing and
//! execution live in [`crate::protocol`] (sans-IO); this module owns the
//! sockets.  Two IO modes exist, selected by [`ServeOptions::io`] (`pplxd
//! --io threads|epoll`):
//!
//! * [`IoMode::Threads`] — one blocking handler thread per client; one
//!   response is written (and flushed) per request.  Portable.
//! * [`IoMode::Epoll`] — the [`crate::reactor`] event loop (Linux only):
//!   nonblocking sockets, request pipelining with in-order responses, and
//!   per-connection backpressure.
//!
//! In both modes transient `accept()` failures (ECONNABORTED, EINTR, and —
//! after a short sleep — EMFILE/ENFILE) are retried instead of killing the
//! daemon; only genuinely fatal listener errors stop the accept loop.  Both
//! modes also drop connections that stay silent past
//! [`ServeOptions::idle_timeout`] (`pplxd --idle-timeout`): a stalled or
//! half-dead client must not hold a handler thread or an epoll slot
//! forever.
//!
//! [`serve`] runs the thread-per-client loop over one shared [`Corpus`];
//! the `pplxd` binary wraps [`serve_with_options`], and `pplx --connect`
//! is the matching client.  The transport-level pieces — bounded line
//! reads, response framing, the deadline-aware client — live in
//! [`xpath_wire`], shared with the router and the CLI client.

pub use crate::protocol::{execute_command, parse_command, Command, DEFAULT_MAX_LINE};

use crate::protocol::render_response;
use crate::Corpus;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use xpath_sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use xpath_wire::{read_request_line, LineRead};

/// How the daemon multiplexes client connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// One blocking handler thread per client (portable fallback).
    Threads,
    /// Nonblocking epoll event loop with pipelining and backpressure
    /// (Linux only).
    Epoll,
}

impl Default for IoMode {
    /// Epoll on Linux, threads elsewhere.
    fn default() -> IoMode {
        if cfg!(target_os = "linux") {
            IoMode::Epoll
        } else {
            IoMode::Threads
        }
    }
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<IoMode, String> {
        match s {
            "threads" => Ok(IoMode::Threads),
            "epoll" => Ok(IoMode::Epoll),
            other => Err(format!("unknown io mode '{other}' (expected threads|epoll)")),
        }
    }
}

/// Default idle-connection timeout: a connection with no complete request
/// for this long is answered `ERR idle timeout` (best effort) and dropped.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Serving knobs of [`serve_with_options`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Cap on one request line, in bytes (`pplxd --max-line`).
    pub max_line: usize,
    /// Connection multiplexing strategy (`pplxd --io`).
    pub io: IoMode,
    /// Worker threads executing commands in [`IoMode::Epoll`] (the
    /// threads mode spawns per client instead).
    pub workers: usize,
    /// Drop connections with no activity for this long (`pplxd
    /// --idle-timeout`; `None` disables).  In-flight requests count as
    /// activity: a slow `QUERYALL` is work, not idleness.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_line: DEFAULT_MAX_LINE,
            io: IoMode::default(),
            workers: 4,
            idle_timeout: Some(DEFAULT_IDLE_TIMEOUT),
        }
    }
}

/// What to do about one failed `accept()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptDisposition {
    /// Transient, per-connection: retry immediately (ECONNABORTED, EINTR,
    /// ECONNRESET, or a spurious wakeup of a nonblocking listener).
    Retry,
    /// Resource exhaustion (EMFILE/ENFILE): back off briefly, then retry —
    /// existing clients closing will free descriptors.
    RetryAfterSleep,
    /// The listener itself is broken: stop serving.
    Fatal,
}

/// Classify one `accept()` error.  A transient condition — the peer gave
/// up while queued, a signal interrupted the call, the process briefly ran
/// out of file descriptors — must not kill a daemon with live clients.
pub(crate) fn classify_accept_error(e: &std::io::Error) -> AcceptDisposition {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::ConnectionAborted
        | ErrorKind::ConnectionReset
        | ErrorKind::Interrupted
        | ErrorKind::WouldBlock => AcceptDisposition::Retry,
        _ => match e.raw_os_error() {
            // ENFILE (23) / EMFILE (24): out of file descriptors.
            Some(23) | Some(24) => AcceptDisposition::RetryAfterSleep,
            _ => AcceptDisposition::Fatal,
        },
    }
}

/// How long the accept loop sleeps after EMFILE/ENFILE before retrying.
pub(crate) const ACCEPT_BACKOFF: Duration = Duration::from_millis(10);

fn write_response<W: Write>(
    writer: &mut W,
    result: Result<Vec<String>, String>,
) -> std::io::Result<()> {
    writer.write_all(&render_response(&result))?;
    writer.flush()
}

/// Serve one client connection until `QUIT`, `SHUTDOWN`, disconnect, or
/// idle timeout.  Returns `true` when the client requested a daemon
/// shutdown.
fn handle_client(
    stream: TcpStream,
    corpus: &Corpus,
    max_line: usize,
    idle_timeout: Option<Duration>,
) -> bool {
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    // The socket timeouts are the idle-timeout mechanism in this mode: a
    // read that stalls for the whole window wakes up WouldBlock/TimedOut
    // and the connection is dropped.  The write timeout guards the mirror
    // case — a peer that sends requests but never drains responses.
    if stream.set_read_timeout(idle_timeout).is_err()
        || stream.set_write_timeout(idle_timeout).is_err()
    {
        return false;
    }
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_request_line(&mut reader, max_line) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::TooLong) => {
                let message = format!("line too long (max {max_line} bytes)");
                if write_response(&mut writer, Err(message)).is_err() {
                    break;
                }
                continue; // the offending line was drained; keep serving
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle for the whole window (possibly mid-line): tell the
                // peer why, best effort, and drop the connection.
                let _ = write_response(
                    &mut writer,
                    Err("idle timeout, closing connection".to_string()),
                );
                break;
            }
            Ok(LineRead::Eof) | Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let command = match parse_command(&line) {
            Ok(command) => command,
            Err(message) => {
                if write_response(&mut writer, Err(message)).is_err() {
                    break;
                }
                continue;
            }
        };
        let result = execute_command(corpus, &command);
        if write_response(&mut writer, result).is_err() {
            break;
        }
        match command {
            Command::Quit => break,
            Command::Shutdown => return true,
            _ => {}
        }
    }
    false
}

/// The accept source of the thread-per-client loop.  Production code uses
/// the blanket [`TcpListener`] impl; tests inject scripted errors and
/// pre-connected streams to pin the accept loop's retry and shutdown
/// behavior.
trait Acceptor {
    /// Accept one client connection.
    fn accept_client(&self) -> std::io::Result<TcpStream>;
    /// The address the shutdown handler connects to, to wake the accept
    /// loop.
    fn wake_addr(&self) -> std::io::Result<SocketAddr>;
}

impl Acceptor for TcpListener {
    fn accept_client(&self) -> std::io::Result<TcpStream> {
        self.accept().map(|(stream, _)| stream)
    }

    fn wake_addr(&self) -> std::io::Result<SocketAddr> {
        self.local_addr()
    }
}

/// The thread-per-client accept loop, generic over its accept source.
fn serve_threads<A: Acceptor + Sync>(
    acceptor: A,
    corpus: Arc<Corpus>,
    max_line: usize,
    idle_timeout: Option<Duration>,
) -> std::io::Result<()> {
    let mut addr = acceptor.wake_addr()?;
    // The shutdown handler wakes the accept loop by connecting to the
    // listener; a wildcard bind address (0.0.0.0 / ::) is not connectable
    // on every platform, so target the loopback equivalent instead.
    if addr.ip().is_unspecified() {
        let loopback: std::net::IpAddr = if addr.is_ipv4() {
            std::net::Ipv4Addr::LOCALHOST.into()
        } else {
            std::net::Ipv6Addr::LOCALHOST.into()
        };
        addr.set_ip(loopback);
    }
    let shutdown = AtomicBool::new(false);
    xpath_sync::thread::scope(|scope| -> std::io::Result<()> {
        loop {
            let mut stream = match acceptor.accept_client() {
                Ok(stream) => stream,
                Err(e) => match classify_accept_error(&e) {
                    AcceptDisposition::Retry => continue,
                    AcceptDisposition::RetryAfterSleep => {
                        std::thread::sleep(ACCEPT_BACKOFF);
                        continue;
                    }
                    AcceptDisposition::Fatal => return Err(e),
                },
            };
            if shutdown.load(Ordering::SeqCst) {
                // A real client racing the shutdown wake must get an
                // answer, not a silent drop.  (The wake connection itself
                // also lands here; nobody reads its answer.)
                let _ = stream.write_all(b"ERR shutting down\n");
                return Ok(());
            }
            // Responses are small and latency-bound: without TCP_NODELAY a
            // pipelined client stalls on Nagle + delayed-ACK round trips.
            let _ = stream.set_nodelay(true);
            let corpus = Arc::clone(&corpus);
            let shutdown = &shutdown;
            scope.spawn(move || {
                if handle_client(stream, &corpus, max_line.max(1), idle_timeout) {
                    shutdown.store(true, Ordering::SeqCst);
                    // Wake the accept loop so it observes the flag.
                    let _ = TcpStream::connect(addr);
                }
            });
        }
    })
}

/// Run the daemon accept loop with one handler thread per client over the
/// shared corpus, until a client sends `SHUTDOWN`.  Returns once the accept
/// loop has stopped and every handler thread has finished.  Request lines
/// are capped at [`DEFAULT_MAX_LINE`] bytes; use [`serve_with_limit`] for a
/// different cap, or [`serve_with_options`] for the epoll event loop.
pub fn serve(listener: TcpListener, corpus: Arc<Corpus>) -> std::io::Result<()> {
    serve_with_limit(listener, corpus, DEFAULT_MAX_LINE)
}

/// [`serve`] with an explicit request-line cap in bytes (`pplxd
/// --max-line`).  Overlong lines are answered with `ERR line too long …`
/// and the connection keeps serving subsequent requests.
pub fn serve_with_limit(
    listener: TcpListener,
    corpus: Arc<Corpus>,
    max_line: usize,
) -> std::io::Result<()> {
    serve_threads(listener, corpus, max_line, Some(DEFAULT_IDLE_TIMEOUT))
}

/// Serve with explicit [`ServeOptions`]: the thread-per-client loop or, on
/// Linux, the epoll reactor with pipelining and backpressure.  Requesting
/// [`IoMode::Epoll`] elsewhere fails with `Unsupported`.
pub fn serve_with_options(
    listener: TcpListener,
    corpus: Arc<Corpus>,
    options: &ServeOptions,
) -> std::io::Result<()> {
    match options.io {
        IoMode::Threads => {
            serve_threads(listener, corpus, options.max_line, options.idle_timeout)
        }
        #[cfg(target_os = "linux")]
        IoMode::Epoll => crate::reactor::serve_epoll(
            listener,
            corpus,
            options.max_line.max(1),
            options.workers.max(1),
            options.idle_timeout,
        ),
        #[cfg(not(target_os = "linux"))]
        IoMode::Epoll => {
            let _ = (listener, corpus);
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "epoll io mode requires linux; use --io threads",
            ))
        }
    }
}

/// Bind a listener on `addr` (port 0 picks an ephemeral port) and return it
/// together with the resolved local address.
pub fn bind(addr: &str) -> std::io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    Ok((listener, local))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusConfig;
    use std::collections::VecDeque;
    use std::io::BufRead;
    use std::sync::Mutex;

    #[test]
    fn command_parsing_round_trip() {
        assert_eq!(
            parse_command("LOAD bib <bib><book/></bib>").unwrap(),
            Command::Load {
                name: "bib".into(),
                xml: "<bib><book/></bib>".into()
            }
        );
        assert_eq!(
            parse_command("LOADTERMS d a(b,c)").unwrap(),
            Command::LoadTerms {
                name: "d".into(),
                terms: "a(b,c)".into()
            }
        );
        assert_eq!(
            parse_command("QUERY bib descendant::author[. is $a] -> a").unwrap(),
            Command::Query {
                name: "bib".into(),
                query: "descendant::author[. is $a]".into(),
                vars: vec!["a".into()]
            }
        );
        assert_eq!(
            parse_command("QUERYALL descendant::book -> $x, y").unwrap(),
            Command::QueryAll {
                query: "descendant::book".into(),
                vars: vec!["x".into(), "y".into()]
            }
        );
        assert_eq!(
            parse_command("QUERY bib child::book").unwrap(),
            Command::Query {
                name: "bib".into(),
                query: "child::book".into(),
                vars: vec![]
            }
        );
        assert_eq!(parse_command("stats").unwrap(), Command::Stats);
        assert_eq!(parse_command("EVICT bib").unwrap(), Command::Evict(Some("bib".into())));
        assert_eq!(parse_command("EVICT").unwrap(), Command::Evict(None));
        assert_eq!(parse_command("QUIT").unwrap(), Command::Quit);
        assert_eq!(parse_command("SHUTDOWN").unwrap(), Command::Shutdown);
        assert!(parse_command("LOAD onlyname").unwrap_err().contains("usage"));
        assert!(parse_command("QUERYALL").unwrap_err().contains("usage"));
        assert!(parse_command("FROBNICATE x").unwrap_err().contains("unknown command"));
    }

    #[test]
    fn execute_load_query_stats_evict() {
        let corpus = Corpus::new();
        let load = parse_command("LOAD bib <bib><book><author/><title/></book></bib>").unwrap();
        let lines = execute_command(&corpus, &load).unwrap();
        assert_eq!(lines, vec!["loaded bib nodes=4 documents=1"]);

        let query =
            parse_command("QUERY bib descendant::author[. is $a] -> a").unwrap();
        let lines = execute_command(&corpus, &query).unwrap();
        assert_eq!(lines[0], "vars=a tuples=1");
        assert_eq!(lines[1], "author#2");

        let boolean = parse_command("QUERY bib descendant::author").unwrap();
        assert_eq!(
            execute_command(&corpus, &boolean).unwrap(),
            vec!["satisfiable=true"]
        );

        let stats = execute_command(&corpus, &Command::Stats).unwrap();
        assert!(stats.iter().any(|l| l == "documents=1"), "{stats:?}");
        assert!(stats.iter().any(|l| l.starts_with("pool_bytes=")), "{stats:?}");
        assert!(stats.iter().any(|l| l == "memory_budget=unbounded"), "{stats:?}");

        let evict = execute_command(&corpus, &Command::Evict(Some("bib".into()))).unwrap();
        assert_eq!(evict, vec!["evicted=true"]);
        let evict_all = execute_command(&corpus, &Command::Evict(None)).unwrap();
        assert_eq!(evict_all, vec!["evicted=0"]);

        // Errors: unknown doc, malformed query, malformed XML.
        let err = execute_command(
            &corpus,
            &parse_command("QUERY nope child::a").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown document"), "{err}");
        let err = execute_command(
            &corpus,
            &parse_command("QUERY bib child::(").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("compile"), "{err}");
        let err = execute_command(
            &corpus,
            &parse_command("LOAD broken <a><b></a>").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("broken"), "{err}");
    }

    #[test]
    fn execute_queryall_tags_documents() {
        let corpus = Corpus::new();
        execute_command(
            &corpus,
            &parse_command("LOADTERMS d1 r(a(b))").unwrap(),
        )
        .unwrap();
        execute_command(
            &corpus,
            &parse_command("LOADTERMS d2 r(a(b),a(b))").unwrap(),
        )
        .unwrap();
        let lines = execute_command(
            &corpus,
            &parse_command("QUERYALL descendant::b[. is $x] -> x").unwrap(),
        )
        .unwrap();
        assert_eq!(lines[0], "doc=d1 tuples=1");
        assert_eq!(lines[1], "b#2");
        assert_eq!(lines[2], "doc=d2 tuples=2");
        assert_eq!(lines.len(), 5);
        // Arity-0 fan-out renders one satisfiable= line per document, never
        // blank tuple lines.
        let lines = execute_command(
            &corpus,
            &parse_command("QUERYALL descendant::b").unwrap(),
        )
        .unwrap();
        assert_eq!(lines, vec!["doc=d1 satisfiable=true", "doc=d2 satisfiable=true"]);
        let lines = execute_command(
            &corpus,
            &parse_command("QUERYALL descendant::zzz").unwrap(),
        )
        .unwrap();
        assert_eq!(lines, vec!["doc=d1 satisfiable=false", "doc=d2 satisfiable=false"]);
    }

    /// An overlong request line answers `ERR line too long` and the same
    /// connection keeps serving — the daemon neither buffers the flood nor
    /// drops the client.
    #[test]
    fn overlong_lines_err_without_killing_the_connection() {
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let corpus = Arc::new(Corpus::new());
        let server =
            std::thread::spawn(move || serve_with_limit(listener, corpus, 64));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // 1. A flood well past the cap, in one "line".
        writeln!(writer, "LOAD big <bib>{}</bib>", "x".repeat(1024)).unwrap();
        writer.flush().unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(
            status.starts_with("ERR line too long"),
            "expected a line-length error, got: {status}"
        );

        // 2. The connection is still in sync: a normal request succeeds.
        writeln!(writer, "LOADTERMS d a(b)").unwrap();
        writer.flush().unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert_eq!(status.trim(), "OK 1");
        let mut payload = String::new();
        reader.read_line(&mut payload).unwrap();
        assert_eq!(payload.trim(), "loaded d nodes=2 documents=1");

        writeln!(writer, "SHUTDOWN").unwrap();
        writer.flush().unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert_eq!(status.trim(), "OK 1");
        server.join().unwrap().unwrap();
    }

    /// Full TCP round trip: serve on an ephemeral port, drive the protocol
    /// through real sockets from a client thread, then SHUTDOWN.
    #[test]
    fn tcp_round_trip_and_shutdown() {
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let corpus = Arc::new(Corpus::with_config(CorpusConfig {
            memory_budget: Some(1 << 20),
            ..CorpusConfig::default()
        }));
        let server = std::thread::spawn(move || serve(listener, corpus));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut request = |line: &str| -> (String, Vec<String>) {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut status = String::new();
            reader.read_line(&mut status).unwrap();
            let status = status.trim().to_string();
            let n = status
                .strip_prefix("OK ")
                .map(|n| n.parse::<usize>().unwrap())
                .unwrap_or(0);
            let mut payload = Vec::with_capacity(n);
            for _ in 0..n {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                payload.push(line.trim_end().to_string());
            }
            (status, payload)
        };

        let (status, payload) =
            request("LOAD bib <bib><book><author/><title/></book></bib>");
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "loaded bib nodes=4 documents=1");

        let (status, payload) = request("QUERY bib descendant::author[. is $a] -> a");
        assert_eq!(status, "OK 2");
        assert_eq!(payload, vec!["vars=a tuples=1", "author#2"]);

        let (status, payload) = request("QUERYALL descendant::title[. is $t] -> t");
        assert_eq!(status, "OK 2");
        assert_eq!(payload[0], "doc=bib tuples=1");

        // MUTATE edits the live document; the next QUERY sees the edit.
        let (status, payload) = request("MUTATE bib INSERT 1 2 author");
        assert_eq!(status, "OK 1");
        assert!(
            payload[0].starts_with("mutated bib kind=insert nodes=5 epoch=1"),
            "{payload:?}"
        );
        let (status, payload) = request("QUERY bib descendant::author[. is $a] -> a");
        assert_eq!(status, "OK 3");
        assert_eq!(payload[0], "vars=a tuples=2");
        let (status, payload) = request("MUTATE bib DELETE 99");
        assert!(status.starts_with("ERR"), "{status}");
        assert!(payload.is_empty());

        let (status, _) = request("STATS");
        assert_eq!(status, "OK 14");

        let (status, _) = request("BOGUS");
        assert!(status.starts_with("ERR unknown command"), "{status}");

        let (status, payload) = request("EVICT bib");
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "evicted=true");

        // A second client works concurrently and can QUIT independently.
        {
            let stream2 = TcpStream::connect(addr).unwrap();
            let mut reader2 = BufReader::new(stream2.try_clone().unwrap());
            let mut writer2 = BufWriter::new(stream2);
            writeln!(writer2, "QUERY bib descendant::author[. is $a] -> a").unwrap();
            writer2.flush().unwrap();
            let mut status2 = String::new();
            reader2.read_line(&mut status2).unwrap();
            assert_eq!(status2.trim(), "OK 3", "evicted sessions must rebuild");
            writeln!(writer2, "QUIT").unwrap();
            writer2.flush().unwrap();
        }

        let (status, payload) = request("SHUTDOWN");
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "bye");
        server.join().unwrap().unwrap();
    }

    /// Make a connected (client, server) TCP stream pair.
    fn stream_pair() -> (TcpStream, TcpStream) {
        let helper = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = helper.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = helper.accept().unwrap();
        (client, server)
    }

    /// An accept source that yields scripted results first, then delegates
    /// to a real listener.
    struct FlakyAcceptor {
        inner: TcpListener,
        script: Mutex<VecDeque<std::io::Error>>,
    }

    impl Acceptor for FlakyAcceptor {
        fn accept_client(&self) -> std::io::Result<TcpStream> {
            if let Some(e) = self.script.lock().unwrap().pop_front() {
                return Err(e);
            }
            self.inner.accept().map(|(stream, _)| stream)
        }

        fn wake_addr(&self) -> std::io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    #[test]
    fn accept_error_classification() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            classify_accept_error(&Error::from(ErrorKind::ConnectionAborted)),
            AcceptDisposition::Retry
        );
        assert_eq!(
            classify_accept_error(&Error::from(ErrorKind::Interrupted)),
            AcceptDisposition::Retry
        );
        assert_eq!(
            classify_accept_error(&Error::from_raw_os_error(24)), // EMFILE
            AcceptDisposition::RetryAfterSleep
        );
        assert_eq!(
            classify_accept_error(&Error::from_raw_os_error(23)), // ENFILE
            AcceptDisposition::RetryAfterSleep
        );
        assert_eq!(
            classify_accept_error(&Error::other("boom")),
            AcceptDisposition::Fatal
        );
    }

    /// Regression: transient accept() errors (ECONNABORTED, EINTR, EMFILE)
    /// used to propagate out of the accept loop and kill the daemon.  With
    /// a script of transient failures ahead of a real client, the daemon
    /// must retry past all of them and serve the client.
    #[test]
    fn transient_accept_errors_do_not_kill_the_daemon() {
        use std::io::{Error, ErrorKind};
        let inner = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = inner.local_addr().unwrap();
        let acceptor = FlakyAcceptor {
            inner,
            script: Mutex::new(VecDeque::from([
                Error::from(ErrorKind::ConnectionAborted),
                Error::from(ErrorKind::Interrupted),
                Error::from_raw_os_error(24), // EMFILE
            ])),
        };
        let corpus = Arc::new(Corpus::new());
        let server = std::thread::spawn(move || serve_threads(acceptor, corpus, 1024, None));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writeln!(writer, "LOADTERMS d a(b)").unwrap();
        writer.flush().unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert_eq!(status.trim(), "OK 1", "daemon must survive transient accept errors");
        writeln!(writer, "SHUTDOWN").unwrap();
        writer.flush().unwrap();
        server.join().unwrap().unwrap();
    }

    /// A genuinely fatal accept() error still stops the daemon.
    #[test]
    fn fatal_accept_errors_stop_the_daemon() {
        use std::io::Error;
        let acceptor = FlakyAcceptor {
            inner: TcpListener::bind("127.0.0.1:0").unwrap(),
            script: Mutex::new(VecDeque::from([Error::other("listener exploded")])),
        };
        let corpus = Arc::new(Corpus::new());
        let err = serve_threads(acceptor, corpus, 1024, None).unwrap_err();
        assert!(err.to_string().contains("listener exploded"));
    }

    /// An accept source reproducing the shutdown race deterministically:
    /// accept #1 returns a client that immediately sends SHUTDOWN; accept
    /// #2 blocks until the shutdown wake arrives — so the flag is already
    /// set — then returns a real "late" client.
    struct ShutdownRaceAcceptor {
        first: Mutex<Option<TcpStream>>,
        late: Mutex<Option<TcpStream>>,
        wake: TcpListener,
    }

    impl Acceptor for ShutdownRaceAcceptor {
        fn accept_client(&self) -> std::io::Result<TcpStream> {
            if let Some(stream) = self.first.lock().unwrap().take() {
                return Ok(stream);
            }
            // Block until the shutdown handler's wake connection arrives;
            // by then the shutdown flag is guaranteed set.
            let _ = self.wake.accept()?;
            Ok(self
                .late
                .lock()
                .unwrap()
                .take()
                .expect("exactly two real accepts"))
        }

        fn wake_addr(&self) -> std::io::Result<SocketAddr> {
            self.wake.local_addr()
        }
    }

    /// Regression: a client accepted just after the SHUTDOWN flag was set
    /// used to be dropped silently.  It must be answered with
    /// `ERR shutting down` and closed cleanly.
    #[test]
    fn client_racing_shutdown_gets_an_answer() {
        let (shutter_client, shutter_server) = stream_pair();
        let (late_client, late_server) = stream_pair();
        {
            let mut w = BufWriter::new(shutter_client.try_clone().unwrap());
            writeln!(w, "SHUTDOWN").unwrap();
            w.flush().unwrap();
        }
        let acceptor = ShutdownRaceAcceptor {
            first: Mutex::new(Some(shutter_server)),
            late: Mutex::new(Some(late_server)),
            wake: TcpListener::bind("127.0.0.1:0").unwrap(),
        };
        let corpus = Arc::new(Corpus::new());
        let server = std::thread::spawn(move || serve_threads(acceptor, corpus, 1024, None));

        // The shutting-down client gets its goodbye…
        let mut reader = BufReader::new(shutter_client);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK 1");

        // …and the late client is answered, not silently dropped.
        let mut late_reader = BufReader::new(late_client);
        let mut line = String::new();
        late_reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "ERR shutting down");
        // Clean close: EOF follows.
        let mut rest = String::new();
        assert_eq!(late_reader.read_line(&mut rest).unwrap(), 0);

        server.join().unwrap().unwrap();
    }

    /// A connect-and-stall client must be answered `ERR idle timeout` and
    /// dropped — before this, a silent connection held its handler thread
    /// forever.  An active client on the same daemon keeps working across
    /// the stalled one's demise.
    #[test]
    fn threads_mode_drops_idle_connections() {
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let corpus = Arc::new(Corpus::new());
        let options = ServeOptions {
            io: IoMode::Threads,
            idle_timeout: Some(Duration::from_millis(100)),
            ..ServeOptions::default()
        };
        let server =
            std::thread::spawn(move || serve_with_options(listener, corpus, &options));

        // The staller: connects, sends nothing.
        let staller = TcpStream::connect(addr).unwrap();
        staller
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        // An active client stays healthy meanwhile.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writeln!(writer, "LOADTERMS d a(b)").unwrap();
        writer.flush().unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert_eq!(status.trim(), "OK 1");

        // The staller is told why and then sees EOF.
        let mut staller_reader = BufReader::new(staller);
        let mut line = String::new();
        staller_reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR idle timeout"), "got: {line:?}");
        let mut rest = String::new();
        assert_eq!(staller_reader.read_line(&mut rest).unwrap(), 0, "EOF after the error");

        // The active client is unaffected (it was idle briefly too, but a
        // fresh request after the staller died proves the daemon serves on).
        let stream2 = TcpStream::connect(addr).unwrap();
        let mut reader2 = BufReader::new(stream2.try_clone().unwrap());
        let mut writer2 = BufWriter::new(stream2);
        writeln!(writer2, "SHUTDOWN").unwrap();
        writer2.flush().unwrap();
        let mut status2 = String::new();
        reader2.read_line(&mut status2).unwrap();
        assert_eq!(status2.trim(), "OK 1");
        server.join().unwrap().unwrap();
    }
}
