//! The `pplxd` wire protocol and serving loop.
//!
//! `pplxd` speaks a line-based protocol over TCP.  Every request is one
//! line; every response is a status line followed by zero or more payload
//! lines:
//!
//! ```text
//! -> LOAD bib <bib><book><author/><title/></book></bib>
//! <- OK 1
//! <- loaded bib nodes=4 documents=1
//! -> QUERY bib descendant::author[. is $a] -> a
//! <- OK 2
//! <- vars=a tuples=1
//! <- author#2
//! -> STATS
//! <- OK 9
//! <- documents=1
//! <- ...
//! -> QUIT
//! <- OK 1
//! <- bye
//! ```
//!
//! The status line is `OK <n>` (with exactly `n` payload lines following)
//! or `ERR <message>` (no payload).  Commands:
//!
//! | command                              | effect                                      |
//! |--------------------------------------|---------------------------------------------|
//! | `LOAD <name> <xml>`                  | ingest an XML document (one line)           |
//! | `LOADTERMS <name> <terms>`           | ingest a term-syntax document               |
//! | `QUERY <name> <expr> [-> v1,v2]`     | answer over one document                    |
//! | `QUERYALL <expr> [-> v1,v2]`         | fan out over every document                 |
//! | `STATS`                              | pool / plan-cache counters                  |
//! | `EVICT [<name>]`                     | drop one session, or all of them            |
//! | `QUIT`                               | close this connection                       |
//! | `SHUTDOWN`                           | stop the whole daemon                       |
//!
//! [`serve`] runs the accept loop with one handler thread per client over
//! one shared [`Corpus`]; the `pplxd` binary wraps it, and `pplx --connect`
//! is the matching client.

use crate::{Corpus, CorpusError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xpath_tree::Tree;

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `LOAD <name> <xml>` — ingest an XML document.
    Load {
        /// Document name.
        name: String,
        /// The document, as one line of XML.
        xml: String,
    },
    /// `LOADTERMS <name> <terms>` — ingest a term-syntax document.
    LoadTerms {
        /// Document name.
        name: String,
        /// The document in compact term syntax.
        terms: String,
    },
    /// `QUERY <name> <expr> [-> vars]` — answer over one document.
    Query {
        /// Target document.
        name: String,
        /// Core XPath 2.0 source.
        query: String,
        /// Output variables.
        vars: Vec<String>,
    },
    /// `QUERYALL <expr> [-> vars]` — answer over every document.
    QueryAll {
        /// Core XPath 2.0 source.
        query: String,
        /// Output variables.
        vars: Vec<String>,
    },
    /// `STATS` — report the corpus counters.
    Stats,
    /// `EVICT [<name>]` — drop one session (or all sessions).
    Evict(Option<String>),
    /// `QUIT` — close this connection.
    Quit,
    /// `SHUTDOWN` — stop the daemon.
    Shutdown,
}

/// Default cap on one request line, in bytes (16 MiB).
///
/// `LOAD` carries a whole XML document on one line, so the cap is generous —
/// but without *some* bound a malicious (or just confused) client can feed
/// an endless newline-free stream and grow the handler's line buffer until
/// the daemon is OOM-killed.  Configurable per server via
/// [`serve_with_limit`] (`pplxd --max-line`).
pub const DEFAULT_MAX_LINE: usize = 16 << 20;

/// Outcome of one bounded request-line read.
enum LineRead {
    /// A complete line (without the trailing newline).
    Line(String),
    /// The line exceeded the cap; the remainder has been drained, the
    /// connection is still in sync.
    TooLong,
    /// End of stream.
    Eof,
}

/// Discard input up to and including the next newline.  Returns `false` at
/// end of stream.
fn drain_line<R: BufRead>(reader: &mut R) -> std::io::Result<bool> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(false);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(true);
            }
            None => {
                let len = available.len();
                reader.consume(len);
            }
        }
    }
}

/// Read one request line of at most `max_len` bytes (newline excluded).
///
/// Unlike `BufRead::lines`, memory use is bounded by `max_len` no matter
/// what the peer sends: an overlong line is consumed (not buffered) up to
/// its newline and reported as [`LineRead::TooLong`], leaving the stream
/// positioned at the next request so the connection stays usable.
fn read_request_line<R: BufRead>(reader: &mut R, max_len: usize) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    // `take` bounds what read_until may buffer; one extra byte distinguishes
    // "exactly max_len" from "longer than max_len".
    let n = reader
        .by_ref()
        .take(max_len as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if n > max_len {
        // Overlong: skip to the end of the offending line.
        if !drain_line(reader)? {
            return Ok(LineRead::Eof);
        }
        return Ok(LineRead::TooLong);
    }
    // Non-UTF-8 bytes only ever reach parse_command, which will reject the
    // verb; mangling them lossily beats killing the connection.
    Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()))
}

/// Split an optional ` -> v1,v2` variable suffix off a query expression.
fn split_vars(expr: &str) -> (String, Vec<String>) {
    match expr.rsplit_once("->") {
        Some((query, vars)) => (
            query.trim().to_string(),
            vars.split(',')
                .map(|s| s.trim().trim_start_matches('$').to_string())
                .filter(|s| !s.is_empty())
                .collect(),
        ),
        None => (expr.trim().to_string(), Vec::new()),
    }
}

/// Parse one request line into a [`Command`].
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (line, ""),
    };
    let two_args = |rest: &str, usage: &str| -> Result<(String, String), String> {
        rest.split_once(char::is_whitespace)
            .map(|(a, b)| (a.to_string(), b.trim().to_string()))
            .filter(|(a, b)| !a.is_empty() && !b.is_empty())
            .ok_or_else(|| format!("usage: {usage}"))
    };
    match verb.to_ascii_uppercase().as_str() {
        "LOAD" => {
            let (name, xml) = two_args(rest, "LOAD <name> <xml>")?;
            Ok(Command::Load { name, xml })
        }
        "LOADTERMS" => {
            let (name, terms) = two_args(rest, "LOADTERMS <name> <terms>")?;
            Ok(Command::LoadTerms { name, terms })
        }
        "QUERY" => {
            let (name, expr) = two_args(rest, "QUERY <name> <expr> [-> vars]")?;
            let (query, vars) = split_vars(&expr);
            Ok(Command::Query { name, query, vars })
        }
        "QUERYALL" => {
            if rest.is_empty() {
                return Err("usage: QUERYALL <expr> [-> vars]".into());
            }
            let (query, vars) = split_vars(rest);
            Ok(Command::QueryAll { query, vars })
        }
        "STATS" => Ok(Command::Stats),
        "EVICT" => Ok(Command::Evict(if rest.is_empty() {
            None
        } else {
            Some(rest.to_string())
        })),
        "QUIT" => Ok(Command::Quit),
        "SHUTDOWN" => Ok(Command::Shutdown),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Render one answer tuple as `label#preorder,label#preorder,…`.
fn render_tuple(tree: &Tree, tuple: &[xpath_tree::NodeId]) -> String {
    tuple
        .iter()
        .map(|&n| format!("{}#{}", tree.label_str(n), tree.preorder(n)))
        .collect::<Vec<_>>()
        .join(",")
}

fn corpus_err(e: &CorpusError) -> String {
    e.to_string().replace('\n', " | ")
}

/// Payload lines of one `QUERY` answer: a header plus one line per tuple
/// (or a `satisfiable=` header for arity-0 queries).
fn answer_lines(tree: &Tree, vars: &[String], answers: &ppl_xpath::AnswerSet) -> Vec<String> {
    let mut lines = Vec::with_capacity(answers.len() + 1);
    if vars.is_empty() {
        lines.push(format!("satisfiable={}", !answers.is_empty()));
        return lines;
    }
    lines.push(format!("vars={} tuples={}", vars.join(","), answers.len()));
    for tuple in answers.tuples() {
        lines.push(render_tuple(tree, tuple));
    }
    lines
}

/// Execute one command against the corpus.  Returns the payload lines, or
/// an error message for an `ERR` response.  `Quit`/`Shutdown` are handled
/// by the connection loop, not here.
pub fn execute_command(corpus: &Corpus, command: &Command) -> Result<Vec<String>, String> {
    match command {
        Command::Load { name, xml } => {
            let nodes = corpus.insert_xml(name, xml).map_err(|e| corpus_err(&e))?;
            Ok(vec![format!(
                "loaded {name} nodes={nodes} documents={}",
                corpus.len()
            )])
        }
        Command::LoadTerms { name, terms } => {
            let nodes = corpus.insert_terms(name, terms).map_err(|e| corpus_err(&e))?;
            Ok(vec![format!(
                "loaded {name} nodes={nodes} documents={}",
                corpus.len()
            )])
        }
        Command::Query { name, query, vars } => {
            let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
            // answer_tagged carries the tree snapshot the node ids index —
            // looking the document up again here would race with a
            // concurrent LOAD replacing it.
            let doc = corpus
                .answer_tagged(name, query, &var_refs)
                .map_err(|e| corpus_err(&e))?;
            Ok(answer_lines(&doc.tree, vars, &doc.answers))
        }
        Command::QueryAll { query, vars } => {
            let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
            let per_doc = corpus
                .answer_all(query, &var_refs)
                .map_err(|e| corpus_err(&e))?;
            let mut lines = Vec::new();
            for doc in &per_doc {
                if vars.is_empty() {
                    lines.push(format!(
                        "doc={} satisfiable={}",
                        doc.name,
                        !doc.answers.is_empty()
                    ));
                    continue;
                }
                lines.push(format!("doc={} tuples={}", doc.name, doc.answers.len()));
                for tuple in doc.answers.tuples() {
                    lines.push(render_tuple(&doc.tree, tuple));
                }
            }
            Ok(lines)
        }
        Command::Stats => {
            let stats = corpus.stats();
            Ok(vec![
                format!("documents={}", stats.documents),
                format!("live_sessions={}", stats.live_sessions),
                format!("pool_bytes={}", stats.pool_bytes),
                format!(
                    "memory_budget={}",
                    corpus
                        .config()
                        .memory_budget
                        .map_or("unbounded".to_string(), |b| b.to_string())
                ),
                format!("admissions={}", stats.admissions),
                format!("rebuilds={}", stats.rebuilds),
                format!("cache_evictions={}", stats.cache_evictions),
                format!("session_evictions={}", stats.session_evictions),
                format!("plan_hits={}", stats.plan_hits),
                format!("plan_misses={}", stats.plan_misses),
            ])
        }
        Command::Evict(Some(name)) => Ok(vec![format!(
            "evicted={}",
            corpus.evict(name)
        )]),
        Command::Evict(None) => Ok(vec![format!("evicted={}", corpus.evict_all())]),
        Command::Quit | Command::Shutdown => Ok(vec!["bye".to_string()]),
    }
}

fn write_response<W: Write>(writer: &mut W, result: Result<Vec<String>, String>) -> std::io::Result<()> {
    match result {
        Ok(lines) => {
            writeln!(writer, "OK {}", lines.len())?;
            for line in lines {
                writeln!(writer, "{line}")?;
            }
        }
        Err(message) => writeln!(writer, "ERR {}", message.replace('\n', " | "))?,
    }
    writer.flush()
}

/// Serve one client connection until `QUIT`, `SHUTDOWN`, or disconnect.
/// Returns `true` when the client requested a daemon shutdown.
fn handle_client(stream: TcpStream, corpus: &Corpus, max_line: usize) -> bool {
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_request_line(&mut reader, max_line) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::TooLong) => {
                let message = format!("line too long (max {max_line} bytes)");
                if write_response(&mut writer, Err(message)).is_err() {
                    break;
                }
                continue; // the offending line was drained; keep serving
            }
            Ok(LineRead::Eof) | Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let command = match parse_command(&line) {
            Ok(command) => command,
            Err(message) => {
                if write_response(&mut writer, Err(message)).is_err() {
                    break;
                }
                continue;
            }
        };
        let result = execute_command(corpus, &command);
        if write_response(&mut writer, result).is_err() {
            break;
        }
        match command {
            Command::Quit => break,
            Command::Shutdown => return true,
            _ => {}
        }
    }
    false
}

/// Run the daemon accept loop: one handler thread per client over the
/// shared corpus, until a client sends `SHUTDOWN`.  Returns once the accept
/// loop has stopped and every handler thread has finished.  Request lines
/// are capped at [`DEFAULT_MAX_LINE`] bytes; use [`serve_with_limit`] for a
/// different cap.
pub fn serve(listener: TcpListener, corpus: Arc<Corpus>) -> std::io::Result<()> {
    serve_with_limit(listener, corpus, DEFAULT_MAX_LINE)
}

/// [`serve`] with an explicit request-line cap in bytes (`pplxd
/// --max-line`).  Overlong lines are answered with `ERR line too long …`
/// and the connection keeps serving subsequent requests.
pub fn serve_with_limit(
    listener: TcpListener,
    corpus: Arc<Corpus>,
    max_line: usize,
) -> std::io::Result<()> {
    let mut addr = listener.local_addr()?;
    // The shutdown handler wakes the accept loop by connecting to the
    // listener; a wildcard bind address (0.0.0.0 / ::) is not connectable
    // on every platform, so target the loopback equivalent instead.
    if addr.ip().is_unspecified() {
        let loopback: std::net::IpAddr = if addr.is_ipv4() {
            std::net::Ipv4Addr::LOCALHOST.into()
        } else {
            std::net::Ipv6Addr::LOCALHOST.into()
        };
        addr.set_ip(loopback);
    }
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| -> std::io::Result<()> {
        loop {
            let (stream, _) = listener.accept()?;
            if shutdown.load(Ordering::SeqCst) {
                return Ok(()); // woken by the shutdown handler below
            }
            let corpus = Arc::clone(&corpus);
            let shutdown = &shutdown;
            scope.spawn(move || {
                if handle_client(stream, &corpus, max_line.max(1)) {
                    shutdown.store(true, Ordering::SeqCst);
                    // Wake the accept loop so it observes the flag.
                    let _ = TcpStream::connect(addr);
                }
            });
        }
    })
}

/// Bind a listener on `addr` (port 0 picks an ephemeral port) and return it
/// together with the resolved local address.
pub fn bind(addr: &str) -> std::io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    Ok((listener, local))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusConfig;

    #[test]
    fn bounded_line_reads_cap_memory_and_stay_in_sync() {
        use std::io::Cursor;
        let mut r = Cursor::new(b"short\r\nexactly8\nwaaaaaay too long line\nnext\ntail".to_vec());
        let next = |r: &mut Cursor<Vec<u8>>| read_request_line(r, 8).unwrap();
        assert!(matches!(next(&mut r), LineRead::Line(l) if l == "short"));
        assert!(matches!(next(&mut r), LineRead::Line(l) if l == "exactly8"));
        // The overlong line is consumed, not buffered, and the stream is
        // positioned at the next request.
        assert!(matches!(next(&mut r), LineRead::TooLong));
        assert!(matches!(next(&mut r), LineRead::Line(l) if l == "next"));
        // Final line without a newline, within the cap.
        assert!(matches!(next(&mut r), LineRead::Line(l) if l == "tail"));
        assert!(matches!(next(&mut r), LineRead::Eof));
        // An overlong line that hits EOF before its newline is EOF, not a
        // request.
        let mut r = Cursor::new(b"0123456789 endless".to_vec());
        assert!(matches!(read_request_line(&mut r, 8).unwrap(), LineRead::Eof));
    }

    #[test]
    fn command_parsing_round_trip() {
        assert_eq!(
            parse_command("LOAD bib <bib><book/></bib>").unwrap(),
            Command::Load {
                name: "bib".into(),
                xml: "<bib><book/></bib>".into()
            }
        );
        assert_eq!(
            parse_command("LOADTERMS d a(b,c)").unwrap(),
            Command::LoadTerms {
                name: "d".into(),
                terms: "a(b,c)".into()
            }
        );
        assert_eq!(
            parse_command("QUERY bib descendant::author[. is $a] -> a").unwrap(),
            Command::Query {
                name: "bib".into(),
                query: "descendant::author[. is $a]".into(),
                vars: vec!["a".into()]
            }
        );
        assert_eq!(
            parse_command("QUERYALL descendant::book -> $x, y").unwrap(),
            Command::QueryAll {
                query: "descendant::book".into(),
                vars: vec!["x".into(), "y".into()]
            }
        );
        assert_eq!(
            parse_command("QUERY bib child::book").unwrap(),
            Command::Query {
                name: "bib".into(),
                query: "child::book".into(),
                vars: vec![]
            }
        );
        assert_eq!(parse_command("stats").unwrap(), Command::Stats);
        assert_eq!(parse_command("EVICT bib").unwrap(), Command::Evict(Some("bib".into())));
        assert_eq!(parse_command("EVICT").unwrap(), Command::Evict(None));
        assert_eq!(parse_command("QUIT").unwrap(), Command::Quit);
        assert_eq!(parse_command("SHUTDOWN").unwrap(), Command::Shutdown);
        assert!(parse_command("LOAD onlyname").unwrap_err().contains("usage"));
        assert!(parse_command("QUERYALL").unwrap_err().contains("usage"));
        assert!(parse_command("FROBNICATE x").unwrap_err().contains("unknown command"));
    }

    #[test]
    fn execute_load_query_stats_evict() {
        let corpus = Corpus::new();
        let load = parse_command("LOAD bib <bib><book><author/><title/></book></bib>").unwrap();
        let lines = execute_command(&corpus, &load).unwrap();
        assert_eq!(lines, vec!["loaded bib nodes=4 documents=1"]);

        let query =
            parse_command("QUERY bib descendant::author[. is $a] -> a").unwrap();
        let lines = execute_command(&corpus, &query).unwrap();
        assert_eq!(lines[0], "vars=a tuples=1");
        assert_eq!(lines[1], "author#2");

        let boolean = parse_command("QUERY bib descendant::author").unwrap();
        assert_eq!(
            execute_command(&corpus, &boolean).unwrap(),
            vec!["satisfiable=true"]
        );

        let stats = execute_command(&corpus, &Command::Stats).unwrap();
        assert!(stats.iter().any(|l| l == "documents=1"), "{stats:?}");
        assert!(stats.iter().any(|l| l.starts_with("pool_bytes=")), "{stats:?}");
        assert!(stats.iter().any(|l| l == "memory_budget=unbounded"), "{stats:?}");

        let evict = execute_command(&corpus, &Command::Evict(Some("bib".into()))).unwrap();
        assert_eq!(evict, vec!["evicted=true"]);
        let evict_all = execute_command(&corpus, &Command::Evict(None)).unwrap();
        assert_eq!(evict_all, vec!["evicted=0"]);

        // Errors: unknown doc, malformed query, malformed XML.
        let err = execute_command(
            &corpus,
            &parse_command("QUERY nope child::a").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown document"), "{err}");
        let err = execute_command(
            &corpus,
            &parse_command("QUERY bib child::(").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("compile"), "{err}");
        let err = execute_command(
            &corpus,
            &parse_command("LOAD broken <a><b></a>").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("broken"), "{err}");
    }

    #[test]
    fn execute_queryall_tags_documents() {
        let corpus = Corpus::new();
        execute_command(
            &corpus,
            &parse_command("LOADTERMS d1 r(a(b))").unwrap(),
        )
        .unwrap();
        execute_command(
            &corpus,
            &parse_command("LOADTERMS d2 r(a(b),a(b))").unwrap(),
        )
        .unwrap();
        let lines = execute_command(
            &corpus,
            &parse_command("QUERYALL descendant::b[. is $x] -> x").unwrap(),
        )
        .unwrap();
        assert_eq!(lines[0], "doc=d1 tuples=1");
        assert_eq!(lines[1], "b#2");
        assert_eq!(lines[2], "doc=d2 tuples=2");
        assert_eq!(lines.len(), 5);
        // Arity-0 fan-out renders one satisfiable= line per document, never
        // blank tuple lines.
        let lines = execute_command(
            &corpus,
            &parse_command("QUERYALL descendant::b").unwrap(),
        )
        .unwrap();
        assert_eq!(lines, vec!["doc=d1 satisfiable=true", "doc=d2 satisfiable=true"]);
        let lines = execute_command(
            &corpus,
            &parse_command("QUERYALL descendant::zzz").unwrap(),
        )
        .unwrap();
        assert_eq!(lines, vec!["doc=d1 satisfiable=false", "doc=d2 satisfiable=false"]);
    }

    /// An overlong request line answers `ERR line too long` and the same
    /// connection keeps serving — the daemon neither buffers the flood nor
    /// drops the client.
    #[test]
    fn overlong_lines_err_without_killing_the_connection() {
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let corpus = Arc::new(Corpus::new());
        let server =
            std::thread::spawn(move || serve_with_limit(listener, corpus, 64));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // 1. A flood well past the cap, in one "line".
        writeln!(writer, "LOAD big <bib>{}</bib>", "x".repeat(1024)).unwrap();
        writer.flush().unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(
            status.starts_with("ERR line too long"),
            "expected a line-length error, got: {status}"
        );

        // 2. The connection is still in sync: a normal request succeeds.
        writeln!(writer, "LOADTERMS d a(b)").unwrap();
        writer.flush().unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert_eq!(status.trim(), "OK 1");
        let mut payload = String::new();
        reader.read_line(&mut payload).unwrap();
        assert_eq!(payload.trim(), "loaded d nodes=2 documents=1");

        writeln!(writer, "SHUTDOWN").unwrap();
        writer.flush().unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert_eq!(status.trim(), "OK 1");
        server.join().unwrap().unwrap();
    }

    /// Full TCP round trip: serve on an ephemeral port, drive the protocol
    /// through real sockets from a client thread, then SHUTDOWN.
    #[test]
    fn tcp_round_trip_and_shutdown() {
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let corpus = Arc::new(Corpus::with_config(CorpusConfig {
            memory_budget: Some(1 << 20),
            ..CorpusConfig::default()
        }));
        let server = std::thread::spawn(move || serve(listener, corpus));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut request = |line: &str| -> (String, Vec<String>) {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut status = String::new();
            reader.read_line(&mut status).unwrap();
            let status = status.trim().to_string();
            let n = status
                .strip_prefix("OK ")
                .map(|n| n.parse::<usize>().unwrap())
                .unwrap_or(0);
            let mut payload = Vec::with_capacity(n);
            for _ in 0..n {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                payload.push(line.trim_end().to_string());
            }
            (status, payload)
        };

        let (status, payload) =
            request("LOAD bib <bib><book><author/><title/></book></bib>");
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "loaded bib nodes=4 documents=1");

        let (status, payload) = request("QUERY bib descendant::author[. is $a] -> a");
        assert_eq!(status, "OK 2");
        assert_eq!(payload, vec!["vars=a tuples=1", "author#2"]);

        let (status, payload) = request("QUERYALL descendant::title[. is $t] -> t");
        assert_eq!(status, "OK 2");
        assert_eq!(payload[0], "doc=bib tuples=1");

        let (status, _) = request("STATS");
        assert_eq!(status, "OK 10");

        let (status, _) = request("BOGUS");
        assert!(status.starts_with("ERR unknown command"), "{status}");

        let (status, payload) = request("EVICT bib");
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "evicted=true");

        // A second client works concurrently and can QUIT independently.
        {
            let stream2 = TcpStream::connect(addr).unwrap();
            let mut reader2 = BufReader::new(stream2.try_clone().unwrap());
            let mut writer2 = BufWriter::new(stream2);
            writeln!(writer2, "QUERY bib descendant::author[. is $a] -> a").unwrap();
            writer2.flush().unwrap();
            let mut status2 = String::new();
            reader2.read_line(&mut status2).unwrap();
            assert_eq!(status2.trim(), "OK 2", "evicted sessions must rebuild");
            writeln!(writer2, "QUIT").unwrap();
            writer2.flush().unwrap();
        }

        let (status, payload) = request("SHUTDOWN");
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "bye");
        server.join().unwrap().unwrap();
    }
}
