//! The sharding router: one `pplxd` front door over many backend daemons.
//!
//! `pplxd --route host:port,host:port,…` serves the same line protocol as a
//! single daemon, but owns no documents itself: every request is routed to
//! backend shards over [`xpath_wire::ShardClient`] connections, and the
//! router's job is to keep answering — with data when it can, with a
//! well-formed `ERR` or a partial result when it cannot — no matter which
//! shards are slow, dead, or lying.
//!
//! # Placement
//!
//! Documents are placed by consistent hashing (`Ring`): each backend owns
//! `VIRTUAL_NODES` points on a hash circle, and a document's replica set
//! is the first [`RouterConfig::replication`] *distinct* shards clockwise
//! from the hash of its name.  `LOAD`/`LOADTERMS` write to every replica
//! (success = at least one acknowledged, recorded in the catalog);
//! `QUERY`/`EVICT <name>` fan across the replicas, rotating the starting
//! shard for load spread and failing over on transport errors.  A daemon
//! `ERR` (unknown document, compile error) is *not* failure — it is the
//! answer, and it is returned as-is.
//!
//! # Degradation
//!
//! Every shard interaction runs under [`RouterConfig::shard_timeout`].
//! Consecutive transport failures past [`RouterConfig::fail_threshold`]
//! mark a shard DOWN; a DOWN shard is skipped (fail-fast) until
//! [`RouterConfig::probe_interval`] elapses, at which point exactly one
//! request is let through as a probe — success flips the shard back UP.
//! Scatter commands degrade per shard: `STATS` reports `status=down` lines
//! next to healthy ones, `QUERYALL` merges the live shards' blocks
//! (replicas deduplicated) and reports catalogued documents whose every
//! replica is unreachable as `doc=<name> error=…` lines — a partial answer,
//! never a hang and never a silent gap.
//!
//! # Failure injection
//!
//! A [`FaultHook`] installed with [`Router::set_fault_hook`] intercepts
//! every shard request and may kill the connection mid-query, delay past
//! the deadline, or poison the response with garbage bytes
//! ([`FaultAction`]).  The fuzz harness (`tests/router_fuzz.rs`) drives
//! random fault plans and asserts the router always answers within its
//! deadlines — the injection path is the *production* decode path, not a
//! mock.

use crate::protocol::{parse_command, render_response, Command, DEFAULT_MAX_LINE};
use crate::server::{classify_accept_error, AcceptDisposition, ACCEPT_BACKOFF};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use xpath_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use xpath_sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use xpath_wire::{read_request_line, ClientConfig, LineRead, Response, ShardClient, WireError};

/// Points each backend owns on the hash circle.  Enough that document load
/// spreads within a few percent of uniform across a handful of shards;
/// small enough that ring construction and lookup stay trivial.
pub const VIRTUAL_NODES: usize = 40;

/// Routing and degradation knobs of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend daemon addresses (`host:port`), in shard-index order.
    pub backends: Vec<String>,
    /// Copies of each document, clamped to `1..=backends.len()`.
    pub replication: usize,
    /// Deadline for one complete backend response.
    pub shard_timeout: Duration,
    /// Deadline for one backend connect attempt.
    pub connect_timeout: Duration,
    /// Consecutive transport failures before a shard is marked DOWN.
    pub fail_threshold: u32,
    /// How long a DOWN shard is skipped before one request is let through
    /// as a probe.
    pub probe_interval: Duration,
    /// Cap on one client request line, in bytes.
    pub max_line: usize,
    /// Drop client connections silent for this long (`None` disables).
    pub idle_timeout: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            backends: Vec::new(),
            replication: 2,
            shard_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(1),
            fail_threshold: 3,
            probe_interval: Duration::from_millis(500),
            max_line: DEFAULT_MAX_LINE,
            idle_timeout: Some(crate::server::DEFAULT_IDLE_TIMEOUT),
        }
    }
}

/// What a [`FaultHook`] does to one shard request.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Let the request through untouched.
    None,
    /// Drop the shard connection as if the backend died mid-query.
    KillConn,
    /// Stall the request this long before sending; at or past the shard
    /// timeout this becomes a timeout failure without touching the wire.
    Delay(Duration),
    /// Replace the response status line with these bytes, exercising the
    /// decode path with truncated/garbage input.
    Garbage(String),
}

/// Failure-injection hook: called with the shard index and parsed command
/// before every shard request.  Production routers have none installed.
pub type FaultHook = Arc<dyn Fn(usize, &Command) -> FaultAction + Send + Sync>;

/// Health of one shard as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Requests are routed normally.
    Up,
    /// Skipped except for periodic probes.
    Down,
}

#[derive(Debug)]
struct ShardHealth {
    status: ShardStatus,
    consecutive_failures: u32,
    /// When DOWN: earliest moment the next probe request is let through.
    probe_at: Option<Instant>,
}

/// Hash a ring key: FNV-1a over the bytes, then a 64-bit finalizer.  Plain
/// FNV-1a barely diffuses its *upper* bits on short, similar keys
/// (`shard-0-vnode-17`…), and ring placement orders by the full `u64` — so
/// without the finalizer the vnode points cluster and one shard owns most
/// of the circle.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    // fmix64: the standard xor-shift/multiply avalanche finalizer.
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    hash
}

/// The consistent-hash circle: sorted (point, shard) pairs.
#[derive(Debug)]
struct Ring {
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    fn new(shards: usize) -> Ring {
        let mut points = Vec::with_capacity(shards * VIRTUAL_NODES);
        for shard in 0..shards {
            for v in 0..VIRTUAL_NODES {
                points.push((ring_hash(format!("shard-{shard}-vnode-{v}").as_bytes()), shard));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    /// The first `count` *distinct* shards clockwise from `name`'s point.
    fn replicas(&self, name: &str, count: usize) -> Vec<usize> {
        let count = count.clamp(1, self.shards.max(1));
        let hash = ring_hash(name.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let mut replicas = Vec::with_capacity(count);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !replicas.contains(&shard) {
                replicas.push(shard);
                if replicas.len() == count {
                    break;
                }
            }
        }
        replicas
    }
}

/// Shared router state: placement, health, and the fault hook.  Per-client
/// connection state (the actual [`ShardClient`]s) lives in [`RouterConn`].
pub struct Router {
    config: RouterConfig,
    ring: Ring,
    /// Where each document was actually placed (shard indices that acked
    /// its `LOAD`).  Documents never loaded through this router fall back
    /// to ring placement.
    catalog: Mutex<HashMap<String, Vec<usize>>>,
    health: Vec<Mutex<ShardHealth>>,
    /// Rotates the starting replica of read fan-outs for load spread.
    rotation: AtomicUsize,
    fault_hook: Mutex<Option<FaultHook>>,
    shutdown: AtomicBool,
}

impl Router {
    /// A router over `config.backends`.  Panics if no backends are given —
    /// a router with nothing behind it cannot answer anything.
    pub fn new(mut config: RouterConfig) -> Router {
        assert!(!config.backends.is_empty(), "router needs at least one backend");
        config.replication = config.replication.clamp(1, config.backends.len());
        let ring = Ring::new(config.backends.len());
        let health = config
            .backends
            .iter()
            .map(|_| {
                Mutex::new(ShardHealth {
                    status: ShardStatus::Up,
                    consecutive_failures: 0,
                    probe_at: None,
                })
            })
            .collect();
        Router {
            config,
            ring,
            catalog: Mutex::new(HashMap::new()),
            health,
            rotation: AtomicUsize::new(0),
            fault_hook: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The routing configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Poison policy for the fault hook: a hook that panicked mid-call is
    /// dropped — failure injection must never wedge the router itself.
    fn fault_hook_slot(&self) -> MutexGuard<'_, Option<FaultHook>> {
        match self.fault_hook.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = None;
                self.fault_hook.clear_poison();
                guard
            }
        }
    }

    /// Poison policy for shard health: every writer leaves the struct
    /// field-consistent, so the state is taken as-is (worst case a stale
    /// status, which the next success/failure overwrites).
    fn health_slot(&self, idx: usize) -> MutexGuard<'_, ShardHealth> {
        self.health[idx].lock().unwrap_or_else(|poisoned| {
            self.health[idx].clear_poison();
            poisoned.into_inner()
        })
    }

    /// Poison policy for the placement catalog: inserts are single-call
    /// atomic, so the map is taken as-is (worst case one document falls
    /// back to ring placement until its next `LOAD`).
    fn catalog_slot(&self) -> MutexGuard<'_, HashMap<String, Vec<usize>>> {
        self.catalog.lock().unwrap_or_else(|poisoned| {
            self.catalog.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Install a failure-injection hook (tests and the fuzz harness).
    pub fn set_fault_hook(&self, hook: FaultHook) {
        *self.fault_hook_slot() = Some(hook);
    }

    /// Current health of shard `idx`.
    pub fn shard_status(&self, idx: usize) -> ShardStatus {
        self.health_slot(idx).status
    }

    /// The replica shard set of `name`: its catalogued placement, or ring
    /// placement for documents this router never loaded.
    pub fn replicas_for(&self, name: &str) -> Vec<usize> {
        if let Some(placed) = self.catalog_slot().get(name) {
            return placed.clone();
        }
        self.ring.replicas(name, self.config.replication)
    }

    /// May a request be sent to shard `idx` right now?  UP shards: always.
    /// DOWN shards: only once per probe interval — claiming the probe slot
    /// pushes the next one out, so concurrent requests don't pile onto a
    /// sick shard.
    fn available(&self, idx: usize) -> bool {
        let mut health = self.health_slot(idx);
        match health.status {
            ShardStatus::Up => true,
            ShardStatus::Down => {
                let now = Instant::now();
                match health.probe_at {
                    Some(at) if now >= at => {
                        health.probe_at = Some(now + self.config.probe_interval);
                        true
                    }
                    _ => false,
                }
            }
        }
    }

    fn record_success(&self, idx: usize) {
        let mut health = self.health_slot(idx);
        health.status = ShardStatus::Up;
        health.consecutive_failures = 0;
        health.probe_at = None;
    }

    fn record_failure(&self, idx: usize) {
        let mut health = self.health_slot(idx);
        health.consecutive_failures = health.consecutive_failures.saturating_add(1);
        if health.consecutive_failures >= self.config.fail_threshold {
            health.status = ShardStatus::Down;
            health.probe_at = Some(Instant::now() + self.config.probe_interval);
        }
    }

    fn fault_for(&self, shard: usize, command: &Command) -> FaultAction {
        match self.fault_hook_slot().as_ref() {
            Some(hook) => hook(shard, command),
            None => FaultAction::None,
        }
    }
}

/// [`ShardClient`] deadlines derived from the router's knobs.  The client's
/// own reconnect backoff is kept below the probe interval so a health probe
/// is never swallowed by a client-level `Backoff` fail-fast.
fn client_config(config: &RouterConfig) -> ClientConfig {
    let backoff_max = (config.probe_interval / 4).max(Duration::from_millis(1));
    ClientConfig {
        connect_timeout: Some(config.connect_timeout),
        read_timeout: Some(config.shard_timeout),
        // The health machinery owns retries; a handler thread never sleeps
        // in a refused-connect loop.
        connect_retries: 0,
        backoff_initial: Duration::from_millis(5).min(backoff_max),
        backoff_max,
    }
}

/// Send one request to one shard through the fault hook, recording the
/// outcome in the shard's health.
fn routed(
    router: &Router,
    client: &mut ShardClient,
    shard: usize,
    line: &str,
    command: &Command,
) -> Result<Response, WireError> {
    match router.fault_for(shard, command) {
        FaultAction::None => {}
        FaultAction::KillConn => {
            client.kill_connection();
            router.record_failure(shard);
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "fault injection: connection killed mid-query",
            )));
        }
        FaultAction::Delay(delay) => {
            if delay >= router.config.shard_timeout {
                std::thread::sleep(router.config.shard_timeout);
                router.record_failure(shard);
                return Err(WireError::Timeout);
            }
            std::thread::sleep(delay);
        }
        FaultAction::Garbage(status) => client.inject_status_line(status),
    }
    let result = client.request(line);
    match &result {
        Ok(_) => router.record_success(shard),
        Err(_) => router.record_failure(shard),
    }
    result
}

/// What the serving loop does after answering one request.
enum Control {
    /// Keep reading this connection.
    Continue,
    /// `QUIT`: close this connection.
    Close,
    /// `SHUTDOWN`: stop the router (shards already notified).
    Shutdown,
}

/// Per-client routing state: one [`ShardClient`] per backend, sharing the
/// router's placement/health through an [`Arc<Router>`].
pub struct RouterConn {
    router: Arc<Router>,
    clients: Vec<ShardClient>,
}

impl RouterConn {
    /// A connection context over `router`'s backends.
    pub fn new(router: Arc<Router>) -> RouterConn {
        let config = client_config(&router.config);
        let clients = router
            .config
            .backends
            .iter()
            .map(|addr| ShardClient::new(addr.clone(), config.clone()))
            .collect();
        RouterConn { router, clients }
    }

    /// Route one request line and return the response to write.  `QUIT` and
    /// `SHUTDOWN` are resolved here (including the shard fan-out), so the
    /// public result only distinguishes the payload.
    pub fn handle_line(&mut self, line: &str) -> Response {
        let (response, _) = self.handle_line_control(line);
        response
    }

    fn handle_line_control(&mut self, line: &str) -> (Response, Control) {
        let command = match parse_command(line) {
            Ok(command) => command,
            Err(message) => return (Err(message), Control::Continue),
        };
        match &command {
            Command::Quit => (Ok(vec!["bye".to_string()]), Control::Close),
            Command::Shutdown => {
                // Best effort, in parallel, DOWN shards included: a dying
                // fleet should still be told to stop.
                self.scatter("SHUTDOWN", &command, true);
                (Ok(vec!["bye".to_string()]), Control::Shutdown)
            }
            Command::Load { name, .. } | Command::LoadTerms { name, .. } => {
                let name = name.clone();
                (self.route_load(&name, line, &command), Control::Continue)
            }
            Command::Query { name, .. } => {
                let name = name.clone();
                (self.route_query(&name, line, &command), Control::Continue)
            }
            Command::Mutate { name, .. } => {
                let name = name.clone();
                (self.route_mutate(&name, line, &command), Control::Continue)
            }
            Command::Evict(Some(name)) => {
                let name = name.clone();
                (self.route_evict_one(&name, line, &command), Control::Continue)
            }
            Command::Evict(None) => (self.route_evict_all(line, &command), Control::Continue),
            Command::Stats => (self.route_stats(line, &command), Control::Continue),
            Command::QueryAll { .. } => (self.route_queryall(line, &command), Control::Continue),
        }
    }

    /// `LOAD`/`LOADTERMS`: write to every replica; success is at least one
    /// acknowledgement, recorded in the catalog.
    fn route_load(&mut self, name: &str, line: &str, command: &Command) -> Response {
        let targets = self.router.ring.replicas(name, self.router.config.replication);
        let total = targets.len();
        let mut placed = Vec::new();
        let mut last_error: Option<String> = None;
        for shard in targets {
            if !self.router.available(shard) {
                last_error = Some(format!("shard {} down", self.router.config.backends[shard]));
                continue;
            }
            match routed(&self.router, &mut self.clients[shard], shard, line, command) {
                Ok(Ok(_)) => placed.push(shard),
                // A daemon ERR (malformed document) is deterministic: every
                // replica would refuse identically, so report it directly.
                Ok(Err(message)) => return Err(message),
                Err(e) => {
                    last_error =
                        Some(format!("shard {}: {e}", self.router.config.backends[shard]))
                }
            }
        }
        if placed.is_empty() {
            let reason = last_error.unwrap_or_else(|| "no shard available".to_string());
            return Err(format!("load failed for '{name}': {reason}"));
        }
        let acked = placed.len();
        self.router.catalog_slot().insert(name.to_string(), placed);
        Ok(vec![format!("loaded {name} replicas={acked}/{total}")])
    }

    /// `QUERY`: fan across the replicas from a rotating start; transport
    /// failures fail over to the next replica, a daemon `ERR` is final.
    fn route_query(&mut self, name: &str, line: &str, command: &Command) -> Response {
        let candidates = self.router.replicas_for(name);
        let start = self.router.rotation.fetch_add(1, Ordering::Relaxed);
        let mut last_error: Option<String> = None;
        for i in 0..candidates.len() {
            let shard = candidates[(start + i) % candidates.len()];
            if !self.router.available(shard) {
                last_error = Some(format!("shard {} down", self.router.config.backends[shard]));
                continue;
            }
            match routed(&self.router, &mut self.clients[shard], shard, line, command) {
                Ok(response) => return response,
                Err(e) => {
                    last_error =
                        Some(format!("shard {}: {e}", self.router.config.backends[shard]))
                }
            }
        }
        let reason = last_error.unwrap_or_else(|| "no replica available".to_string());
        Err(format!("no shard answered for '{name}': {reason}"))
    }

    /// `MUTATE`: a write — every replica must apply the edit, or replicas
    /// diverge.  Per-replica acks are accounted and reported; a replica
    /// that cannot be reached surfaces as a `doc=… error=` partial next to
    /// the acks (the operator's signal to re-`LOAD`), never as failure of
    /// the edit that *did* land.  A daemon `ERR` is a healthy final answer
    /// (the QUERY rule): it does not hurt shard health, and if no replica
    /// acked at all the first refusal is returned verbatim — every replica
    /// of an in-sync set refuses a malformed edit identically.
    fn route_mutate(&mut self, name: &str, line: &str, command: &Command) -> Response {
        let candidates = self.router.replicas_for(name);
        let total = candidates.len();
        let mut acked = Vec::new();
        let mut partials = Vec::new();
        let mut first_refusal: Option<String> = None;
        let mut last_transport: Option<String> = None;
        for shard in candidates {
            let addr = &self.router.config.backends[shard];
            if !self.router.available(shard) {
                partials.push(format!("doc={name} error=shard {addr} down"));
                last_transport = Some(format!("shard {addr} down"));
                continue;
            }
            match routed(&self.router, &mut self.clients[shard], shard, line, command) {
                Ok(Ok(payload)) => acked.extend(payload),
                Ok(Err(message)) => {
                    partials.push(format!("doc={name} error={message}"));
                    first_refusal.get_or_insert(message);
                }
                Err(e) => {
                    partials.push(format!("doc={name} error=shard {addr}: {e}"));
                    last_transport = Some(format!("shard {addr}: {e}"));
                }
            }
        }
        if acked.is_empty() {
            // No replica applied the edit: a unanimous daemon refusal is
            // the answer; otherwise report why nothing was reachable.
            if let Some(message) = first_refusal {
                return Err(message);
            }
            let reason = last_transport.unwrap_or_else(|| "no replica available".to_string());
            return Err(format!("mutate failed for '{name}': {reason}"));
        }
        let mut lines = vec![format!(
            "mutated {name} replicas={}/{total}",
            total - partials.len()
        )];
        lines.extend(acked);
        lines.extend(partials);
        Ok(lines)
    }

    /// `EVICT <name>`: every reachable replica evicts; `evicted=true` if
    /// any replica held a session.
    fn route_evict_one(&mut self, name: &str, line: &str, command: &Command) -> Response {
        let candidates = self.router.replicas_for(name);
        let mut reached = false;
        let mut evicted = false;
        let mut last_error: Option<String> = None;
        for shard in candidates {
            if !self.router.available(shard) {
                last_error = Some(format!("shard {} down", self.router.config.backends[shard]));
                continue;
            }
            match routed(&self.router, &mut self.clients[shard], shard, line, command) {
                Ok(Ok(payload)) => {
                    reached = true;
                    evicted |= payload.iter().any(|l| l == "evicted=true");
                }
                Ok(Err(message)) => return Err(message),
                Err(e) => {
                    last_error =
                        Some(format!("shard {}: {e}", self.router.config.backends[shard]))
                }
            }
        }
        if !reached {
            let reason = last_error.unwrap_or_else(|| "no replica available".to_string());
            return Err(format!("evict failed for '{name}': {reason}"));
        }
        Ok(vec![format!("evicted={evicted}")])
    }

    /// `EVICT`: scatter to every live shard and sum the eviction counts.
    fn route_evict_all(&mut self, line: &str, command: &Command) -> Response {
        let results = self.scatter(line, command, false);
        let mut total: u64 = 0;
        let mut reached = false;
        for (_, outcome) in &results {
            if let Some(Ok(Ok(payload))) = outcome {
                reached = true;
                total += payload
                    .iter()
                    .filter_map(|l| l.strip_prefix("evicted="))
                    .filter_map(|n| n.parse::<u64>().ok())
                    .sum::<u64>();
            }
        }
        if !reached {
            return Err("evict failed: no shard reachable".to_string());
        }
        Ok(vec![format!("evicted={total}")])
    }

    /// `STATS`: scatter; aggregate document counts and report one
    /// `shard=… status=…` line per backend, down shards included.
    fn route_stats(&mut self, line: &str, command: &Command) -> Response {
        let results = self.scatter(line, command, false);
        let mut lines = Vec::new();
        let mut up = 0usize;
        let mut documents: u64 = 0;
        let mut per_shard = Vec::new();
        for (shard, outcome) in results {
            let addr = &self.router.config.backends[shard];
            match outcome {
                Some(Ok(Ok(payload))) => {
                    up += 1;
                    let docs = payload
                        .iter()
                        .filter_map(|l| l.strip_prefix("documents="))
                        .filter_map(|n| n.parse::<u64>().ok())
                        .next()
                        .unwrap_or(0);
                    documents += docs;
                    per_shard.push(format!("shard={addr} status=up documents={docs}"));
                }
                Some(Ok(Err(message))) => {
                    up += 1; // the wire is healthy even if the command failed
                    per_shard.push(format!("shard={addr} status=up error={message}"));
                }
                Some(Err(e)) => per_shard.push(format!("shard={addr} status=down error={e}")),
                None => per_shard.push(format!("shard={addr} status=down error=skipped (down)")),
            }
        }
        lines.push(format!("shards={}", self.router.config.backends.len()));
        lines.push(format!("shards_up={up}"));
        lines.push(format!("documents={documents}"));
        lines.extend(per_shard);
        Ok(lines)
    }

    /// `QUERYALL`: scatter, merge per-document blocks (replicas
    /// deduplicated, healthy blocks preferred over error blocks), and
    /// report catalogued documents whose every replica failed as
    /// `doc=<name> error=…` lines.  Always `OK` — partial results beat
    /// refusing to answer.
    fn route_queryall(&mut self, line: &str, command: &Command) -> Response {
        let results = self.scatter(line, command, false);
        let mut failed_shards = Vec::new();
        let mut merged: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (shard, outcome) in results {
            match outcome {
                Some(Ok(Ok(payload))) => {
                    for (name, block) in split_doc_blocks(&payload) {
                        match merged.get_mut(&name) {
                            // First replica wins unless it reported an
                            // error and this one answered.
                            Some(existing) if is_error_block(existing) && !is_error_block(&block) => {
                                *existing = block
                            }
                            Some(_) => {}
                            None => {
                                merged.insert(name, block);
                            }
                        }
                    }
                }
                // A daemon ERR to QUERYALL (can't happen today — fan-out
                // reports per document) degrades to a failed shard.
                Some(Ok(Err(_))) | Some(Err(_)) | None => failed_shards.push(shard),
            }
        }
        // Catalogued documents with every replica in the failed set are
        // reported, not silently dropped.
        let catalog = self.router.catalog_slot();
        for (name, replicas) in catalog.iter() {
            if merged.contains_key(name) {
                continue;
            }
            if replicas.iter().all(|s| failed_shards.contains(s)) {
                let addrs: Vec<&str> = replicas
                    .iter()
                    .map(|&s| self.router.config.backends[s].as_str())
                    .collect();
                merged.insert(
                    name.clone(),
                    vec![format!(
                        "doc={name} error=shard unavailable ({})",
                        addrs.join(",")
                    )],
                );
            }
        }
        drop(catalog);
        Ok(merged.into_values().flatten().collect())
    }

    /// Send `line` to every shard in parallel.  Per-shard outcome: `None`
    /// when the shard was skipped as DOWN (and `include_down` was false),
    /// otherwise the request result.  Each request carries its own
    /// deadline, so the barrier is bounded by the slowest single shard.
    fn scatter(
        &mut self,
        line: &str,
        command: &Command,
        include_down: bool,
    ) -> Vec<(usize, Option<Result<Response, WireError>>)> {
        let router = &self.router;
        xpath_sync::thread::scope(|scope| {
            let handles: Vec<_> = self
                .clients
                .iter_mut()
                .enumerate()
                .map(|(shard, client)| {
                    let handle = scope.spawn(move || {
                        if !include_down && !router.available(shard) {
                            return (shard, None);
                        }
                        (shard, Some(routed(router, client, shard, line, command)))
                    });
                    (shard, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(shard, h)| {
                    h.join().unwrap_or_else(|_| {
                        // A panicking shard worker degrades to a failed
                        // shard; the fan-out and the router keep going.
                        let e = std::io::Error::other("shard worker panicked");
                        (shard, Some(Err(WireError::Io(e))))
                    })
                })
                .collect()
        })
    }
}

/// `true` for a block that is a single `doc=<name> error=…` line.
fn is_error_block(block: &[String]) -> bool {
    block.len() == 1 && block[0].contains(" error=")
}

/// Split a backend `QUERYALL` payload into per-document blocks: each
/// `doc=…` header line plus its following tuple lines.
fn split_doc_blocks(lines: &[String]) -> Vec<(String, Vec<String>)> {
    let mut blocks: Vec<(String, Vec<String>)> = Vec::new();
    for line in lines {
        if let Some(rest) = line.strip_prefix("doc=") {
            let name = rest.split_whitespace().next().unwrap_or("").to_string();
            blocks.push((name, vec![line.clone()]));
        } else if let Some(last) = blocks.last_mut() {
            last.1.push(line.clone());
        }
        // A tuple line before any header is a malformed payload; drop it
        // rather than misattribute it.
    }
    blocks
}

/// Serve one router client until `QUIT`, `SHUTDOWN`, disconnect, or idle
/// timeout.  Returns `true` when the client requested a router shutdown.
fn handle_router_client(stream: TcpStream, router: Arc<Router>) -> bool {
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let idle = router.config.idle_timeout;
    if stream.set_read_timeout(idle).is_err() || stream.set_write_timeout(idle).is_err() {
        return false;
    }
    let max_line = router.config.max_line.max(1);
    let mut conn = RouterConn::new(Arc::clone(&router));
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let write_response = |writer: &mut BufWriter<TcpStream>, response: &Response| {
        writer
            .write_all(&render_response(response))
            .and_then(|()| writer.flush())
    };
    loop {
        let line = match read_request_line(&mut reader, max_line) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::TooLong) => {
                let response = Err(format!("line too long (max {max_line} bytes)"));
                if write_response(&mut writer, &response).is_err() {
                    break;
                }
                continue;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let _ = write_response(
                    &mut writer,
                    &Err("idle timeout, closing connection".to_string()),
                );
                break;
            }
            Ok(LineRead::Eof) | Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = conn.handle_line_control(&line);
        if write_response(&mut writer, &response).is_err() {
            break;
        }
        match control {
            Control::Continue => {}
            Control::Close => break,
            Control::Shutdown => return true,
        }
    }
    false
}

/// The router accept loop: thread per client, same transient-`accept()`
/// resilience as the daemon's serving loop, until a client sends
/// `SHUTDOWN` (which also fans out to every backend shard).
pub fn serve_router(listener: TcpListener, router: Arc<Router>) -> std::io::Result<()> {
    let mut addr = listener.local_addr()?;
    if addr.ip().is_unspecified() {
        let loopback: std::net::IpAddr = if addr.is_ipv4() {
            std::net::Ipv4Addr::LOCALHOST.into()
        } else {
            std::net::Ipv6Addr::LOCALHOST.into()
        };
        addr.set_ip(loopback);
    }
    xpath_sync::thread::scope(|scope| -> std::io::Result<()> {
        loop {
            let mut stream = match listener.accept().map(|(stream, _)| stream) {
                Ok(stream) => stream,
                Err(e) => match classify_accept_error(&e) {
                    AcceptDisposition::Retry => continue,
                    AcceptDisposition::RetryAfterSleep => {
                        std::thread::sleep(ACCEPT_BACKOFF);
                        continue;
                    }
                    AcceptDisposition::Fatal => return Err(e),
                },
            };
            if router.shutdown.load(Ordering::SeqCst) {
                let _ = stream.write_all(b"ERR shutting down\n");
                return Ok(());
            }
            let _ = stream.set_nodelay(true);
            let router = Arc::clone(&router);
            scope.spawn(move || {
                let wake = Arc::clone(&router);
                if handle_router_client(stream, router) {
                    wake.shutdown.store(true, Ordering::SeqCst);
                    let _ = TcpStream::connect(addr);
                }
            });
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{bind, serve};
    use crate::Corpus;
    use std::io::BufRead;

    /// A backend with a short idle timeout, so a test's `SHUTDOWN`/kill is
    /// not held open for a minute by the router's still-connected shard
    /// clients (the staleness detection reconnects them transparently).
    fn spawn_backend() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let corpus = Arc::new(Corpus::new());
        let options = crate::server::ServeOptions {
            io: crate::server::IoMode::Threads,
            idle_timeout: Some(Duration::from_millis(300)),
            ..crate::server::ServeOptions::default()
        };
        let handle = std::thread::spawn(move || {
            crate::server::serve_with_options(listener, corpus, &options)
        });
        (addr.to_string(), handle)
    }

    fn fast_router(backends: Vec<String>, replication: usize) -> Router {
        Router::new(RouterConfig {
            backends,
            replication,
            shard_timeout: Duration::from_millis(800),
            connect_timeout: Duration::from_millis(400),
            fail_threshold: 1,
            probe_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        })
    }

    /// Shut one backend down directly (not through the router).
    fn kill_backend(addr: &str) {
        let mut client = ShardClient::new(addr.to_string(), ClientConfig::default());
        let _ = client.request("SHUTDOWN");
    }

    #[test]
    fn ring_placement_is_deterministic_distinct_and_spread() {
        let ring = Ring::new(4);
        for name in ["bib", "news", "x", "a-very-long-document-name"] {
            let replicas = ring.replicas(name, 2);
            assert_eq!(replicas, ring.replicas(name, 2), "deterministic");
            assert_eq!(replicas.len(), 2);
            assert_ne!(replicas[0], replicas[1], "distinct shards");
        }
        // Replication clamps to the shard count.
        assert_eq!(ring.replicas("d", 9).len(), 4);
        // Load spreads: over many names every shard owns something, and no
        // shard owns everything.
        let mut owners = vec![0usize; 4];
        for i in 0..400 {
            owners[ring.replicas(&format!("doc-{i}"), 1)[0]] += 1;
        }
        for (shard, &count) in owners.iter().enumerate() {
            assert!(count > 0, "shard {shard} owns nothing: {owners:?}");
            assert!(count < 400, "shard {shard} owns everything: {owners:?}");
        }
    }

    #[test]
    fn load_query_stats_evict_round_trip_over_shards() {
        let backends: Vec<_> = (0..3).map(|_| spawn_backend()).collect();
        let addrs: Vec<String> = backends.iter().map(|(a, _)| a.clone()).collect();
        let router = Arc::new(fast_router(addrs, 2));
        let mut conn = RouterConn::new(Arc::clone(&router));

        for i in 0..6 {
            let response = conn.handle_line(&format!("LOADTERMS d{i} r(a(b),a(b))"));
            assert_eq!(response, Ok(vec![format!("loaded d{i} replicas=2/2")]));
        }
        // Every document answers, whichever shard its query lands on.
        for i in 0..6 {
            let payload = conn
                .handle_line(&format!("QUERY d{i} descendant::b[. is $x] -> x"))
                .unwrap();
            assert_eq!(payload[0], "vars=x tuples=2", "d{i}: {payload:?}");
        }
        // A daemon ERR passes through untouched (semantic, not transport).
        let err = conn.handle_line("QUERY nope child::a").unwrap_err();
        assert!(err.contains("unknown document"), "{err}");

        // QUERYALL merges replicas: each document appears exactly once.
        let payload = conn.handle_line("QUERYALL descendant::b[. is $x] -> x").unwrap();
        let headers: Vec<&String> =
            payload.iter().filter(|l| l.starts_with("doc=")).collect();
        assert_eq!(headers.len(), 6, "{payload:?}");

        // STATS aggregates and reports per-shard health.
        let payload = conn.handle_line("STATS").unwrap();
        assert_eq!(payload[0], "shards=3");
        assert_eq!(payload[1], "shards_up=3");
        // 6 documents at replication 2 = 12 physical placements.
        assert_eq!(payload[2], "documents=12");
        assert_eq!(
            payload.iter().filter(|l| l.contains("status=up")).count(),
            3,
            "{payload:?}"
        );

        // EVICT one document: replicas agree it held a session.
        assert_eq!(conn.handle_line("EVICT d0"), Ok(vec!["evicted=true".into()]));
        // EVICT all: counts sum across shards (d1..=d5 on 2 shards each,
        // d0's sessions were just dropped).
        let payload = conn.handle_line("EVICT").unwrap();
        assert_eq!(payload, vec!["evicted=10".to_string()]);

        // SHUTDOWN fans out: every backend stops.
        assert_eq!(conn.handle_line("SHUTDOWN"), Ok(vec!["bye".into()]));
        for (_, handle) in backends {
            handle.join().unwrap().unwrap();
        }
    }

    #[test]
    fn mutate_writes_every_replica_and_reports_partial_acks() {
        let mut backends: Vec<_> = (0..2).map(|_| spawn_backend()).collect();
        let addrs: Vec<String> = backends.iter().map(|(a, _)| a.clone()).collect();
        let router = Arc::new(fast_router(addrs.clone(), 2));
        let mut conn = RouterConn::new(Arc::clone(&router));

        conn.handle_line("LOADTERMS bib bib(book(author),book(author))")
            .unwrap();
        let payload = conn.handle_line("MUTATE bib INSERT 0 2 book(author)").unwrap();
        assert_eq!(payload[0], "mutated bib replicas=2/2");
        assert_eq!(
            payload
                .iter()
                .filter(|l| l.starts_with("mutated bib kind=insert nodes=7 epoch=1"))
                .count(),
            2,
            "both replicas must report their ack: {payload:?}"
        );
        // Both replicas now serve the edited document.
        for _ in 0..2 {
            let payload = conn
                .handle_line("QUERY bib descendant::author[. is $x] -> x")
                .unwrap();
            assert_eq!(payload[0], "vars=x tuples=3");
        }
        // A structurally invalid edit is refused by every replica: the
        // unanimous ERR is the final answer and leaves shard health alone.
        let err = conn.handle_line("MUTATE bib DELETE 99").unwrap_err();
        assert!(err.contains("cannot edit document"), "{err}");
        assert_eq!(router.shard_status(0), ShardStatus::Up);
        assert_eq!(router.shard_status(1), ShardStatus::Up);

        // One replica dies: the edit still lands on the survivor, with the
        // divergence reported as a partial, not as request failure.
        kill_backend(&addrs[0]);
        backends.remove(0).1.join().unwrap().unwrap();
        let payload = conn.handle_line("MUTATE bib DELETE 1").unwrap();
        assert_eq!(payload[0], "mutated bib replicas=1/2", "{payload:?}");
        assert!(
            payload.iter().any(|l| l.starts_with("doc=bib error=")),
            "the unreachable replica must surface: {payload:?}"
        );
        conn.handle_line("SHUTDOWN").unwrap();
        backends.into_iter().for_each(|(_, h)| {
            h.join().unwrap().unwrap();
        });
    }

    #[test]
    fn query_fails_over_when_a_replica_dies() {
        let mut backends: Vec<_> = (0..2).map(|_| spawn_backend()).collect();
        let addrs: Vec<String> = backends.iter().map(|(a, _)| a.clone()).collect();
        let router = Arc::new(fast_router(addrs.clone(), 2));
        let mut conn = RouterConn::new(Arc::clone(&router));

        assert!(conn.handle_line("LOADTERMS d r(a(b))").is_ok());
        kill_backend(&addrs[0]);
        backends.remove(0).1.join().unwrap().unwrap();

        // Both replica orders must answer: whichever starting rotation
        // picks the dead shard first fails over to the live one.
        for _ in 0..4 {
            let payload = conn
                .handle_line("QUERY d descendant::b[. is $x] -> x")
                .unwrap();
            assert_eq!(payload[0], "vars=x tuples=1");
        }
        assert_eq!(router.shard_status(0), ShardStatus::Down);
        assert_eq!(router.shard_status(1), ShardStatus::Up);
        conn.handle_line("SHUTDOWN").unwrap();
        backends.into_iter().for_each(|(_, h)| {
            h.join().unwrap().unwrap();
        });
    }

    #[test]
    fn queryall_reports_dead_replicas_per_document() {
        let mut backends: Vec<_> = (0..2).map(|_| spawn_backend()).collect();
        let addrs: Vec<String> = backends.iter().map(|(a, _)| a.clone()).collect();
        // Replication 1: each document lives on exactly one shard.
        let router = Arc::new(fast_router(addrs.clone(), 1));
        let mut conn = RouterConn::new(Arc::clone(&router));

        // Load documents until both shards hold at least one.
        let mut by_shard: Vec<Vec<String>> = vec![Vec::new(), Vec::new()];
        for i in 0..32 {
            let name = format!("d{i}");
            conn.handle_line(&format!("LOADTERMS {name} r(a(b))")).unwrap();
            by_shard[router.replicas_for(&name)[0]].push(name);
            if by_shard.iter().all(|v| !v.is_empty()) && i >= 3 {
                break;
            }
        }
        assert!(by_shard.iter().all(|v| !v.is_empty()), "{by_shard:?}");

        kill_backend(&addrs[0]);
        backends.remove(0).1.join().unwrap().unwrap();

        let payload = conn.handle_line("QUERYALL descendant::b[. is $x] -> x").unwrap();
        for name in &by_shard[1] {
            assert!(
                payload.iter().any(|l| l == &format!("doc={name} tuples=1")),
                "live shard's {name} must answer: {payload:?}"
            );
        }
        for name in &by_shard[0] {
            assert!(
                payload
                    .iter()
                    .any(|l| l.starts_with(&format!("doc={name} error=shard unavailable"))),
                "dead shard's {name} must be reported: {payload:?}"
            );
        }
        conn.handle_line("SHUTDOWN").unwrap();
        backends.into_iter().for_each(|(_, h)| {
            h.join().unwrap().unwrap();
        });
    }

    #[test]
    fn down_shard_is_probed_back_up() {
        // Reserve a port, leave it dead for now.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let router = Arc::new(fast_router(vec![addr.to_string()], 1));
        let mut conn = RouterConn::new(Arc::clone(&router));

        let err = conn.handle_line("QUERY d child::a").unwrap_err();
        assert!(err.contains("no shard answered"), "{err}");
        assert_eq!(router.shard_status(0), ShardStatus::Down);
        // While DOWN and before the probe interval, requests fail fast
        // without touching the socket.
        let start = Instant::now();
        let err = conn.handle_line("QUERY d child::a").unwrap_err();
        assert!(err.contains("down"), "{err}");
        assert!(start.elapsed() < Duration::from_millis(40), "fail-fast");

        // The backend comes back on the same port…
        let listener = TcpListener::bind(addr).unwrap();
        let corpus = Arc::new(Corpus::new());
        let backend = std::thread::spawn(move || serve(listener, corpus));
        // …and after the probe interval one request goes through as the
        // probe and flips the shard UP.
        std::thread::sleep(Duration::from_millis(120));
        let response = conn.handle_line("LOADTERMS d r(a)");
        assert_eq!(response, Ok(vec!["loaded d replicas=1/1".into()]));
        assert_eq!(router.shard_status(0), ShardStatus::Up);
        conn.handle_line("SHUTDOWN").unwrap();
        backend.join().unwrap().unwrap();
    }

    #[test]
    fn panicking_fault_hook_is_dropped_not_fatal() {
        // PR 9 poison policy: a fault hook that panics mid-call poisons its
        // mutex; the next caller drops the hook and keeps routing instead of
        // dying on what used to be `lock().unwrap()`.
        let router = fast_router(vec!["127.0.0.1:9".into()], 1);
        router.set_fault_hook(Arc::new(|_, _| panic!("hook blew up")));
        let command = parse_command("STATS").unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            router.fault_for(0, &command)
        }));
        assert!(caught.is_err(), "the hook's own panic still propagates");
        assert!(
            matches!(router.fault_for(0, &command), FaultAction::None),
            "the poisoned slot recovers by dropping the hook"
        );
        router.set_fault_hook(Arc::new(|_, _| FaultAction::KillConn));
        assert!(
            matches!(router.fault_for(0, &command), FaultAction::KillConn),
            "a fresh hook installs over the recovered slot"
        );
    }

    #[test]
    fn fault_hook_failures_always_answer_and_recover() {
        let backends: Vec<_> = (0..2).map(|_| spawn_backend()).collect();
        let addrs: Vec<String> = backends.iter().map(|(a, _)| a.clone()).collect();
        let router = Arc::new(fast_router(addrs, 2));
        let mut conn = RouterConn::new(Arc::clone(&router));
        conn.handle_line("LOADTERMS d r(a(b))").unwrap();

        // Kill every shard connection mid-query: the query still fails over
        // (reconnect) or reports a well-formed error — here the hook fires
        // on every attempt, so the router reports failure cleanly.
        let deny = Arc::new(AtomicBool::new(true));
        let deny_hook = Arc::clone(&deny);
        router.set_fault_hook(Arc::new(move |_, command| {
            if deny_hook.load(Ordering::SeqCst) && matches!(command, Command::Query { .. }) {
                FaultAction::KillConn
            } else {
                FaultAction::None
            }
        }));
        let err = conn.handle_line("QUERY d child::a").unwrap_err();
        assert!(err.contains("connection killed"), "{err}");

        // Garbage responses surface as protocol failures, not hangs, and
        // the next clean request succeeds (connection resynced).
        deny.store(false, Ordering::SeqCst);
        router.set_fault_hook(Arc::new(|shard, command| {
            if shard == 0 && matches!(command, Command::Query { .. }) {
                FaultAction::Garbage("HTTP/1.1 502 Bad Gateway".into())
            } else {
                FaultAction::None
            }
        }));
        // The kill phase marked both shards DOWN (threshold 1); wait out
        // the probe interval so requests are let through again.
        std::thread::sleep(Duration::from_millis(120));
        // Shard 0 may or may not be hit first depending on rotation, but
        // every attempt must answer within the deadline.
        for _ in 0..4 {
            let response = conn.handle_line("QUERY d descendant::b[. is $x] -> x");
            let payload = response.expect("failover around the poisoned shard");
            assert_eq!(payload[0], "vars=x tuples=1");
        }
        conn.handle_line("SHUTDOWN").unwrap();
        for (_, handle) in backends {
            handle.join().unwrap().unwrap();
        }
    }

    #[test]
    fn serve_router_end_to_end_over_tcp() {
        let backends: Vec<_> = (0..2).map(|_| spawn_backend()).collect();
        let addrs: Vec<String> = backends.iter().map(|(a, _)| a.clone()).collect();
        let router = Arc::new(fast_router(addrs, 2));
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let server = {
            let router = Arc::clone(&router);
            std::thread::spawn(move || serve_router(listener, router))
        };

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut request = |line: &str| -> (String, Vec<String>) {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut status = String::new();
            reader.read_line(&mut status).unwrap();
            let status = status.trim().to_string();
            let n = status
                .strip_prefix("OK ")
                .map(|n| n.parse::<usize>().unwrap())
                .unwrap_or(0);
            let mut payload = Vec::with_capacity(n);
            for _ in 0..n {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                payload.push(line.trim_end().to_string());
            }
            (status, payload)
        };

        let (status, payload) = request("LOAD bib <bib><book><author/></book></bib>");
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "loaded bib replicas=2/2");
        let (status, payload) = request("QUERY bib descendant::author[. is $a] -> a");
        assert_eq!(status, "OK 2");
        assert_eq!(payload, vec!["vars=a tuples=1", "author#2"]);
        let (status, _) = request("BOGUS");
        assert!(status.starts_with("ERR unknown command"), "{status}");
        let (_, payload) = request("STATS");
        assert_eq!(payload[1], "shards_up=2");

        let (status, payload) = request("SHUTDOWN");
        assert_eq!(status, "OK 1");
        assert_eq!(payload, vec!["bye"]);
        server.join().unwrap().unwrap();
        for (_, handle) in backends {
            handle.join().unwrap().unwrap();
        }
    }
}
