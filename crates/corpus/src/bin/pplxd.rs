//! `pplxd` — the corpus query daemon.
//!
//! Serves a shared [`Corpus`] over a line-based TCP protocol (see
//! `xpath_corpus::server` for the wire format).  On Linux the default is
//! an epoll event loop with request pipelining and per-connection
//! backpressure; `--io threads` selects the portable one-thread-per-client
//! fallback.  `pplx --connect host:port` is the matching client.
//!
//! ```text
//! USAGE:
//!     pplxd [--bind ADDR] [--port N] [--budget BYTES] [--threads N]
//!           [--engine ppl|acq|hcl|naive|auto] [--preload DIR]
//!           [--max-line BYTES] [--io threads|epoll] [--idle-timeout SECS]
//!           [--route ADDR,ADDR,...] [--replicas N] [--shard-timeout MS]
//!
//! OPTIONS:
//!     --bind ADDR      interface to bind (default 127.0.0.1)
//!     --port N         TCP port; 0 picks an ephemeral port (default 7878)
//!     --budget BYTES   memory budget of the session pool (default unbounded)
//!     --threads N      worker threads: QUERYALL fan-out, and command
//!                      execution under --io epoll (default 4)
//!     --engine E       force one engine for every plan (default auto)
//!     --preload DIR    ingest every *.xml under DIR before serving
//!     --max-line BYTES cap on one request line (default 16 MiB); overlong
//!                      lines answer `ERR line too long`
//!     --io MODE        connection multiplexing: `epoll` (event loop,
//!                      Linux-only, default on Linux) or `threads`
//!                      (thread per client, default elsewhere)
//!     --idle-timeout SECS  drop connections silent for SECS seconds
//!                      (default 60; 0 disables)
//!     --route ADDRS    run as a router over comma-separated backend
//!                      daemons instead of serving documents locally
//!     --replicas N     copies of each document across shards (router
//!                      mode, default 2, clamped to the shard count)
//!     --shard-timeout MS  per-shard deadline for routed requests
//!                      (router mode, default 5000)
//! ```
//!
//! On startup the daemon prints `pplxd listening on <addr>` to stdout (the
//! CI smoke test parses this to discover the ephemeral port).

use std::process::ExitCode;
use std::sync::Arc;
use xpath_corpus::router::{serve_router, Router, RouterConfig};
use xpath_corpus::server::{bind, serve_with_options, IoMode, ServeOptions, DEFAULT_MAX_LINE};
use xpath_corpus::{Corpus, CorpusConfig};

const USAGE: &str = "usage: pplxd [--bind ADDR] [--port N] [--budget BYTES] \
[--threads N] [--engine ppl|acq|hcl|naive|auto] [--preload DIR] [--max-line BYTES] \
[--io threads|epoll] [--idle-timeout SECS] [--route ADDR,ADDR,...] [--replicas N] \
[--shard-timeout MS]";

#[derive(Debug)]
struct Options {
    bind: String,
    port: u16,
    budget: Option<usize>,
    threads: usize,
    engine: Option<ppl_xpath::Engine>,
    preload: Option<String>,
    max_line: usize,
    io: IoMode,
    idle_timeout: Option<std::time::Duration>,
    route: Option<Vec<String>>,
    replicas: usize,
    shard_timeout: std::time::Duration,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        bind: "127.0.0.1".to_string(),
        port: 7878,
        budget: None,
        threads: 4,
        engine: None,
        preload: None,
        max_line: DEFAULT_MAX_LINE,
        io: IoMode::default(),
        idle_timeout: Some(xpath_corpus::server::DEFAULT_IDLE_TIMEOUT),
        route: None,
        replicas: 2,
        shard_timeout: std::time::Duration::from_millis(5000),
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {flag}"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--bind" => options.bind = value(&mut i, "--bind")?,
            "--port" => {
                options.port = value(&mut i, "--port")?
                    .parse()
                    .map_err(|_| "--port expects a number in 0..=65535".to_string())?
            }
            "--budget" => {
                options.budget = Some(
                    value(&mut i, "--budget")?
                        .parse()
                        .map_err(|_| "--budget expects a byte count".to_string())?,
                )
            }
            "--threads" => {
                let n: usize = value(&mut i, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a number".to_string())?;
                options.threads = n.max(1);
            }
            "--engine" => {
                let name = value(&mut i, "--engine")?;
                options.engine = match name.as_str() {
                    "auto" => None,
                    other => Some(ppl_xpath::Engine::parse(other).ok_or_else(|| {
                        format!("unknown engine '{other}' (expected ppl|acq|hcl|naive|auto)")
                    })?),
                }
            }
            "--preload" => options.preload = Some(value(&mut i, "--preload")?),
            "--io" => options.io = value(&mut i, "--io")?.parse()?,
            "--max-line" => {
                let n: usize = value(&mut i, "--max-line")?
                    .parse()
                    .map_err(|_| "--max-line expects a byte count".to_string())?;
                options.max_line = n.max(1);
            }
            "--idle-timeout" => {
                let secs: u64 = value(&mut i, "--idle-timeout")?
                    .parse()
                    .map_err(|_| "--idle-timeout expects seconds (0 disables)".to_string())?;
                options.idle_timeout = if secs == 0 {
                    None
                } else {
                    Some(std::time::Duration::from_secs(secs))
                };
            }
            "--route" => {
                let list = value(&mut i, "--route")?;
                let backends: Vec<String> = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if backends.is_empty() {
                    return Err("--route expects a comma-separated list of host:port".to_string());
                }
                options.route = Some(backends);
            }
            "--replicas" => {
                let n: usize = value(&mut i, "--replicas")?
                    .parse()
                    .map_err(|_| "--replicas expects a number".to_string())?;
                options.replicas = n.max(1);
            }
            "--shard-timeout" => {
                let ms: u64 = value(&mut i, "--shard-timeout")?
                    .parse()
                    .map_err(|_| "--shard-timeout expects milliseconds".to_string())?;
                options.shard_timeout = std::time::Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    if let Some(backends) = &options.route {
        if options.preload.is_some() || options.budget.is_some() || options.engine.is_some() {
            eprintln!("pplxd: --preload/--budget/--engine apply to backends, not the router");
            return ExitCode::from(2);
        }
        let address = format!("{}:{}", options.bind, options.port);
        let (listener, local) = match bind(&address) {
            Ok(bound) => bound,
            Err(e) => {
                eprintln!("pplxd cannot bind {address}: {e}");
                return ExitCode::from(5);
            }
        };
        let config = RouterConfig {
            backends: backends.clone(),
            replication: options.replicas,
            shard_timeout: options.shard_timeout,
            max_line: options.max_line,
            idle_timeout: options.idle_timeout,
            ..RouterConfig::default()
        };
        let router = Arc::new(Router::new(config));
        println!(
            "pplxd routing on {local} over {} shard(s)",
            backends.len()
        );
        use std::io::Write;
        let _ = std::io::stdout().flush();
        return match serve_router(listener, router) {
            Ok(()) => {
                println!("pplxd shut down");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pplxd router error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let corpus = Arc::new(Corpus::with_config(CorpusConfig {
        memory_budget: options.budget,
        threads: options.threads,
        queue_capacity: options.threads.max(1) * 2,
        engine: options.engine,
        ..CorpusConfig::default()
    }));
    if let Some(dir) = &options.preload {
        match corpus.load_dir(std::path::Path::new(dir)) {
            Ok(names) => eprintln!("pplxd preloaded {} document(s) from {dir}", names.len()),
            Err(e) => {
                eprintln!("pplxd cannot preload {dir}: {e}");
                return ExitCode::from(5);
            }
        }
    }

    let address = format!("{}:{}", options.bind, options.port);
    let (listener, local) = match bind(&address) {
        Ok(bound) => bound,
        Err(e) => {
            eprintln!("pplxd cannot bind {address}: {e}");
            return ExitCode::from(5);
        }
    };
    println!("pplxd listening on {local}");
    // Line-buffered stdout may sit on the message until exit; the CI smoke
    // test reads it from a pipe, so flush explicitly.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let serve_options = ServeOptions {
        max_line: options.max_line,
        io: options.io,
        workers: options.threads,
        idle_timeout: options.idle_timeout,
    };
    match serve_with_options(listener, corpus, &serve_options) {
        Ok(()) => {
            println!("pplxd shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pplxd server error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_overrides() {
        let defaults = parse_args(&[]).unwrap();
        assert_eq!(defaults.bind, "127.0.0.1");
        assert_eq!(defaults.port, 7878);
        assert_eq!(defaults.budget, None);
        assert_eq!(defaults.threads, 4);
        assert!(defaults.engine.is_none());
        assert!(defaults.preload.is_none());
        assert_eq!(defaults.max_line, DEFAULT_MAX_LINE);
        assert_eq!(defaults.io, IoMode::default());
        if cfg!(target_os = "linux") {
            assert_eq!(defaults.io, IoMode::Epoll);
        }

        let options = parse_args(&args(&[
            "--bind", "0.0.0.0", "--port", "0", "--budget", "1048576", "--threads", "0",
            "--engine", "ppl", "--preload", "/tmp/docs", "--max-line", "4096",
        ]))
        .unwrap();
        assert_eq!(options.max_line, 4096);
        assert_eq!(options.bind, "0.0.0.0");
        assert_eq!(options.port, 0);
        assert_eq!(options.budget, Some(1 << 20));
        assert_eq!(options.threads, 1, "--threads 0 clamps to 1");
        assert_eq!(options.engine, Some(ppl_xpath::Engine::Ppl));
        assert_eq!(options.preload.as_deref(), Some("/tmp/docs"));

        assert!(parse_args(&args(&["--port", "notanumber"])).is_err());
        assert!(parse_args(&args(&["--max-line", "lots"]))
            .unwrap_err()
            .contains("byte count"));
        assert_eq!(
            parse_args(&args(&["--max-line", "0"])).unwrap().max_line,
            1,
            "--max-line 0 clamps to 1"
        );
        assert!(parse_args(&args(&["--engine", "zzz"])).unwrap_err().contains("unknown engine"));
        assert!(parse_args(&args(&["--wat"])).unwrap_err().contains("unknown argument"));

        assert_eq!(parse_args(&args(&["--io", "threads"])).unwrap().io, IoMode::Threads);
        assert_eq!(parse_args(&args(&["--io", "epoll"])).unwrap().io, IoMode::Epoll);
        assert!(parse_args(&args(&["--io", "fibers"])).unwrap_err().contains("unknown io mode"));
    }

    #[test]
    fn parse_idle_timeout_and_router_flags() {
        let defaults = parse_args(&[]).unwrap();
        assert_eq!(
            defaults.idle_timeout,
            Some(xpath_corpus::server::DEFAULT_IDLE_TIMEOUT)
        );
        assert!(defaults.route.is_none());
        assert_eq!(defaults.replicas, 2);
        assert_eq!(defaults.shard_timeout, std::time::Duration::from_millis(5000));

        let options = parse_args(&args(&["--idle-timeout", "7"])).unwrap();
        assert_eq!(options.idle_timeout, Some(std::time::Duration::from_secs(7)));
        let options = parse_args(&args(&["--idle-timeout", "0"])).unwrap();
        assert_eq!(options.idle_timeout, None, "--idle-timeout 0 disables");
        assert!(parse_args(&args(&["--idle-timeout", "soon"])).is_err());

        let options = parse_args(&args(&[
            "--route",
            " 127.0.0.1:7001, 127.0.0.1:7002 ,127.0.0.1:7003",
            "--replicas",
            "3",
            "--shard-timeout",
            "250",
        ]))
        .unwrap();
        assert_eq!(
            options.route.as_deref(),
            Some(&["127.0.0.1:7001".to_string(), "127.0.0.1:7002".to_string(),
                   "127.0.0.1:7003".to_string()][..])
        );
        assert_eq!(options.replicas, 3);
        assert_eq!(options.shard_timeout, std::time::Duration::from_millis(250));

        assert!(parse_args(&args(&["--route", " , "])).is_err());
        assert_eq!(parse_args(&args(&["--replicas", "0"])).unwrap().replicas, 1);
        assert_eq!(
            parse_args(&args(&["--shard-timeout", "0"])).unwrap().shard_timeout,
            std::time::Duration::from_millis(1),
            "--shard-timeout 0 clamps to 1ms"
        );
    }
}
