//! The epoll event loop behind `pplxd --io epoll` (Linux only).
//!
//! One reactor thread multiplexes every client socket through a
//! level-triggered epoll set, drives one sans-IO [`Conn`] state machine per
//! connection, and dispatches parsed commands to a fixed worker pool over
//! the bounded MPMC [`BoundedQueue`].  Workers report results through a
//! completion list and an `eventfd` wakeup; the reactor renders them back
//! out strictly in request order ([`Conn::complete`] owns the ordering).
//!
//! Compared to the thread-per-client fallback this buys:
//!
//! * **scalability** — thousands of idle connections cost one epoll
//!   registration each, not a parked thread;
//! * **pipelining** — a client may stream many requests without waiting;
//!   a whole pipelined window crosses the worker queue as one batch (one
//!   queue handoff and one wakeup instead of one per command) and its
//!   responses leave in few large `write`s instead of one flush per
//!   request.  Batches execute serially per connection — one in flight at
//!   a time — so a pipelined `LOADTERMS d …; QUERY d …` burst is
//!   sequentially consistent with itself while distinct connections
//!   spread across the worker pool;
//! * **backpressure** — when a connection exceeds its write high-water
//!   mark or pipeline cap ([`Conn::wants_read`]), the reactor deregisters
//!   its read interest: the kernel receive buffer and the peer's send
//!   call absorb the excess, not daemon memory.
//!
//! The syscall surface is deliberately tiny — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, `read`, `write`, `close` via hand-rolled
//! `extern "C"` bindings — everything else goes through the std net types
//! with `set_nonblocking(true)`.
//!
//! # Shutdown
//!
//! On `SHUTDOWN` the reactor stops reading every connection, keeps
//! accepting only to answer `ERR shutting down`, finishes the in-flight
//! requests, flushes every response, then closes all sockets and joins the
//! workers.  (The thread-per-client mode instead keeps serving existing
//! clients until they quit; both answer late-racing clients, never drop
//! them silently.)
//!
//! This module is the only place in the workspace allowed to contain
//! `unsafe` (every other crate is `#![forbid(unsafe_code)]`); each unsafe
//! block carries a `// SAFETY:` justification, enforced by `xpath-lint`.
#![deny(unsafe_op_in_unsafe_fn)]

use crate::protocol::{execute_command, Command, Conn, ConnEvent};
use crate::queue::BoundedQueue;
use crate::server::{classify_accept_error, AcceptDisposition, ACCEPT_BACKOFF};
use crate::Corpus;
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Arc;
use xpath_sync::Mutex;

/// Minimal raw bindings for the reactor's syscall surface.
mod sys {
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    /// `struct epoll_event`.  On x86-64 the kernel ABI packs it (no 4-byte
    /// hole between `events` and `data`); other architectures use natural
    /// alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32)
            -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// Owned epoll instance.
struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes a flag word and touches no caller
        // memory; a negative return is checked below before the fd is used.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events, data: token };
        // SAFETY: `ev` is a live, properly initialised EpollEvent for the
        // duration of the call; the kernel only reads it.  `self.fd` is the
        // epoll fd this struct owns (valid until Drop).
        if unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness for at most `timeout_ms` (`-1`: forever); retries
    /// EINTR.  Returns the number of events filled into `events` — zero on
    /// timeout.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the out-pointer and length name exactly the caller's
            // `events` slice, which outlives the call; the kernel writes at
            // most `events.len()` entries.  `self.fd` is owned and open.
            let n = unsafe {
                sys::epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` was returned by epoll_create1, is owned solely
        // by this struct, and is closed exactly once (here).
        unsafe { sys::close(self.fd) };
    }
}

/// Owned eventfd used as the worker→reactor wakeup.
struct EventFd {
    fd: RawFd,
}

impl EventFd {
    fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes an initial count and flags, touching no
        // caller memory; a negative return is checked before the fd is used.
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// Bump the counter; wakes a reactor blocked in `epoll_wait`.
    fn signal(&self) {
        let one: u64 = 1;
        // EAGAIN (counter saturated) still leaves the fd readable, which is
        // all a wakeup needs; any other failure has no recovery here.
        // SAFETY: the pointer names the local `one` (8 valid readable
        // bytes, the exact length passed); `self.fd` is owned and open.
        unsafe { sys::write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Reset the counter so the next `signal` re-arms the readable state.
    fn drain(&self) {
        let mut counter: u64 = 0;
        // SAFETY: the pointer names the local `counter` (8 valid writable
        // bytes, the exact length passed); `self.fd` is owned and open.
        unsafe { sys::read(self.fd, (&mut counter as *mut u64).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `self.fd` was returned by eventfd, is owned solely by
        // this struct, and is closed exactly once (here).
        unsafe { sys::close(self.fd) };
    }
}

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Events drained per `epoll_wait` call.
const EVENT_BATCH: usize = 256;
/// Socket read chunk.
const READ_CHUNK: usize = 16 << 10;

/// One unit of work for the pool: a batch of consecutive pipelined
/// commands from one connection, executed serially in request order.
/// Batching is both the correctness and the throughput story: one batch in
/// flight per connection keeps a pipelined `LOADTERMS d …; QUERY d …`
/// burst sequentially consistent with itself (one worker runs it in
/// order), and a whole request window crosses the queue in a single
/// handoff instead of one mutex/condvar round trip per command.  Distinct
/// connections still spread across the pool.
struct Job {
    conn_id: u64,
    commands: Vec<(u64, Command)>,
}

/// A finished batch on its way back to the reactor.
struct Completion {
    conn_id: u64,
    results: Vec<(u64, Result<Vec<String>, String>)>,
}

/// One connected client: its socket, protocol state machine, the epoll
/// interest currently registered for it, and the dispatch bookkeeping that
/// keeps one batch in flight.
struct Client {
    stream: TcpStream,
    conn: Conn,
    interest: u32,
    /// Parsed commands not yet handed to the workers (a batch from this
    /// connection is still executing).
    backlog: Vec<(u64, Command)>,
    /// A dispatched batch has not completed yet.
    executing: bool,
    /// Last observed progress — bytes read, a completion applied, or
    /// response bytes flushed.  Connections quiet past the idle window
    /// (and with nothing in flight) are dropped.
    last_activity: std::time::Instant,
}

impl Client {
    fn new(stream: TcpStream, max_line: usize) -> Client {
        Client {
            stream,
            conn: Conn::new(max_line),
            interest: sys::EPOLLIN | sys::EPOLLRDHUP,
            backlog: Vec::new(),
            executing: false,
            last_activity: std::time::Instant::now(),
        }
    }

    /// Is this connection idle (no progress, nothing in flight) past the
    /// `idle` window?  A connection with an executing batch or in-flight
    /// pipeline slots is *working*, however long that takes.
    fn idle_expired(&self, now: std::time::Instant, idle: std::time::Duration) -> bool {
        !self.executing
            && self.conn.in_flight() == 0
            && now.duration_since(self.last_activity) >= idle
    }

    /// Hand the whole backlog to the worker pool as one batch, unless one
    /// is already in flight (its completion triggers the next dispatch).
    /// The backlog is bounded by [`Conn`]'s pipeline cap.  `work.push` may
    /// block at queue capacity — that is the global backpressure bound,
    /// and workers never block on the reactor, so it cannot deadlock.
    fn dispatch_ready(&mut self, id: u64, work: &BoundedQueue<Job>) {
        if self.executing || self.backlog.is_empty() {
            return;
        }
        self.executing = true;
        work.push(Job {
            conn_id: id,
            commands: std::mem::take(&mut self.backlog),
        });
    }

    fn desired_interest(&self) -> u32 {
        let mut events = 0;
        if self.conn.wants_read() {
            events |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.conn.has_output() {
            events |= sys::EPOLLOUT;
        }
        events
    }
}

/// Serve the corpus over `listener` with the epoll reactor: `workers`
/// command-execution threads behind a bounded queue, pipelined in-order
/// responses, per-connection backpressure.  Connections with no progress
/// for `idle_timeout` (and nothing in flight) are answered `ERR idle
/// timeout` and dropped.  Returns after a client sends `SHUTDOWN` and
/// every in-flight request has been answered and flushed.
pub fn serve_epoll(
    listener: TcpListener,
    corpus: Arc<Corpus>,
    max_line: usize,
    workers: usize,
    idle_timeout: Option<std::time::Duration>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let wake = EventFd::new()?;
    epoll.add(listener.as_raw_fd(), sys::EPOLLIN, LISTENER_TOKEN)?;
    epoll.add(wake.fd, sys::EPOLLIN, WAKE_TOKEN)?;

    let workers = workers.max(1);
    // At most one batch per connection is ever in flight, so queue depth is
    // bounded by the connection count anyway; a roomy cap keeps the reactor
    // from blocking on `push` under thousands of connections (which would
    // stall reads and writes for everyone), while still bounding memory if
    // the pool falls behind a huge connection herd.
    let work: BoundedQueue<Job> = BoundedQueue::new((workers * 4).max(4096));
    let completions: Mutex<Vec<Completion>> = Mutex::new(Vec::new());

    let mut clients: HashMap<u64, Client> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut shutting_down = false;
    let mut outcome: io::Result<()> = Ok(());

    xpath_sync::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(job) = work.pop() {
                    let results = job
                        .commands
                        .into_iter()
                        .map(|(seq, command)| (seq, execute_command(&corpus, &command)))
                        .collect();
                    let was_empty = {
                        let mut done = completions
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        let was_empty = done.is_empty();
                        done.push(Completion {
                            conn_id: job.conn_id,
                            results,
                        });
                        was_empty
                    };
                    // One wakeup per drain is enough: the reactor takes the
                    // whole list, so only the transition from empty needs a
                    // signal — under load this coalesces most eventfd writes.
                    if was_empty {
                        wake.signal();
                    }
                }
            });
        }

        let mut events = [sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        'reactor: loop {
            // Sleep until IO, a completion wakeup, or the nearest idle
            // deadline — whichever comes first.  With no idle timeout (or
            // no clients) the wait is unbounded, as before.
            let timeout_ms = match idle_timeout {
                Some(idle) if !clients.is_empty() => {
                    let now = std::time::Instant::now();
                    let nearest = clients
                        .values()
                        .map(|c| {
                            (c.last_activity + idle).saturating_duration_since(now)
                        })
                        .min()
                        .unwrap_or_default();
                    // +1 rounds up so a wakeup lands past the deadline, and
                    // the 10ms floor keeps a herd of nearly-expired idlers
                    // from degenerating into a busy loop.
                    (nearest.as_millis() as i64 + 1).clamp(10, i32::MAX as i64) as i32
                }
                _ => -1,
            };
            let ready = match epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(e) => {
                    outcome = Err(e);
                    break 'reactor;
                }
            };
            // Connections whose buffers or interest may have changed this
            // iteration; flushed and re-registered below.
            let mut touched: HashSet<u64> = HashSet::new();

            for ev in events.iter().take(ready) {
                let ev = *ev; // copy out of the (possibly packed) array slot
                match ev.data {
                    LISTENER_TOKEN => loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if shutting_down {
                                    let mut stream = stream;
                                    let _ = stream.write_all(b"ERR shutting down\n");
                                    continue; // drop: closed cleanly after the answer
                                }
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                // Small latency-bound responses: Nagle +
                                // delayed ACK would stall pipelined clients.
                                let _ = stream.set_nodelay(true);
                                let id = next_id;
                                next_id += 1;
                                let client = Client::new(stream, max_line);
                                if epoll
                                    .add(client.stream.as_raw_fd(), client.interest, id)
                                    .is_ok()
                                {
                                    clients.insert(id, client);
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) => match classify_accept_error(&e) {
                                AcceptDisposition::Retry => continue,
                                AcceptDisposition::RetryAfterSleep => {
                                    // Back off; level-triggered epoll will
                                    // re-report the pending connection.
                                    std::thread::sleep(ACCEPT_BACKOFF);
                                    break;
                                }
                                AcceptDisposition::Fatal => {
                                    outcome = Err(e);
                                    break 'reactor;
                                }
                            },
                        }
                    },
                    WAKE_TOKEN => wake.drain(),
                    id => {
                        let Some(client) = clients.get_mut(&id) else {
                            continue; // already closed this iteration
                        };
                        touched.insert(id);
                        let readable = ev.events
                            & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP)
                            != 0;
                        if !readable {
                            continue; // pure EPOLLOUT: flushed below
                        }
                        let mut dead = false;
                        let mut buf = [0u8; READ_CHUNK];
                        let mut parsed: Vec<ConnEvent> = Vec::new();
                        loop {
                            match client.stream.read(&mut buf) {
                                Ok(0) => {
                                    dead = true;
                                    break;
                                }
                                Ok(n) => {
                                    client.last_activity = std::time::Instant::now();
                                    parsed.extend(client.conn.feed(&buf[..n]));
                                    if !client.conn.wants_read() {
                                        break; // backpressure: leave the rest in the kernel
                                    }
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                                Err(_) => {
                                    dead = true;
                                    break;
                                }
                            }
                        }
                        if dead {
                            // Pending completions for this id are dropped on
                            // arrival; the conn state dies with the socket.
                            epoll.delete(client.stream.as_raw_fd()).ok();
                            clients.remove(&id);
                            touched.remove(&id);
                            // Commands already parsed from a now-dead client
                            // are not worth executing.
                            continue;
                        }
                        for event in parsed {
                            match event {
                                ConnEvent::Execute { seq, command } => {
                                    client.backlog.push((seq, command));
                                }
                                ConnEvent::ShutdownRequested => {
                                    shutting_down = true;
                                }
                            }
                        }
                        client.dispatch_ready(id, &work);
                    }
                }
            }

            // Apply whatever the workers finished, regardless of which
            // event woke us.
            let done = std::mem::take(
                &mut *completions
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            );
            for completion in done {
                if let Some(client) = clients.get_mut(&completion.conn_id) {
                    for (seq, result) in completion.results {
                        client.conn.complete(seq, result);
                    }
                    client.executing = false;
                    client.last_activity = std::time::Instant::now();
                    client.dispatch_ready(completion.conn_id, &work);
                    touched.insert(completion.conn_id);
                }
            }

            // Idle sweep: quiet connections with nothing in flight are told
            // why and dropped.  Never triggered by slow *work* — an
            // executing batch or occupied pipeline slot counts as activity.
            if let Some(idle) = idle_timeout {
                let now = std::time::Instant::now();
                let expired: Vec<u64> = clients
                    .iter()
                    .filter(|(_, c)| c.idle_expired(now, idle))
                    .map(|(&id, _)| id)
                    .collect();
                for id in expired {
                    if let Some(mut client) = clients.remove(&id) {
                        // Best effort: the kernel buffer almost always has
                        // room for one line; a blocked peer just misses the
                        // explanation.
                        let _ = client
                            .stream
                            .write(b"ERR idle timeout, closing connection\n");
                        epoll.delete(client.stream.as_raw_fd()).ok();
                        touched.remove(&id);
                    }
                }
            }

            // Entering shutdown: stop reading everyone; in-flight requests
            // finish, responses flush, then the connections close.
            if shutting_down {
                for (&id, client) in clients.iter_mut() {
                    client.conn.begin_close();
                    touched.insert(id);
                }
            }

            // Flush + interest maintenance for every touched connection.
            for id in touched {
                let Some(client) = clients.get_mut(&id) else {
                    continue;
                };
                let mut dead = false;
                while client.conn.has_output() {
                    match client.stream.write(client.conn.pending_output()) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => {
                            client.conn.advance_output(n);
                            client.last_activity = std::time::Instant::now();
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                if dead || client.conn.is_finished() {
                    epoll.delete(client.stream.as_raw_fd()).ok();
                    clients.remove(&id);
                    continue;
                }
                let desired = client.desired_interest();
                if desired != client.interest
                    && epoll
                        .modify(client.stream.as_raw_fd(), desired, id)
                        .is_ok()
                {
                    client.interest = desired;
                }
            }

            if shutting_down && clients.is_empty() {
                break 'reactor;
            }
        }

        // Unblock and retire the workers; leftover queued jobs (possible
        // only on an error exit) drain harmlessly into dropped completions.
        work.close();
    });
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::bind;
    use std::io::{BufRead, BufReader, BufWriter};

    fn spawn_epoll(corpus: Arc<Corpus>) -> (std::net::SocketAddr, std::thread::JoinHandle<io::Result<()>>) {
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let handle =
            std::thread::spawn(move || serve_epoll(listener, corpus, 1 << 20, 2, None));
        (addr, handle)
    }

    fn read_response<R: BufRead>(reader: &mut R) -> (String, Vec<String>) {
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let status = status.trim().to_string();
        let n = status
            .strip_prefix("OK ")
            .map(|n| n.parse::<usize>().unwrap())
            .unwrap_or(0);
        let mut payload = Vec::with_capacity(n);
        for _ in 0..n {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            payload.push(line.trim_end().to_string());
        }
        (status, payload)
    }

    /// The epoll loop speaks the same protocol as the threads loop,
    /// including pipelined bursts answered in request order.
    #[test]
    fn epoll_round_trip_with_pipelining() {
        let corpus = Arc::new(Corpus::new());
        let (addr, server) = spawn_epoll(corpus);

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // A pipelined burst written in one flush: responses must come back
        // in request order.
        write!(
            writer,
            "LOADTERMS d1 r(a(b))\nQUERY d1 descendant::b[. is $x] -> x\nMUTATE d1 INSERT 1 1 b\nQUERY d1 descendant::b[. is $x] -> x\nSTATS\nBOGUS\nEVICT d1\n"
        )
        .unwrap();
        writer.flush().unwrap();

        let (status, payload) = read_response(&mut reader);
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "loaded d1 nodes=3 documents=1");
        let (status, payload) = read_response(&mut reader);
        assert_eq!(status, "OK 2");
        assert_eq!(payload, vec!["vars=x tuples=1", "b#2"]);
        // The pipelined MUTATE lands between the two QUERYs, in order.
        let (status, payload) = read_response(&mut reader);
        assert_eq!(status, "OK 1");
        assert!(
            payload[0].starts_with("mutated d1 kind=insert nodes=4 epoch=1"),
            "{payload:?}"
        );
        let (status, payload) = read_response(&mut reader);
        assert_eq!(status, "OK 3");
        assert_eq!(payload[0], "vars=x tuples=2");
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, "OK 14");
        let (status, _) = read_response(&mut reader);
        assert!(status.starts_with("ERR unknown command"), "{status}");
        let (status, payload) = read_response(&mut reader);
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "evicted=true");

        // A second concurrent client, then a clean SHUTDOWN.
        let stream2 = TcpStream::connect(addr).unwrap();
        let mut reader2 = BufReader::new(stream2.try_clone().unwrap());
        let mut writer2 = BufWriter::new(stream2);
        writeln!(writer2, "QUERY d1 descendant::b[. is $x] -> x").unwrap();
        writer2.flush().unwrap();
        let (status2, _) = read_response(&mut reader2);
        assert_eq!(status2, "OK 3", "evicted sessions must rebuild");
        writeln!(writer2, "QUIT").unwrap();
        writer2.flush().unwrap();
        let (status2, payload2) = read_response(&mut reader2);
        assert_eq!(status2, "OK 1");
        assert_eq!(payload2[0], "bye");

        writeln!(writer, "SHUTDOWN").unwrap();
        writer.flush().unwrap();
        let (status, payload) = read_response(&mut reader);
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "bye");
        server.join().unwrap().unwrap();
    }

    /// Overlong lines answer `ERR line too long` in-order and the
    /// connection keeps serving (same contract as the threads loop).
    #[test]
    fn epoll_overlong_lines_stay_in_sync() {
        let corpus = Arc::new(Corpus::new());
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let server = std::thread::spawn(move || serve_epoll(listener, corpus, 64, 2, None));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writeln!(writer, "LOAD big <bib>{}</bib>", "x".repeat(1024)).unwrap();
        writeln!(writer, "LOADTERMS d a(b)").unwrap();
        writer.flush().unwrap();

        let (status, _) = read_response(&mut reader);
        assert!(status.starts_with("ERR line too long"), "{status}");
        let (status, payload) = read_response(&mut reader);
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "loaded d nodes=2 documents=1");

        writeln!(writer, "SHUTDOWN").unwrap();
        writer.flush().unwrap();
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, "OK 1");
        server.join().unwrap().unwrap();
    }

    /// A client that connects while the daemon is shutting down is told so
    /// instead of being silently dropped.
    #[test]
    fn epoll_answers_clients_racing_shutdown() {
        let corpus = Arc::new(Corpus::new());
        let (addr, server) = spawn_epoll(corpus);

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writeln!(writer, "SHUTDOWN").unwrap();
        writer.flush().unwrap();

        // Race a late connection against the shutdown drain.  Whichever
        // way the race goes, the invariant is: a connection that is
        // accepted gets `ERR shutting down`, never silence.
        let late = TcpStream::connect(addr);
        let (status, payload) = read_response(&mut reader);
        assert_eq!(status, "OK 1");
        assert_eq!(payload[0], "bye");
        if let Ok(late) = late {
            let mut late_reader = BufReader::new(late);
            let mut line = String::new();
            if late_reader.read_line(&mut line).unwrap_or(0) > 0 {
                assert_eq!(line.trim(), "ERR shutting down");
            }
        }
        server.join().unwrap().unwrap();
    }

    /// A connect-and-stall client is answered `ERR idle timeout` and
    /// dropped without disturbing an active client — before this, the
    /// reactor's infinite `epoll_wait` let a silent connection hold its
    /// slot forever.
    #[test]
    fn epoll_drops_idle_connections() {
        let corpus = Arc::new(Corpus::new());
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let server = std::thread::spawn(move || {
            serve_epoll(
                listener,
                corpus,
                1 << 20,
                2,
                Some(std::time::Duration::from_millis(100)),
            )
        });

        // The staller: connects, says nothing.
        let staller = TcpStream::connect(addr).unwrap();
        staller
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();

        // An active client keeps a request/response turn going.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writeln!(writer, "LOADTERMS d a(b)").unwrap();
        writer.flush().unwrap();
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, "OK 1");

        // The staller is told why, then sees EOF.
        let mut staller_reader = BufReader::new(staller);
        let mut line = String::new();
        staller_reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR idle timeout"), "got: {line:?}");
        let mut rest = String::new();
        assert_eq!(staller_reader.read_line(&mut rest).unwrap(), 0);

        // The daemon still serves: a fresh connection queries and shuts
        // down cleanly.
        let stream2 = TcpStream::connect(addr).unwrap();
        let mut reader2 = BufReader::new(stream2.try_clone().unwrap());
        let mut writer2 = BufWriter::new(stream2);
        writeln!(writer2, "QUERY d descendant::b[. is $x] -> x\nSHUTDOWN").unwrap();
        writer2.flush().unwrap();
        let (status2, _) = read_response(&mut reader2);
        assert_eq!(status2, "OK 2");
        let (status2, _) = read_response(&mut reader2);
        assert_eq!(status2, "OK 1");
        server.join().unwrap().unwrap();
    }
}
