//! The sans-IO half of the `pplxd` wire protocol.
//!
//! Everything in this module is transport-agnostic: [`parse_command`] turns
//! a request line into a [`Command`], [`execute_command`] runs one command
//! against a [`Corpus`] and returns payload lines, [`render_response`]
//! serialises a result into wire bytes, and [`Conn`] is a per-connection
//! state machine that is *fed raw bytes* and yields parsed commands while
//! queueing rendered response bytes — framing, pipelining, response
//! ordering and backpressure with no sockets in sight.
//!
//! The two IO layers sit on top:
//!
//! * [`crate::server`] — the portable thread-per-client loop (`--io
//!   threads`), which uses the parse/execute/render functions directly;
//! * [`crate::reactor`] — the Linux epoll event loop (`--io epoll`), which
//!   drives one [`Conn`] per client.
//!
//! # Pipelining and response ordering
//!
//! A client may write many request lines without waiting for answers.
//! [`Conn::feed`] assigns each parsed request a sequence number and keeps a
//! slot for it; [`Conn::complete`] may be called in *any* order (workers
//! finish when they finish), but response bytes are released strictly in
//! request order — a slow `QUERYALL` holds back the bytes of a later cheap
//! `STATS`, never reorders them.
//!
//! # Backpressure
//!
//! [`Conn::wants_read`] turns false while the connection has more than
//! [`DEFAULT_MAX_PIPELINE`] requests in flight or more than the write
//! high-water mark of buffered response bytes.  The reactor then stops
//! reading that socket: the kernel receive buffer and, eventually, the
//! client's send call absorb the excess instead of daemon memory.

use crate::{Corpus, CorpusError, DocEdit};
use std::collections::VecDeque;
use xpath_tree::{EditKind, Tree};

// The wire encoding itself (status-line framing) lives in `xpath_wire`,
// shared with the router and the `pplx --connect` client; re-exported here
// so the serving loops keep one import path for the whole protocol.
pub use xpath_wire::{parse_status, render_response};

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `LOAD <name> <xml>` — ingest an XML document.
    Load {
        /// Document name.
        name: String,
        /// The document, as one line of XML.
        xml: String,
    },
    /// `LOADTERMS <name> <terms>` — ingest a term-syntax document.
    LoadTerms {
        /// Document name.
        name: String,
        /// The document in compact term syntax.
        terms: String,
    },
    /// `QUERY <name> <expr> [-> vars]` — answer over one document.
    Query {
        /// Target document.
        name: String,
        /// Core XPath 2.0 source.
        query: String,
        /// Output variables.
        vars: Vec<String>,
    },
    /// `QUERYALL <expr> [-> vars]` — answer over every document.
    QueryAll {
        /// Core XPath 2.0 source.
        query: String,
        /// Output variables.
        vars: Vec<String>,
    },
    /// `MUTATE <name> INSERT|DELETE|RELABEL …` — edit a live document.
    Mutate {
        /// Target document.
        name: String,
        /// The parsed edit operation.
        spec: MutateSpec,
    },
    /// `STATS` — report the corpus counters.
    Stats,
    /// `EVICT [<name>]` — drop one session (or all sessions).
    Evict(Option<String>),
    /// `QUIT` — close this connection.
    Quit,
    /// `SHUTDOWN` — stop the daemon.
    Shutdown,
}

/// One edit operation of a `MUTATE` request.
///
/// The numeric arguments are validated at parse time (a non-numeric node id
/// answers `ERR usage: …` without touching the corpus); the `INSERT` subtree
/// stays as term-syntax text until execution, so [`Command`] remains cheap
/// to clone and compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateSpec {
    /// Splice a subtree under `parent` before its `index`-th child.
    Insert {
        /// Preorder id of the parent node.
        parent: u32,
        /// Child position to insert at (`0..=child_count`).
        index: usize,
        /// The subtree, in compact term syntax.
        terms: String,
    },
    /// Remove the subtree rooted at `node`.
    Delete {
        /// Preorder id of the subtree root.
        node: u32,
    },
    /// Rename one node, keeping the tree shape.
    Relabel {
        /// Preorder id of the node.
        node: u32,
        /// The new label.
        label: String,
    },
}

/// Default cap on one request line, in bytes (16 MiB).
///
/// `LOAD` carries a whole XML document on one line, so the cap is generous —
/// but without *some* bound a malicious (or just confused) client can feed
/// an endless newline-free stream and grow the connection's line buffer
/// until the daemon is OOM-killed.  Configurable per server (`pplxd
/// --max-line`).
pub const DEFAULT_MAX_LINE: usize = 16 << 20;

/// Default write-buffer high-water mark, in bytes (256 KiB).  A connection
/// holding more rendered-but-unsent response bytes than this stops being
/// read until the peer drains it.
pub const DEFAULT_HIGH_WATER: usize = 256 << 10;

/// Default cap on in-flight pipelined requests per connection.  Reading
/// pauses (backpressure) rather than queueing more work than this.
pub const DEFAULT_MAX_PIPELINE: usize = 256;

/// Split an optional trailing ` -> v1,v2` variable suffix off a query
/// expression.
///
/// Only a *whitespace-delimited* `->` token introduces the suffix: the last
/// `->` in the expression that has whitespace on both sides (or whitespace
/// before and end-of-string after).  An arrow embedded in the query text —
/// `child::a->b` — is part of the query, not a separator; `rsplit_once`
/// used to mis-split exactly that form and silently drop the query's tail
/// into the variable list.
fn split_vars(expr: &str) -> (String, Vec<String>) {
    let expr = expr.trim();
    let bytes = expr.as_bytes();
    let mut search_end = expr.len();
    while let Some(pos) = expr[..search_end].rfind("->") {
        let delimited_before = pos > 0 && bytes[pos - 1].is_ascii_whitespace();
        let after = pos + 2;
        let delimited_after = after == expr.len() || bytes[after].is_ascii_whitespace();
        if delimited_before && delimited_after {
            let vars = expr[after..]
                .split(',')
                .map(|s| s.trim().trim_start_matches('$').to_string())
                .filter(|s| !s.is_empty())
                .collect();
            return (expr[..pos].trim().to_string(), vars);
        }
        search_end = pos;
    }
    (expr.to_string(), Vec::new())
}

/// Parse one request line into a [`Command`].
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (line, ""),
    };
    let two_args = |rest: &str, usage: &str| -> Result<(String, String), String> {
        rest.split_once(char::is_whitespace)
            .map(|(a, b)| (a.to_string(), b.trim().to_string()))
            .filter(|(a, b)| !a.is_empty() && !b.is_empty())
            .ok_or_else(|| format!("usage: {usage}"))
    };
    match verb.to_ascii_uppercase().as_str() {
        "LOAD" => {
            let (name, xml) = two_args(rest, "LOAD <name> <xml>")?;
            Ok(Command::Load { name, xml })
        }
        "LOADTERMS" => {
            let (name, terms) = two_args(rest, "LOADTERMS <name> <terms>")?;
            Ok(Command::LoadTerms { name, terms })
        }
        "QUERY" => {
            let (name, expr) = two_args(rest, "QUERY <name> <expr> [-> vars]")?;
            let (query, vars) = split_vars(&expr);
            Ok(Command::Query { name, query, vars })
        }
        "QUERYALL" => {
            if rest.is_empty() {
                return Err("usage: QUERYALL <expr> [-> vars]".into());
            }
            let (query, vars) = split_vars(rest);
            Ok(Command::QueryAll { query, vars })
        }
        "MUTATE" => {
            const USAGE: &str =
                "MUTATE <name> INSERT <parent> <index> <terms> | DELETE <node> | RELABEL <node> <label>";
            let usage = || format!("usage: {USAGE}");
            let (name, rest) = two_args(rest, USAGE)?;
            let (op, args) = match rest.split_once(char::is_whitespace) {
                Some((op, args)) => (op.to_string(), args.trim().to_string()),
                None => (rest.clone(), String::new()),
            };
            let parse_id = |s: &str| -> Result<u32, String> {
                s.parse::<u32>()
                    .map_err(|_| format!("invalid node id '{s}': {}", usage()))
            };
            let spec = match op.to_ascii_uppercase().as_str() {
                "INSERT" => {
                    let (parent, rest) = args.split_once(char::is_whitespace).ok_or_else(usage)?;
                    let (index, terms) =
                        rest.trim().split_once(char::is_whitespace).ok_or_else(usage)?;
                    let terms = terms.trim();
                    if terms.is_empty() {
                        return Err(usage());
                    }
                    MutateSpec::Insert {
                        parent: parse_id(parent)?,
                        index: index
                            .parse::<usize>()
                            .map_err(|_| format!("invalid child index '{index}': {}", usage()))?,
                        terms: terms.to_string(),
                    }
                }
                "DELETE" => {
                    if args.is_empty() || args.contains(char::is_whitespace) {
                        return Err(usage());
                    }
                    MutateSpec::Delete { node: parse_id(&args)? }
                }
                "RELABEL" => {
                    let (node, label) = args.split_once(char::is_whitespace).ok_or_else(usage)?;
                    let label = label.trim();
                    if label.is_empty() {
                        return Err(usage());
                    }
                    MutateSpec::Relabel {
                        node: parse_id(node)?,
                        label: label.to_string(),
                    }
                }
                _ => return Err(usage()),
            };
            Ok(Command::Mutate { name, spec })
        }
        "STATS" => Ok(Command::Stats),
        "EVICT" => Ok(Command::Evict(if rest.is_empty() {
            None
        } else {
            Some(rest.to_string())
        })),
        "QUIT" => Ok(Command::Quit),
        "SHUTDOWN" => Ok(Command::Shutdown),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Render one answer tuple as `label#preorder,label#preorder,…`.
fn render_tuple(tree: &Tree, tuple: &[xpath_tree::NodeId]) -> String {
    tuple
        .iter()
        .map(|&n| format!("{}#{}", tree.label_str(n), tree.preorder(n)))
        .collect::<Vec<_>>()
        .join(",")
}

fn corpus_err(e: &CorpusError) -> String {
    e.to_string().replace('\n', " | ")
}

/// Payload lines of one `QUERY` answer: a header plus one line per tuple
/// (or a `satisfiable=` header for arity-0 queries).
fn answer_lines(tree: &Tree, vars: &[String], answers: &ppl_xpath::AnswerSet) -> Vec<String> {
    let mut lines = Vec::with_capacity(answers.len() + 1);
    if vars.is_empty() {
        lines.push(format!("satisfiable={}", !answers.is_empty()));
        return lines;
    }
    lines.push(format!("vars={} tuples={}", vars.join(","), answers.len()));
    for tuple in answers.tuples() {
        lines.push(render_tuple(tree, tuple));
    }
    lines
}

/// Execute one command against the corpus.  Returns the payload lines, or
/// an error message for an `ERR` response.  `Quit`/`Shutdown` are handled
/// by the connection layer, not here.
///
/// `QUERYALL` never fails as a whole: each document reports its own
/// outcome, a healthy `doc=<name> …` block or a single `doc=<name>
/// error=<msg>` line, so one failing document no longer silences every
/// other answer.
pub fn execute_command(corpus: &Corpus, command: &Command) -> Result<Vec<String>, String> {
    match command {
        Command::Load { name, xml } => {
            let nodes = corpus.insert_xml(name, xml).map_err(|e| corpus_err(&e))?;
            Ok(vec![format!(
                "loaded {name} nodes={nodes} documents={}",
                corpus.len()
            )])
        }
        Command::LoadTerms { name, terms } => {
            let nodes = corpus.insert_terms(name, terms).map_err(|e| corpus_err(&e))?;
            Ok(vec![format!(
                "loaded {name} nodes={nodes} documents={}",
                corpus.len()
            )])
        }
        Command::Query { name, query, vars } => {
            let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
            // answer_tagged carries the tree snapshot the node ids index —
            // looking the document up again here would race with a
            // concurrent LOAD replacing it.
            let doc = corpus
                .answer_tagged(name, query, &var_refs)
                .map_err(|e| corpus_err(&e))?;
            Ok(answer_lines(&doc.tree, vars, &doc.answers))
        }
        Command::QueryAll { query, vars } => {
            let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
            let per_doc = corpus.answer_all_detailed(query, &var_refs);
            let mut lines = Vec::new();
            for (name, result) in &per_doc {
                let doc = match result {
                    Ok(doc) => doc,
                    Err(e) => {
                        lines.push(format!("doc={name} error={}", corpus_err(e)));
                        continue;
                    }
                };
                if vars.is_empty() {
                    lines.push(format!(
                        "doc={} satisfiable={}",
                        doc.name,
                        !doc.answers.is_empty()
                    ));
                    continue;
                }
                lines.push(format!("doc={} tuples={}", doc.name, doc.answers.len()));
                for tuple in doc.answers.tuples() {
                    lines.push(render_tuple(&doc.tree, tuple));
                }
            }
            Ok(lines)
        }
        Command::Mutate { name, spec } => {
            let edit = match spec {
                MutateSpec::Insert { parent, index, terms } => DocEdit::Insert {
                    parent: *parent,
                    index: *index,
                    subtree: Tree::from_terms(terms).map_err(|e| e.to_string())?,
                },
                MutateSpec::Delete { node } => DocEdit::Delete { node: *node },
                MutateSpec::Relabel { node, label } => DocEdit::Relabel {
                    node: *node,
                    label: label.clone(),
                },
            };
            let outcome = corpus.mutate(name, &edit).map_err(|e| corpus_err(&e))?;
            let kind = match outcome.kind {
                EditKind::Insert => "insert",
                EditKind::Delete => "delete",
                EditKind::Relabel => "relabel",
            };
            Ok(vec![format!(
                "mutated {name} kind={kind} nodes={} epoch={} rows_invalidated={} mode={}",
                outcome.nodes,
                outcome.epoch,
                outcome.stats.rows_invalidated,
                if outcome.incremental { "incremental" } else { "full" },
            )])
        }
        Command::Stats => {
            let stats = corpus.stats();
            Ok(vec![
                format!("documents={}", stats.documents),
                format!("live_sessions={}", stats.live_sessions),
                format!("pool_bytes={}", stats.pool_bytes),
                format!(
                    "memory_budget={}",
                    corpus
                        .config()
                        .memory_budget
                        .map_or("unbounded".to_string(), |b| b.to_string())
                ),
                format!("admissions={}", stats.admissions),
                format!("rebuilds={}", stats.rebuilds),
                format!("cache_evictions={}", stats.cache_evictions),
                format!("session_evictions={}", stats.session_evictions),
                format!("plan_hits={}", stats.plan_hits),
                format!("plan_misses={}", stats.plan_misses),
                format!("edits={}", stats.edits),
                format!("edits_incremental={}", stats.edits_incremental),
                format!("edits_full={}", stats.edits_full),
                format!("edit_rows_invalidated={}", stats.edit_rows_invalidated),
            ])
        }
        Command::Evict(Some(name)) => Ok(vec![format!("evicted={}", corpus.evict(name))]),
        Command::Evict(None) => Ok(vec![format!("evicted={}", corpus.evict_all())]),
        Command::Quit | Command::Shutdown => Ok(vec!["bye".to_string()]),
    }
}

/// What [`Conn::feed`] asks the IO driver to do.
#[derive(Debug, PartialEq, Eq)]
pub enum ConnEvent {
    /// Run this command (on a worker) and report back via
    /// [`Conn::complete`] with the same sequence number.
    Execute {
        /// Response slot to complete.
        seq: u64,
        /// The parsed command.
        command: Command,
    },
    /// The client sent `SHUTDOWN`: its response is already queued; the
    /// driver should begin daemon shutdown.
    ShutdownRequested,
}

/// Sans-IO state machine for one client connection.
///
/// The IO driver feeds raw bytes in ([`Conn::feed`]), executes the returned
/// commands however it likes, reports results back ([`Conn::complete`]) and
/// drains wire bytes out ([`Conn::pending_output`] /
/// [`Conn::advance_output`]).  The `Conn` owns framing (bounded lines),
/// parsing, response ordering under pipelining, and the backpressure
/// accounting ([`Conn::wants_read`]).  Protocol errors — overlong lines,
/// parse failures — complete their response slot immediately and never
/// reach the driver.
#[derive(Debug)]
pub struct Conn {
    max_line: usize,
    high_water: usize,
    max_pipeline: usize,
    /// Bytes of the current, still-unterminated request line.
    in_buf: Vec<u8>,
    /// Discarding the rest of an overlong line (its error is already queued).
    skipping: bool,
    next_seq: u64,
    /// One slot per in-flight request, in request order; `None` until the
    /// result arrives.
    slots: VecDeque<(u64, Option<Vec<u8>>)>,
    out: Vec<u8>,
    out_pos: usize,
    /// `QUIT`/`SHUTDOWN` seen: ignore further input, close once flushed.
    closing: bool,
}

impl Conn {
    /// A connection with the given request-line cap and default pipelining
    /// limits.
    pub fn new(max_line: usize) -> Conn {
        Conn::with_limits(max_line, DEFAULT_HIGH_WATER, DEFAULT_MAX_PIPELINE)
    }

    /// A connection with explicit write high-water mark and in-flight
    /// pipeline cap (both clamped to at least 1).
    pub fn with_limits(max_line: usize, high_water: usize, max_pipeline: usize) -> Conn {
        Conn {
            max_line: max_line.max(1),
            high_water: high_water.max(1),
            max_pipeline: max_pipeline.max(1),
            in_buf: Vec::new(),
            skipping: false,
            next_seq: 0,
            slots: VecDeque::new(),
            out: Vec::new(),
            out_pos: 0,
            closing: false,
        }
    }

    /// Feed raw bytes from the socket; returns the commands the driver must
    /// execute (plus a shutdown notice, if requested).  Blank lines are
    /// ignored; malformed and overlong lines answer `ERR` without involving
    /// the driver.
    pub fn feed(&mut self, data: &[u8]) -> Vec<ConnEvent> {
        let mut events = Vec::new();
        let mut rest = data;
        while !rest.is_empty() && !self.closing {
            match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let (head, tail) = rest.split_at(pos);
                    rest = &tail[1..];
                    if self.skipping {
                        // Tail of an already-reported overlong line.
                        self.skipping = false;
                    } else if self.in_buf.len() + head.len() > self.max_line {
                        self.overlong();
                    } else {
                        self.in_buf.extend_from_slice(head);
                        let line = std::mem::take(&mut self.in_buf);
                        self.handle_line(&line, &mut events);
                    }
                    self.in_buf.clear();
                }
                None => {
                    if !self.skipping {
                        if self.in_buf.len() + rest.len() > self.max_line {
                            self.overlong();
                            self.skipping = true;
                            self.in_buf.clear();
                        } else {
                            self.in_buf.extend_from_slice(rest);
                        }
                    }
                    break;
                }
            }
        }
        events
    }

    /// Report the result of an executed command.  Completion order is
    /// arbitrary; output bytes are released strictly in request order.
    pub fn complete(&mut self, seq: u64, result: Result<Vec<String>, String>) {
        let bytes = render_response(&result);
        match self.slots.iter_mut().find(|(s, _)| *s == seq) {
            Some(slot) if slot.1.is_none() => slot.1 = Some(bytes),
            _ => return, // unknown or duplicate completion: ignore
        }
        while matches!(self.slots.front(), Some((_, Some(_)))) {
            let (_, bytes) = self.slots.pop_front().expect("front exists");
            self.out
                .extend_from_slice(&bytes.expect("front is complete"));
        }
    }

    /// Rendered response bytes not yet written to the socket.
    pub fn pending_output(&self) -> &[u8] {
        &self.out[self.out_pos..]
    }

    /// Record that `n` bytes of [`Conn::pending_output`] were written.
    pub fn advance_output(&mut self, n: usize) {
        self.out_pos = (self.out_pos + n).min(self.out.len());
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
    }

    /// Any response bytes waiting to be written?
    pub fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Should the driver keep reading this socket?  False while closing, or
    /// while the connection is over its write high-water mark or pipeline
    /// cap — the backpressure signal.
    pub fn wants_read(&self) -> bool {
        !self.closing
            && self.out.len() - self.out_pos < self.high_water
            && self.slots.len() < self.max_pipeline
    }

    /// Number of requests awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.slots.len()
    }

    /// Stop reading; flush what is pending, then finish.  Used by the
    /// driver for daemon-wide shutdown.
    pub fn begin_close(&mut self) {
        self.closing = true;
    }

    /// The connection is done: closing, no in-flight requests, nothing left
    /// to write.  The driver should drop the socket.
    pub fn is_finished(&self) -> bool {
        self.closing && self.slots.is_empty() && !self.has_output()
    }

    fn overlong(&mut self) {
        let seq = self.begin_request();
        self.complete(
            seq,
            Err(format!("line too long (max {} bytes)", self.max_line)),
        );
    }

    fn begin_request(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back((seq, None));
        seq
    }

    fn handle_line(&mut self, line: &[u8], events: &mut Vec<ConnEvent>) {
        // Non-UTF-8 bytes only ever reach parse_command, which will reject
        // the verb; mangling them lossily beats killing the connection.
        let line = String::from_utf8_lossy(line);
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        let seq = self.begin_request();
        match parse_command(line) {
            Err(message) => self.complete(seq, Err(message)),
            Ok(Command::Quit) => {
                self.complete(seq, Ok(vec!["bye".to_string()]));
                self.closing = true;
            }
            Ok(Command::Shutdown) => {
                self.complete(seq, Ok(vec!["bye".to_string()]));
                self.closing = true;
                events.push(ConnEvent::ShutdownRequested);
            }
            Ok(command) => events.push(ConnEvent::Execute { seq, command }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec_seqs(events: &[ConnEvent]) -> Vec<u64> {
        events
            .iter()
            .filter_map(|e| match e {
                ConnEvent::Execute { seq, .. } => Some(*seq),
                ConnEvent::ShutdownRequested => None,
            })
            .collect()
    }

    #[test]
    fn split_vars_only_splits_a_whitespace_delimited_suffix() {
        // The plain form.
        assert_eq!(
            split_vars("descendant::author[. is $a] -> a"),
            ("descendant::author[. is $a]".to_string(), vec!["a".to_string()])
        );
        // `->` embedded in the query text is not a separator (the old
        // rsplit_once dropped `b[. is $x]` into the vars list here).
        assert_eq!(
            split_vars("child::a->b[. is $x]"),
            ("child::a->b[. is $x]".to_string(), Vec::new())
        );
        // An embedded arrow plus a real suffix: only the trailing
        // whitespace-delimited arrow splits.
        assert_eq!(
            split_vars("descendant::a->b[. is $x] -> x"),
            ("descendant::a->b[. is $x]".to_string(), vec!["x".to_string()])
        );
        // Multiple delimited arrows: the last one wins.
        assert_eq!(
            split_vars("a -> b -> c"),
            ("a -> b".to_string(), vec!["c".to_string()])
        );
        // Missing whitespace on either side keeps the arrow in the query.
        assert_eq!(split_vars("q-> x"), ("q-> x".to_string(), Vec::new()));
        assert_eq!(split_vars("q ->x"), ("q ->x".to_string(), Vec::new()));
        // Variable lists still strip `$`, spaces and empty entries.
        assert_eq!(
            split_vars("child::b -> $x, ,y"),
            ("child::b".to_string(), vec!["x".to_string(), "y".to_string()])
        );
        // A trailing delimited arrow with no vars is an empty suffix.
        assert_eq!(split_vars("child::b ->"), ("child::b".to_string(), Vec::new()));
    }

    #[test]
    fn query_with_embedded_arrow_parses_whole_expression() {
        assert_eq!(
            parse_command("QUERY d child::a->b[. is $x]").unwrap(),
            Command::Query {
                name: "d".into(),
                query: "child::a->b[. is $x]".into(),
                vars: vec![]
            }
        );
        assert_eq!(
            parse_command("QUERYALL descendant::a->b[. is $x] -> x").unwrap(),
            Command::QueryAll {
                query: "descendant::a->b[. is $x]".into(),
                vars: vec!["x".into()]
            }
        );
    }

    #[test]
    fn feed_splits_lines_across_arbitrary_chunk_boundaries() {
        let mut conn = Conn::new(1024);
        let wire = b"STATS\nEVICT bib\n";
        for split in 0..wire.len() {
            let mut conn2 = Conn::new(1024);
            let mut events = conn2.feed(&wire[..split]);
            events.extend(conn2.feed(&wire[split..]));
            let seqs = exec_seqs(&events);
            assert_eq!(seqs, vec![0, 1], "split at {split}");
            assert!(matches!(
                &events[0],
                ConnEvent::Execute { command: Command::Stats, .. }
            ));
        }
        let events = conn.feed(wire);
        assert_eq!(exec_seqs(&events), vec![0, 1]);
    }

    #[test]
    fn out_of_order_completion_releases_bytes_in_request_order() {
        let mut conn = Conn::new(1024);
        let events = conn.feed(b"STATS\nEVICT a\nEVICT b\n");
        assert_eq!(exec_seqs(&events), vec![0, 1, 2]);
        assert_eq!(conn.in_flight(), 3);
        // Complete the *last* request first: nothing is released.
        conn.complete(2, Ok(vec!["evicted=false".into()]));
        assert!(!conn.has_output());
        // Completing the head releases it — and only it.
        conn.complete(0, Err("boom".into()));
        assert_eq!(conn.pending_output(), b"ERR boom\n");
        // The middle completion releases the rest, in order.
        conn.complete(1, Ok(vec!["evicted=true".into()]));
        assert_eq!(
            conn.pending_output(),
            b"ERR boom\nOK 1\nevicted=true\nOK 1\nevicted=false\n" as &[u8]
        );
        assert_eq!(conn.in_flight(), 0);
        // Partial writes advance; a full drain resets the buffer.
        let n = conn.pending_output().len();
        conn.advance_output(9);
        assert_eq!(&conn.pending_output()[..4], b"OK 1");
        conn.advance_output(n - 9);
        assert!(!conn.has_output());
    }

    #[test]
    fn parse_errors_and_blank_lines_complete_without_the_driver() {
        let mut conn = Conn::new(1024);
        let events = conn.feed(b"\n  \nFROB x\nSTATS\n");
        // Only STATS reaches the driver; the parse error answered inline.
        assert_eq!(exec_seqs(&events), vec![1]);
        assert!(String::from_utf8_lossy(conn.pending_output()).starts_with("ERR unknown command"));
        // The inline error does not jump the queue: it is seq 0, so it is
        // already released; STATS (seq 1) follows once completed.
        conn.complete(1, Ok(vec![]));
        assert!(String::from_utf8_lossy(conn.pending_output()).ends_with("OK 0\n"));
    }

    #[test]
    fn overlong_lines_err_inline_and_stay_in_sync() {
        let mut conn = Conn::new(8);
        let mut events = conn.feed(b"0123456789abcdef");
        assert!(events.is_empty());
        assert_eq!(conn.pending_output(), b"ERR line too long (max 8 bytes)\n");
        // The rest of the flood is discarded without re-reporting.
        events.extend(conn.feed(b"more flood"));
        events.extend(conn.feed(b" end\nSTATS\n"));
        assert_eq!(exec_seqs(&events), vec![1]);
        conn.complete(1, Ok(vec![]));
        assert_eq!(
            conn.pending_output(),
            b"ERR line too long (max 8 bytes)\nOK 0\n" as &[u8]
        );
    }

    #[test]
    fn quit_and_shutdown_close_after_flushing() {
        let mut conn = Conn::new(1024);
        let events = conn.feed(b"STATS\nQUIT\nSTATS\n");
        // The post-QUIT STATS is never parsed.
        assert_eq!(exec_seqs(&events), vec![0]);
        assert!(!conn.wants_read());
        assert!(!conn.is_finished(), "STATS still in flight");
        conn.complete(0, Ok(vec![]));
        assert!(!conn.is_finished(), "bye not yet flushed");
        assert_eq!(conn.pending_output(), b"OK 0\nOK 1\nbye\n");
        let n = conn.pending_output().len();
        conn.advance_output(n);
        assert!(conn.is_finished());

        let mut conn = Conn::new(1024);
        let events = conn.feed(b"SHUTDOWN\n");
        assert_eq!(events, vec![ConnEvent::ShutdownRequested]);
        assert_eq!(conn.pending_output(), b"OK 1\nbye\n");
    }

    #[test]
    fn backpressure_trips_on_pipeline_depth_and_write_buffer() {
        let mut conn = Conn::with_limits(1024, 16, 2);
        let events = conn.feed(b"STATS\nSTATS\nSTATS\n");
        // All already-fed bytes parse, but the conn asks reading to stop.
        assert_eq!(exec_seqs(&events), vec![0, 1, 2]);
        assert!(!conn.wants_read(), "pipeline cap of 2 exceeded");
        conn.complete(0, Ok(vec![]));
        conn.complete(1, Ok(vec![]));
        assert!(conn.wants_read(), "back under the cap, small output");
        // A fat response trips the write high-water mark instead.
        conn.complete(2, Ok(vec!["x".repeat(64)]));
        assert!(!conn.wants_read(), "write buffer over high-water mark");
        let n = conn.pending_output().len();
        conn.advance_output(n);
        assert!(conn.wants_read());
    }

    /// An oversized line fed one byte at a time must report `ERR` exactly
    /// once, discard the whole tail across every subsequent feed, and
    /// resynchronise at the next newline.
    #[test]
    fn oversized_line_discard_survives_byte_at_a_time_feeds() {
        let mut conn = Conn::with_limits(8, DEFAULT_HIGH_WATER, DEFAULT_MAX_PIPELINE);
        let mut events = Vec::new();
        for byte in b"0123456789abcdefghij" {
            events.extend(conn.feed(&[*byte]));
        }
        assert!(events.is_empty());
        assert_eq!(
            conn.pending_output(),
            b"ERR line too long (max 8 bytes)\n",
            "the flood must be reported once, not once per feed"
        );
        // The newline ends the discard; the next request parses normally.
        events.extend(conn.feed(b"\n"));
        for byte in b"STATS\n" {
            events.extend(conn.feed(&[*byte]));
        }
        assert_eq!(exec_seqs(&events), vec![1]);
        conn.complete(1, Ok(vec![]));
        assert_eq!(
            conn.pending_output(),
            b"ERR line too long (max 8 bytes)\nOK 0\n" as &[u8]
        );
    }

    /// The cap counts the line body, not its newline: a request of exactly
    /// `max_line` bytes is served, one byte more is rejected — in one feed
    /// or split at every boundary.
    #[test]
    fn line_exactly_at_the_cap_is_served_not_rejected() {
        // "EVICT ab" is exactly 8 bytes.
        for split in 0..=8 {
            let mut conn = Conn::with_limits(8, DEFAULT_HIGH_WATER, DEFAULT_MAX_PIPELINE);
            let wire = b"EVICT ab\n";
            let mut events = conn.feed(&wire[..split]);
            events.extend(conn.feed(&wire[split..]));
            assert_eq!(exec_seqs(&events), vec![0], "split at {split}");
            assert!(
                matches!(
                    &events[0],
                    ConnEvent::Execute { command: Command::Evict(Some(name)), .. } if name == "ab"
                ),
                "split at {split}: {events:?}"
            );
        }
        // One byte over the cap errs inline and stays in sync.
        let mut conn = Conn::with_limits(8, DEFAULT_HIGH_WATER, DEFAULT_MAX_PIPELINE);
        let events = conn.feed(b"EVICT abc\nSTATS\n");
        assert_eq!(exec_seqs(&events), vec![1]);
        assert!(String::from_utf8_lossy(conn.pending_output()).starts_with("ERR line too long"));
    }

    /// CRLF terminates like LF (the CR is trimmed); a lone CR is *not* a
    /// terminator — the line stays pending until a real newline arrives.
    #[test]
    fn crlf_and_cr_only_terminators() {
        let mut conn = Conn::new(1024);
        let events = conn.feed(b"STATS\r\n");
        assert_eq!(exec_seqs(&events), vec![0]);
        assert!(matches!(
            &events[0],
            ConnEvent::Execute { command: Command::Stats, .. }
        ));

        // CR without LF: nothing parses yet, nothing is answered.
        let mut conn = Conn::new(1024);
        assert!(conn.feed(b"EVICT ab\r").is_empty());
        assert_eq!(conn.in_flight(), 0);
        assert!(!conn.has_output());
        // The newline completes the request; the stray CR trims away.
        let events = conn.feed(b"\n");
        assert!(
            matches!(
                &events[0],
                ConnEvent::Execute { command: Command::Evict(Some(name)), .. } if name == "ab"
            ),
            "{events:?}"
        );
    }

    /// Output exactly at the high-water mark trips backpressure; draining a
    /// single byte releases it.
    #[test]
    fn high_water_boundary_is_inclusive() {
        let mut conn = Conn::with_limits(1024, 8, DEFAULT_MAX_PIPELINE);
        let events = conn.feed(b"STATS\n");
        assert_eq!(exec_seqs(&events), vec![0]);
        // "OK 1\nxx\n" is exactly 8 bytes of pending output.
        conn.complete(0, Ok(vec!["xx".into()]));
        assert_eq!(conn.pending_output().len(), 8);
        assert!(!conn.wants_read(), "at the mark counts as over it");
        conn.advance_output(1);
        assert!(conn.wants_read(), "7 pending bytes are under the mark");
    }

    /// Feeding past the pipeline cap (the driver may hold already-read
    /// bytes when backpressure trips) must not desync the slot queue:
    /// every request still answers, in order, and reads resume once the
    /// queue drains.  Bogus completions — unknown or duplicate sequence
    /// numbers — are ignored without disturbing the queue.
    #[test]
    fn pipeline_overflow_recovers_without_slot_desync() {
        let mut conn = Conn::with_limits(1024, 4096, 2);
        let events = conn.feed(b"EVICT a\nEVICT b\nEVICT c\nEVICT d\n");
        assert_eq!(exec_seqs(&events), vec![0, 1, 2, 3]);
        assert_eq!(conn.in_flight(), 4, "already-fed bytes all parse");
        assert!(!conn.wants_read(), "over the cap of 2");

        // Completions for slots that do not exist (never issued) or that
        // already completed must be ignored.
        conn.complete(99, Ok(vec!["phantom".into()]));
        conn.complete(3, Ok(vec!["evicted=false".into()]));
        conn.complete(3, Ok(vec!["duplicate".into()]));
        assert!(!conn.has_output(), "head of queue is still pending");

        conn.complete(1, Err("boom".into()));
        conn.complete(0, Ok(vec!["evicted=true".into()]));
        conn.complete(2, Ok(vec!["evicted=true".into()]));
        assert_eq!(
            String::from_utf8_lossy(conn.pending_output()),
            "OK 1\nevicted=true\nERR boom\nOK 1\nevicted=true\nOK 1\nevicted=false\n",
            "responses must release in request order with no phantom bytes"
        );
        assert_eq!(conn.in_flight(), 0);
        assert!(conn.wants_read(), "drained queue resumes reading");
        // The connection is still in protocol sync for the next request.
        let events = conn.feed(b"STATS\n");
        assert_eq!(exec_seqs(&events), vec![4]);
    }

    #[test]
    fn queryall_reports_per_document_errors_next_to_healthy_answers() {
        let corpus = Corpus::new();
        corpus.insert_terms("good", "r(a(b),a(b))").unwrap();
        corpus.insert_terms("sick", "r(a(b))").unwrap();
        corpus.panic_docs.lock().unwrap().insert("sick".to_string());
        let lines = execute_command(
            &corpus,
            &parse_command("QUERYALL descendant::b[. is $x] -> x").unwrap(),
        )
        .expect("fan-out must not fail as a whole");
        // The healthy document still answers in full…
        assert_eq!(lines[0], "doc=good tuples=2");
        assert_eq!(lines[1], "b#2");
        assert_eq!(lines[2], "b#4");
        // …and the failing one reports its own error line.
        assert_eq!(lines.len(), 4);
        assert!(
            lines[3].starts_with("doc=sick error="),
            "expected a per-document error line, got: {:?}",
            lines[3]
        );
    }

    #[test]
    fn mutate_parses_all_three_operations_and_rejects_malformed_forms() {
        assert_eq!(
            parse_command("MUTATE bib INSERT 0 2 book(author,title)").unwrap(),
            Command::Mutate {
                name: "bib".into(),
                spec: MutateSpec::Insert {
                    parent: 0,
                    index: 2,
                    terms: "book(author,title)".into()
                }
            }
        );
        assert_eq!(
            parse_command("mutate bib delete 4").unwrap(),
            Command::Mutate { name: "bib".into(), spec: MutateSpec::Delete { node: 4 } }
        );
        assert_eq!(
            parse_command("MUTATE bib RELABEL 3 subtitle").unwrap(),
            Command::Mutate {
                name: "bib".into(),
                spec: MutateSpec::Relabel { node: 3, label: "subtitle".into() }
            }
        );
        for bad in [
            "MUTATE",
            "MUTATE bib",
            "MUTATE bib FROB 1",
            "MUTATE bib INSERT 0 2",
            "MUTATE bib INSERT zero 2 a",
            "MUTATE bib DELETE",
            "MUTATE bib DELETE 1 2",
            "MUTATE bib DELETE x",
            "MUTATE bib RELABEL 3",
        ] {
            assert!(parse_command(bad).is_err(), "must reject: {bad}");
        }
    }

    /// The `xpath_wire` request builders and the daemon parser agree on the
    /// MUTATE grammar.
    #[test]
    fn wire_mutate_builders_round_trip_through_the_parser() {
        use xpath_wire::{mutate_delete_line, mutate_insert_line, mutate_relabel_line};
        assert_eq!(
            parse_command(&mutate_insert_line("bib", 0, 2, "book(author)")).unwrap(),
            Command::Mutate {
                name: "bib".into(),
                spec: MutateSpec::Insert { parent: 0, index: 2, terms: "book(author)".into() }
            }
        );
        assert_eq!(
            parse_command(&mutate_delete_line("bib", 4)).unwrap(),
            Command::Mutate { name: "bib".into(), spec: MutateSpec::Delete { node: 4 } }
        );
        assert_eq!(
            parse_command(&mutate_relabel_line("bib", 3, "subtitle")).unwrap(),
            Command::Mutate {
                name: "bib".into(),
                spec: MutateSpec::Relabel { node: 3, label: "subtitle".into() }
            }
        );
    }

    #[test]
    fn mutate_executes_and_queries_see_the_edited_document() {
        let corpus = Corpus::new();
        corpus
            .insert_terms("bib", "bib(book(author,title),book(author))")
            .unwrap();
        let lines = execute_command(
            &corpus,
            &parse_command("MUTATE bib INSERT 0 2 book(author,title)").unwrap(),
        )
        .unwrap();
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].starts_with("mutated bib kind=insert nodes=9 epoch=1 rows_invalidated="),
            "unexpected info line: {:?}",
            lines[0]
        );
        assert!(lines[0].ends_with("mode=incremental") || lines[0].ends_with("mode=full"));
        let lines = execute_command(
            &corpus,
            &parse_command("QUERY bib descendant::author[. is $x] -> x").unwrap(),
        )
        .unwrap();
        assert_eq!(lines[0], "vars=x tuples=3");

        // A structurally invalid edit is an ERR, not a protocol failure…
        let err = execute_command(&corpus, &parse_command("MUTATE bib DELETE 99").unwrap())
            .unwrap_err();
        assert!(err.contains("cannot edit document 'bib'"), "{err}");
        // …and so is a subtree that does not parse.
        let err = execute_command(&corpus, &parse_command("MUTATE bib INSERT 0 0 a((").unwrap())
            .unwrap_err();
        assert!(err.contains("syntax"), "{err}");
        let err = execute_command(&corpus, &parse_command("MUTATE nope DELETE 1").unwrap())
            .unwrap_err();
        assert!(err.contains("unknown document"), "{err}");
    }

    #[test]
    fn stats_reports_the_edit_counters() {
        let corpus = Corpus::new();
        corpus.insert_terms("d", "r(a,b)").unwrap();
        execute_command(&corpus, &parse_command("MUTATE d RELABEL 2 c").unwrap()).unwrap();
        let lines = execute_command(&corpus, &Command::Stats).unwrap();
        assert_eq!(lines.len(), 14, "STATS must report 14 counters: {lines:?}");
        assert!(lines.contains(&"edits=1".to_string()), "{lines:?}");
        assert!(lines.contains(&"edits_full=1".to_string()), "{lines:?}");
        assert!(lines.contains(&"edits_incremental=0".to_string()), "{lines:?}");
        assert!(
            lines.contains(&"edit_rows_invalidated=0".to_string()),
            "{lines:?}"
        );
    }

    #[test]
    fn queryall_reports_compile_errors_per_document() {
        let corpus = Corpus::new();
        corpus.insert_terms("d1", "r(a)").unwrap();
        corpus.insert_terms("d2", "r(b)").unwrap();
        let lines = execute_command(
            &corpus,
            &parse_command("QUERYALL child::(").unwrap(),
        )
        .expect("fan-out must not fail as a whole");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("doc=d1 error="), "{:?}", lines[0]);
        assert!(lines[1].starts_with("doc=d2 error="), "{:?}", lines[1]);
    }
}
