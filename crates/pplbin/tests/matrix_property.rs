//! Differential property tests (proptest shim) for [`NodeMatrix`].
//!
//! The bit-packed storage strides in 64-bit words, so every off-by-one in
//! the tail masking shows up exactly at domain sizes n ∈ {63, 64, 65}.  The
//! tests below pin the word-parallel operations to their per-entry
//! reference semantics on random matrices straddling the word boundary, and
//! check the tail-clearing invariant after *chains* of complement and
//! difference operations (a single op can clear tails by luck; chains
//! cannot).

use proptest::prelude::*;
use xpath_pplbin::NodeMatrix;
use xpath_tree::NodeId;

/// The word-boundary domain sizes under test.
const BOUNDARY_SIZES: [usize; 3] = [63, 64, 65];

fn matrix_from_pairs(n: usize, pairs: &[(usize, usize)]) -> NodeMatrix {
    let mut m = NodeMatrix::empty(n);
    for &(u, v) in pairs {
        m.set(NodeId((u % n) as u32), NodeId((v % n) as u32));
    }
    m
}

/// Brute-force pair count via `get`, independent of the packed counters.
fn count_by_get(m: &NodeMatrix) -> usize {
    let n = m.len();
    let mut count = 0;
    for u in 0..n {
        for v in 0..n {
            if m.get(NodeId(u as u32), NodeId(v as u32)) {
                count += 1;
            }
        }
    }
    count
}

/// The tail-clearing invariant: no stored bit outside the n×n domain.
///
/// `count_pairs` sums raw popcounts and `successors` walks raw words, so if
/// a tail bit leaked, one of the three comparisons below must diverge.
fn assert_tails_clear(m: &NodeMatrix, context: &str) {
    let n = m.len();
    assert_eq!(m.count_pairs(), count_by_get(m), "{context}: popcount vs get");
    for u in 0..n {
        let row: Vec<NodeId> = m.successors(NodeId(u as u32)).collect();
        assert!(
            row.iter().all(|v| v.index() < n),
            "{context}: successors leaked a column ≥ n in row {u}: {row:?}"
        );
    }
    assert_eq!(
        m.pairs().len(),
        m.count_pairs(),
        "{context}: pairs() vs count_pairs()"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn product_matches_naive_product_across_word_boundaries(
        pairs_a in prop::collection::vec((0usize..65, 0usize..65), 0..240),
        pairs_b in prop::collection::vec((0usize..65, 0usize..65), 0..240),
    ) {
        for &n in &BOUNDARY_SIZES {
            let a = matrix_from_pairs(n, &pairs_a);
            let b = matrix_from_pairs(n, &pairs_b);
            let fast = a.product(&b);
            let slow = a.product_naive(&b);
            prop_assert_eq!(&fast, &slow, "product disagrees at n={}", n);
            assert_tails_clear(&fast, &format!("product n={n}"));
        }
    }

    #[test]
    fn blocked_transpose_matches_per_bit_transpose_across_word_boundaries(
        pairs in prop::collection::vec((0usize..130, 0usize..130), 0..400),
    ) {
        // The word-blocked 64×64 tile transpose must agree bit-for-bit with
        // the per-bit reference (`transpose_naive`) on every domain size
        // around the word boundary, including multi-word rows.
        for &n in &[1usize, 63, 64, 65, 128, 130] {
            let a = matrix_from_pairs(n, &pairs);
            let blocked = a.transpose();
            let per_bit = a.transpose_naive();
            prop_assert_eq!(&blocked, &per_bit, "transpose disagrees at n={}", n);
            assert_tails_clear(&blocked, &format!("transpose n={n}"));
            // Involution and product contravariance as sanity checks.
            prop_assert_eq!(blocked.transpose(), a.clone(), "Aᵀᵀ != A at n={}", n);
            let b = matrix_from_pairs(n, &pairs[..pairs.len() / 2]);
            prop_assert_eq!(
                a.product(&b).transpose(),
                b.transpose().product(&a.transpose()),
                "(A·B)ᵀ != Bᵀ·Aᵀ at n={}", n
            );
        }
    }

    #[test]
    fn complement_and_difference_clear_tails_after_chained_ops(
        pairs_a in prop::collection::vec((0usize..65, 0usize..65), 0..200),
        pairs_b in prop::collection::vec((0usize..65, 0usize..65), 0..200),
    ) {
        for &n in &BOUNDARY_SIZES {
            let a = matrix_from_pairs(n, &pairs_a);
            let b = matrix_from_pairs(n, &pairs_b);

            // Involution: ¬¬A = A, and ¬A has exactly the complementary count.
            let mut c = a.clone();
            c.complement();
            assert_tails_clear(&c, &format!("¬A n={n}"));
            prop_assert_eq!(c.count_pairs(), n * n - a.count_pairs());
            c.complement();
            prop_assert_eq!(&c, &a, "double complement at n={}", n);

            // A ∖ B == A ∧ ¬B, entry for entry.
            let mut diff = a.clone();
            diff.difference_with(&b);
            let mut via_complement = a.clone();
            let mut not_b = b.clone();
            not_b.complement();
            via_complement.intersect_with(&not_b);
            prop_assert_eq!(&diff, &via_complement, "A∖B vs A∧¬B at n={}", n);
            assert_tails_clear(&diff, &format!("A∖B n={n}"));

            // Chained: ((¬A ∖ B) ∪ ¬B) then product with the full relation —
            // every intermediate must keep the tail clear or the final
            // counts blow past n².
            let mut chained = a.clone();
            chained.complement();
            chained.difference_with(&b);
            let mut not_b2 = b.clone();
            not_b2.complement();
            chained.union_with(&not_b2);
            assert_tails_clear(&chained, &format!("chain n={n}"));
            let widened = chained.product(&NodeMatrix::full(n));
            assert_tails_clear(&widened, &format!("chain·F n={n}"));
            prop_assert!(widened.count_pairs() <= n * n);
            prop_assert_eq!(
                widened.count_pairs(),
                chained.nonempty_rows().len() * n,
                "M·F must have |nonempty rows|·n pairs at n={}", n
            );

            // Difference with self empties the relation; complement of the
            // empty relation is full — tails must survive the round trip.
            let mut zero = chained.clone();
            let chained_copy = chained.clone();
            zero.difference_with(&chained_copy);
            prop_assert!(zero.is_relation_empty());
            zero.complement();
            prop_assert_eq!(zero.count_pairs(), n * n, "¬∅ must be full at n={}", n);
        }
    }
}
