//! Differential property tests for the adaptive [`Relation`] kernels.
//!
//! Every kernel (interval, sparse, dense, threaded) must agree with the
//! per-entry reference semantics — `NodeMatrix::product_naive` for
//! composition and the element-wise dense operations for the rest — on
//!
//! * random relations in every representation, at the word-boundary domain
//!   sizes n ∈ {0, 1, 63, 64, 65} where tail-masking bugs live, and
//! * step relations and full PPLbin expressions over random trees from the
//!   existing generators (all shape families, so the interval kernels see
//!   deep paths and the sibling kernels see stars).

use proptest::prelude::*;
use xpath_ast::binexpr::from_variable_free_path;
use xpath_ast::{parse_path, NameTest};
use xpath_pplbin::{
    eval_relation, step_matrix, step_relation, KernelMode, KernelStats, NodeMatrix, Relation,
    SparseRows,
};
use xpath_tree::generate::{random_tree, TreeGenConfig, TreeShape};
use xpath_tree::{axes::ALL_AXES, NodeId};

/// The word-boundary domain sizes under test (0 exercises the zero-row
/// matrix; trees cannot be empty, so it only appears in the raw-relation
/// tests).
const BOUNDARY_SIZES: [usize; 5] = [0, 1, 63, 64, 65];

const ALL_MODES: [KernelMode; 3] = [
    KernelMode::Dense,
    KernelMode::Adaptive,
    KernelMode::AdaptiveThreaded,
];

fn matrix_from_pairs(n: usize, pairs: &[(usize, usize)]) -> NodeMatrix {
    let mut m = NodeMatrix::empty(n);
    if n == 0 {
        return m;
    }
    for &(u, v) in pairs {
        m.set(NodeId((u % n) as u32), NodeId((v % n) as u32));
    }
    m
}

/// A pool of relations over the same domain, one per representation, all
/// derived from the same random raw material.
fn variant_pool(n: usize, pairs: &[(usize, usize)], ranges: &[(usize, usize)]) -> Vec<Relation> {
    let mut pool = vec![
        Relation::Identity(n),
        Relation::Full(n),
        Relation::empty(n),
        Relation::Dense(matrix_from_pairs(n, pairs)),
        Relation::from_matrix(matrix_from_pairs(n, pairs)),
    ];
    // Interval rows from the random ranges (cycled over the rows).
    if n > 0 {
        let rows: Vec<(u32, u32)> = (0..n)
            .map(|u| {
                let (a, b) = ranges[u % ranges.len().max(1)];
                let lo = (a % n) as u32;
                let hi = (b % (n + 1)) as u32;
                if lo < hi {
                    (lo, hi)
                } else {
                    (0, 0)
                }
            })
            .collect();
        pool.push(Relation::Interval { n, rows });
        // CSR from the sorted pair list.
        let mut sorted: Vec<(u32, u32)> = pairs
            .iter()
            .map(|&(u, v)| ((u % n) as u32, (v % n) as u32))
            .collect();
        sorted.sort_unstable();
        sorted.dedup();
        pool.push(Relation::Sparse(SparseRows::from_sorted_pairs(n, &sorted)));
    }
    pool
}

/// Compare a relation against its dense materialisation, entry by entry and
/// through the row accessors.
fn assert_faithful(r: &Relation, context: &str) {
    let m = r.to_matrix();
    let n = r.len();
    assert_eq!(r.count_pairs(), m.count_pairs(), "{context}: count_pairs");
    assert_eq!(r.pairs(), m.pairs(), "{context}: pairs");
    for u in 0..n {
        let id = NodeId(u as u32);
        let list = r.successor_list(id);
        let expected: Vec<NodeId> = m.successors(id).collect();
        assert_eq!(list, expected, "{context}: successors of {u}");
        assert_eq!(r.row_nonempty(id), !expected.is_empty(), "{context}: row {u}");
        for v in 0..n {
            assert_eq!(
                r.get(id, NodeId(v as u32)),
                m.get(id, NodeId(v as u32)),
                "{context}: get({u},{v})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_product_kernel_matches_product_naive(
        pairs_a in prop::collection::vec((0usize..65, 0usize..65), 0..160),
        pairs_b in prop::collection::vec((0usize..65, 0usize..65), 0..160),
        ranges in prop::collection::vec((0usize..65, 0usize..66), 1..8),
    ) {
        for &n in &BOUNDARY_SIZES {
            let left = variant_pool(n, &pairs_a, &ranges);
            let right = variant_pool(n, &pairs_b, &ranges);
            let mut stats = KernelStats::default();
            for a in &left {
                for b in &right {
                    let want = a.to_matrix().product_naive(&b.to_matrix());
                    for mode in ALL_MODES {
                        let got = a.product(b, mode, &mut stats);
                        prop_assert_eq!(
                            got.to_matrix(), want.clone(),
                            "{} · {} under {:?} at n={}",
                            a.variant_name(), b.variant_name(), mode, n
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn union_intersect_complement_diag_transpose_match_dense_reference(
        pairs_a in prop::collection::vec((0usize..65, 0usize..65), 0..120),
        pairs_b in prop::collection::vec((0usize..65, 0usize..65), 0..120),
        ranges in prop::collection::vec((0usize..65, 0usize..66), 1..8),
    ) {
        for &n in &BOUNDARY_SIZES {
            let left = variant_pool(n, &pairs_a, &ranges);
            let right = variant_pool(n, &pairs_b, &ranges);
            let mut stats = KernelStats::default();
            for a in &left {
                assert_faithful(a, &format!("{} n={n}", a.variant_name()));
                let am = a.to_matrix();
                for mode in ALL_MODES {
                    let mut want_c = am.clone();
                    want_c.complement();
                    prop_assert_eq!(
                        a.complement(mode, &mut stats).to_matrix(), want_c,
                        "¬{} under {:?} at n={}", a.variant_name(), mode, n
                    );
                    prop_assert_eq!(
                        a.diagonal_filter(mode, &mut stats).to_matrix(),
                        am.diagonal_filter(),
                        "[{}] under {:?} at n={}", a.variant_name(), mode, n
                    );
                    prop_assert_eq!(
                        a.transpose(mode, &mut stats).to_matrix(),
                        am.transpose(),
                        "{}ᵀ under {:?} at n={}", a.variant_name(), mode, n
                    );
                }
                for b in &right {
                    let bm = b.to_matrix();
                    for mode in ALL_MODES {
                        let mut want_u = am.clone();
                        want_u.union_with(&bm);
                        prop_assert_eq!(
                            a.union(b, mode, &mut stats).to_matrix(), want_u,
                            "{} ∪ {} under {:?} at n={}",
                            a.variant_name(), b.variant_name(), mode, n
                        );
                        let mut want_i = am.clone();
                        want_i.intersect_with(&bm);
                        prop_assert_eq!(
                            a.intersect(b, mode, &mut stats).to_matrix(), want_i,
                            "{} ∩ {} under {:?} at n={}",
                            a.variant_name(), b.variant_name(), mode, n
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn step_relations_match_brute_force_on_random_trees(
        seed in 0u64..1_000_000,
        size in 2usize..70,
    ) {
        for shape in [
            TreeShape::RandomAttachment,
            TreeShape::BoundedBranching { max_children: 4 },
            TreeShape::Path,
            TreeShape::Star,
        ] {
            let tree = random_tree(&TreeGenConfig { size, shape, alphabet: 3, seed });
            let n = tree.len();
            for axis in ALL_AXES {
                for test in [NameTest::Wildcard, NameTest::name("l0"), NameTest::name("zzz")] {
                    let r = step_relation(&tree, axis, &test);
                    let mut want = NodeMatrix::empty(n);
                    for u in tree.nodes() {
                        for v in tree.nodes() {
                            if axis.relates(&tree, u, v) && test.matches(tree.label_str(v)) {
                                want.set(u, v);
                            }
                        }
                    }
                    prop_assert_eq!(
                        r.to_matrix(), want,
                        "{:?} {:?} on {:?} seed {} size {}", axis, test, shape, seed, size
                    );
                }
            }
        }
    }

    #[test]
    fn eval_relation_modes_agree_on_random_trees(
        seed in 0u64..1_000_000,
        size in 2usize..90,
    ) {
        let suite: Vec<_> = [
            "descendant::*/child::l0",
            "child::*/child::*/child::*",
            "descendant::l1/ancestor::*",
            "descendant::*/descendant::*",
            "(child::l0 union following_sibling::*)/descendant::l2",
            "descendant::* except child::*",
            "descendant::*[child::l0]",
            "parent::*/descendant::l0",
        ]
        .iter()
        .map(|s| from_variable_free_path(&parse_path(s).unwrap()).unwrap())
        .collect();
        for shape in [TreeShape::BoundedBranching { max_children: 3 }, TreeShape::Path] {
            let tree = random_tree(&TreeGenConfig { size, shape, alphabet: 3, seed });
            for bin in &suite {
                let mut stats = KernelStats::default();
                let dense = eval_relation(&tree, bin, KernelMode::Dense, &mut stats).to_matrix();
                for mode in [KernelMode::Adaptive, KernelMode::AdaptiveThreaded] {
                    let got = eval_relation(&tree, bin, mode, &mut stats).to_matrix();
                    prop_assert_eq!(
                        &got, &dense,
                        "{:?} disagrees with dense on {:?} seed {} size {}",
                        mode, shape, seed, size
                    );
                }
            }
        }
    }
}

#[test]
fn step_matrix_is_the_materialised_step_relation() {
    let tree = random_tree(&TreeGenConfig {
        size: 40,
        shape: TreeShape::BoundedBranching { max_children: 4 },
        alphabet: 2,
        seed: 7,
    });
    for axis in ALL_AXES {
        for test in [NameTest::Wildcard, NameTest::name("l1")] {
            assert_eq!(
                step_relation(&tree, axis, &test).to_matrix(),
                step_matrix(&tree, axis, &test),
                "{axis:?} {test:?}"
            );
        }
    }
}
