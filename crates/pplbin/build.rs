fn main() {
    // `model_check` is an expected custom cfg: the CI model-check lane builds
    // with RUSTFLAGS="--cfg model_check" to swap the facade internals from
    // plain std onto the deterministic scheduler.
    println!("cargo::rustc-check-cfg=cfg(model_check)");
}
