//! Incremental matrix maintenance: shared machinery for patching compiled
//! relations through a tree edit instead of recompiling them.
//!
//! The tree layer guarantees ([`EditDelta::dirty_rows`], brute-force-pinned
//! in `xpath_tree::edit`) that a step relation after an edit equals the old
//! relation with [`EditDelta::remap`] applied to rows and columns — except
//! on a small set of dirty rows.  `MatrixStore::apply_edit` (in
//! [`crate::store`]) lifts that guarantee through the PPLbin operators; the
//! helpers here are the mechanical parts: remapping sorted column lists and
//! packed bit rows through the id shift, and finding the rows of a compiled
//! relation that touch a given column set (the preimage step of the dirty
//! propagation `D(a·b) ⊇ {u : rows_a(u) ∩ D(b) ≠ ∅}`).
//!
//! [`EditDelta::dirty_rows`]: xpath_tree::EditDelta::dirty_rows
//! [`EditDelta::remap`]: xpath_tree::EditDelta::remap

use crate::relation::Relation;
use xpath_tree::{EditDelta, EditKind, NodeId};

/// What one [`crate::store::MatrixStore::apply_edit`] call did to the cached
/// entries, for the serving layer's `rows invalidated / rebuilt vs patched`
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditApplyStats {
    /// Entries kept verbatim (relabel outside the entry's label footprint).
    pub entries_kept: usize,
    /// Entries patched row-wise: clean rows remapped, dirty rows recomputed.
    pub entries_patched: usize,
    /// Entries recomputed from their (already updated) children.
    pub entries_rebuilt: usize,
    /// Entries dropped outright (recompiled on demand later).
    pub entries_dropped: usize,
    /// Rows recomputed (not merely remapped) across all entries.
    pub rows_invalidated: u64,
    /// Total rows of all entries that were compiled when the edit arrived.
    pub rows_total: u64,
}

impl EditApplyStats {
    /// Accumulate another counter set (aggregating shards of a
    /// `SharedMatrixStore`).
    pub fn merge(&mut self, other: &EditApplyStats) {
        let EditApplyStats {
            entries_kept,
            entries_patched,
            entries_rebuilt,
            entries_dropped,
            rows_invalidated,
            rows_total,
        } = *other;
        self.entries_kept += entries_kept;
        self.entries_patched += entries_patched;
        self.entries_rebuilt += entries_rebuilt;
        self.entries_dropped += entries_dropped;
        self.rows_invalidated += rows_invalidated;
        self.rows_total += rows_total;
    }
}

/// The rows of one cached subterm whose relation may differ from the
/// remapped old relation.  `Rows` is sorted and deduplicated, in new ids.
#[derive(Debug, Clone)]
pub(crate) enum Dirty {
    Rows(Vec<u32>),
    All,
}

/// Merge two sorted, deduped row lists (u32 ids).
pub(crate) fn merge_rows(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Remap a sorted column list through the edit's id shift.  Monotone, so
/// the output stays sorted; deleted columns drop out.
pub(crate) fn remap_cols(cols: &[u32], delta: &EditDelta) -> Vec<u32> {
    cols.iter().filter_map(|&c| delta.remap(c)).collect()
}

/// Remap one packed bit row (old column space) into the new column space:
/// bits below the edited range stay, bits above shift by `count`, bits
/// inside a deleted range vanish.  O(n/64) via whole-word copies.
pub(crate) fn remap_row_words(old: &[u64], delta: &EditDelta, n_old: usize, n_new: usize) -> Vec<u64> {
    let mut out = vec![0u64; n_new.div_ceil(64)];
    let pos = delta.pos as usize;
    let count = delta.count as usize;
    match delta.kind {
        EditKind::Relabel => {
            out.copy_from_slice(old);
        }
        EditKind::Insert => {
            copy_bit_range(old, 0, pos, &mut out, 0);
            copy_bit_range(old, pos, n_old - pos, &mut out, pos + count);
        }
        EditKind::Delete => {
            copy_bit_range(old, 0, pos, &mut out, 0);
            copy_bit_range(old, pos + count, n_old - pos - count, &mut out, pos);
        }
    }
    out
}

/// Remap a `[lo, hi)` column range through the edit's id shift, if its
/// image stays contiguous.  `None` means the range straddles the freshly
/// inserted block (the image has a hole) and the row cannot be kept in
/// interval form.
pub(crate) fn remap_range(lo: u32, hi: u32, delta: &EditDelta) -> Option<(u32, u32)> {
    if lo >= hi {
        return Some((0, 0));
    }
    let (pos, count) = (delta.pos, delta.count);
    match delta.kind {
        EditKind::Relabel => Some((lo, hi)),
        EditKind::Insert => {
            if lo < pos && hi > pos {
                None
            } else if hi <= pos {
                Some((lo, hi))
            } else {
                Some((lo + count, hi + count))
            }
        }
        EditKind::Delete => {
            let f = |x: u32| {
                if x <= pos {
                    x
                } else if x <= pos + count {
                    pos
                } else {
                    x - count
                }
            };
            let (l, h) = (f(lo), f(hi));
            if l >= h {
                Some((0, 0))
            } else {
                Some((l, h))
            }
        }
    }
}

/// Read up to 64 bits starting at bit `start` (caller masks via `len`).
#[inline]
fn read_bits(src: &[u64], start: usize, len: usize) -> u64 {
    let w = start / 64;
    let off = start % 64;
    let mut v = src[w] >> off;
    if off != 0 && w + 1 < src.len() {
        v |= src[w + 1] << (64 - off);
    }
    if len < 64 {
        v &= (1u64 << len) - 1;
    }
    v
}

/// OR up to 64 bits into `dst` starting at bit `start`.
#[inline]
fn write_bits(dst: &mut [u64], start: usize, len: usize, bits: u64) {
    let w = start / 64;
    let off = start % 64;
    dst[w] |= bits << off;
    if off != 0 && off + len > 64 {
        dst[w + 1] |= bits >> (64 - off);
    }
}

/// OR-copy `len` bits from `src[src_start..]` into `dst[dst_start..]`.
fn copy_bit_range(src: &[u64], src_start: usize, len: usize, dst: &mut [u64], dst_start: usize) {
    let mut i = 0;
    while i < len {
        let take = 64.min(len - i);
        let chunk = read_bits(src, src_start + i, take);
        write_bits(dst, dst_start + i, take, chunk);
        i += take;
    }
}

/// The rows of a compiled relation whose row intersects the sorted column
/// set `cols` — the preimage step of dirty propagation through `Seq`.
/// Returns row ids in the relation's own id space, sorted.
pub(crate) fn rows_intersecting_cols(r: &Relation, cols: &[u32]) -> Vec<u32> {
    let n = r.len();
    if cols.is_empty() {
        return Vec::new();
    }
    match r {
        Relation::Identity(_) => cols.iter().copied().filter(|&c| (c as usize) < n).collect(),
        Relation::Full(_) => (0..n as u32).collect(),
        Relation::Interval { rows, .. } => rows
            .iter()
            .enumerate()
            .filter(|(_, &(lo, hi))| {
                lo < hi && {
                    // Any dirty column inside [lo, hi)?
                    let i = cols.partition_point(|&c| c < lo);
                    i < cols.len() && cols[i] < hi
                }
            })
            .map(|(u, _)| u as u32)
            .collect(),
        Relation::Sparse(s) => (0..n as u32)
            .filter(|&u| {
                let row = s.row(u as usize);
                // Walk whichever side is shorter.
                if row.len() <= cols.len() {
                    row.iter().any(|c| cols.binary_search(c).is_ok())
                } else {
                    cols.iter().any(|c| row.binary_search(c).is_ok())
                }
            })
            .collect(),
        Relation::Dense(m) => (0..n as u32)
            .filter(|&u| {
                cols.iter()
                    .any(|&c| m.get(NodeId(u), NodeId(c)))
            })
            .collect(),
    }
}

/// The rows of a compiled relation whose row intersects the contiguous
/// column range `lo..hi` — used on the *old* relation to find rows that
/// routed through a deleted subtree.
pub(crate) fn rows_intersecting_range(r: &Relation, lo: u32, hi: u32) -> Vec<u32> {
    let n = r.len();
    if lo >= hi {
        return Vec::new();
    }
    match r {
        Relation::Identity(_) => (lo..hi.min(n as u32)).collect(),
        Relation::Full(_) => (0..n as u32).collect(),
        Relation::Interval { rows, .. } => rows
            .iter()
            .enumerate()
            .filter(|(_, &(rlo, rhi))| rlo < rhi && rlo < hi && lo < rhi)
            .map(|(u, _)| u as u32)
            .collect(),
        Relation::Sparse(s) => (0..n as u32)
            .filter(|&u| {
                let row = s.row(u as usize);
                let i = row.partition_point(|&c| c < lo);
                i < row.len() && row[i] < hi
            })
            .collect(),
        Relation::Dense(m) => (0..n as u32)
            .filter(|&u| (lo..hi).any(|c| m.get(NodeId(u), NodeId(c))))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::NodeMatrix;
    use crate::relation::SparseRows;
    use xpath_tree::Tree;

    fn insert_delta() -> (Tree, Tree, EditDelta) {
        let t = Tree::from_terms("a(b(c,d),e)").unwrap();
        let sub = Tree::from_terms("x(y)").unwrap();
        let (t2, delta) = t.insert_subtree(NodeId(1), 1, &sub).unwrap();
        (t, t2, delta)
    }

    fn delete_delta() -> (Tree, Tree, EditDelta) {
        let t = Tree::from_terms("a(b(c,d),e)").unwrap();
        let (t2, delta) = t.delete_subtree(NodeId(1)).unwrap();
        (t, t2, delta)
    }

    #[test]
    fn remap_cols_is_monotone_and_drops_deleted() {
        let (_, _, ins) = insert_delta();
        // Insert at pos=3, count=2 (x,y under b after c,d → positions vary);
        // whatever pos is, the output must be sorted and lossless.
        let cols: Vec<u32> = (0..5).collect();
        let out = remap_cols(&cols, &ins);
        assert_eq!(out.len(), 5);
        assert!(out.windows(2).all(|w| w[0] < w[1]));

        let (_, _, del) = delete_delta();
        let out = remap_cols(&cols, &del);
        // Nodes 1,2,3 (subtree of b) died.
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn remap_row_words_matches_per_bit_remap() {
        for (_, _, delta) in [insert_delta(), delete_delta()] {
            let n_old = delta.old_len;
            let n_new = delta.new_len;
            // Try every single-bit row plus a mixed pattern.
            let mut patterns: Vec<Vec<u32>> = (0..n_old as u32).map(|c| vec![c]).collect();
            patterns.push((0..n_old as u32).step_by(2).collect());
            for cols in patterns {
                let mut old = vec![0u64; n_old.div_ceil(64)];
                for &c in &cols {
                    old[c as usize / 64] |= 1 << (c % 64);
                }
                let new = remap_row_words(&old, &delta, n_old, n_new);
                let mut expect = vec![0u64; n_new.div_ceil(64)];
                for c in remap_cols(&cols, &delta) {
                    expect[c as usize / 64] |= 1 << (c % 64);
                }
                assert_eq!(new, expect, "{:?} cols {cols:?}", delta.kind);
            }
        }
    }

    #[test]
    fn rows_intersecting_agree_across_variants() {
        let n = 9;
        let pairs: &[(u32, u32)] = &[(0, 3), (0, 4), (2, 7), (5, 1), (8, 8)];
        let sparse = Relation::Sparse(SparseRows::from_sorted_pairs(n, pairs));
        let dense = {
            let mut m = NodeMatrix::empty(n);
            for &(u, v) in pairs {
                m.set(NodeId(u), NodeId(v));
            }
            Relation::Dense(m)
        };
        for cols in [vec![3u32], vec![1, 7], vec![0], vec![]] {
            let want = rows_intersecting_cols(&sparse, &cols);
            assert_eq!(rows_intersecting_cols(&dense, &cols), want, "cols {cols:?}");
        }
        for (lo, hi) in [(0u32, 2u32), (3, 5), (7, 9), (4, 4)] {
            let want = rows_intersecting_range(&sparse, lo, hi);
            assert_eq!(rows_intersecting_range(&dense, lo, hi), want, "{lo}..{hi}");
        }
        // Interval sanity: row ranges against both target forms.
        let iv = Relation::Interval {
            n,
            rows: (0..n as u32).map(|u| if u % 2 == 0 { (u, u + 2) } else { (0, 0) }).collect(),
        };
        assert_eq!(rows_intersecting_cols(&iv, &[3]), vec![2]);
        assert_eq!(rows_intersecting_range(&iv, 8, 9), vec![8]);
    }

    #[test]
    fn edit_apply_stats_merge_adds_everything() {
        let mut a = EditApplyStats {
            entries_kept: 1,
            entries_patched: 2,
            entries_rebuilt: 3,
            entries_dropped: 4,
            rows_invalidated: 5,
            rows_total: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.rows_total, 12);
        assert_eq!(a.entries_dropped, 8);
    }
}
