//! Matrix evaluation of PPLbin expressions (Theorem 2).
//!
//! Every [`BinExpr`] is mapped to its Boolean matrix by structural recursion,
//! using the four operations of Section 4 of the paper.  The total cost is
//! `O(|P| · |t|³)` (word-parallelised), dominated by one matrix product per
//! composition node.

use crate::matrix::NodeMatrix;
use xpath_ast::{BinExpr, NameTest};
use xpath_tree::{Axis, NodeId, Tree};

/// Build the step matrix `M_{A::N}` for an axis and name test:
/// `M[u, v] = 1` iff `(u, v) ∈ A(t)` and the label of `v` matches `N`.
pub fn step_matrix(tree: &Tree, axis: Axis, test: &NameTest) -> NodeMatrix {
    let n = tree.len();
    let mut m = NodeMatrix::empty(n);
    match test {
        NameTest::Wildcard => {
            for u in tree.nodes() {
                for v in tree.axis_iter(axis, u) {
                    m.set(u, v);
                }
            }
        }
        NameTest::Name(name) => {
            // Enumerate only nodes with the right label and use the inverse
            // axis, which is usually much sparser than scanning all targets.
            let inverse = axis.inverse();
            for &v in tree.nodes_with_label_str(name) {
                for u in tree.axis_iter(inverse, v) {
                    if axis.relates(tree, u, v) {
                        m.set(u, v);
                    }
                }
            }
        }
    }
    m
}

/// Evaluate a PPLbin expression to its Boolean matrix.
pub fn eval_binexpr(tree: &Tree, expr: &BinExpr) -> NodeMatrix {
    match expr {
        BinExpr::Step(axis, test) => step_matrix(tree, *axis, test),
        BinExpr::Seq(a, b) => {
            let ma = eval_binexpr(tree, a);
            let mb = eval_binexpr(tree, b);
            ma.product(&mb)
        }
        BinExpr::Union(a, b) => {
            let mut ma = eval_binexpr(tree, a);
            let mb = eval_binexpr(tree, b);
            ma.union_with(&mb);
            ma
        }
        BinExpr::Except(p) => {
            let mut m = eval_binexpr(tree, p);
            m.complement();
            m
        }
        BinExpr::Test(p) => eval_binexpr(tree, p).diagonal_filter(),
    }
}

/// Answer the binary query `q^bin_P(t)` of a PPLbin expression: the full
/// relation as a matrix.  This is the entry point used by Theorem 2 and by
/// the HCL oracle.
pub fn answer_binary(tree: &Tree, expr: &BinExpr) -> NodeMatrix {
    eval_binexpr(tree, expr)
}

/// Answer a *unary* query: the nodes reachable from `start` via `expr`.
pub fn answer_unary_from(tree: &Tree, expr: &BinExpr, start: NodeId) -> Vec<NodeId> {
    let m = eval_binexpr(tree, expr);
    m.successors(start).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::parse_path;
    use xpath_naive::{answer_binary as naive_binary, Assignment};
    use xpath_tree::Tree;

    fn tree() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title),paper(title))")
            .unwrap()
    }

    fn check_against_naive(t: &Tree, src: &str) {
        let path = parse_path(src).unwrap();
        let bin = from_variable_free_path(&path).unwrap();
        let matrix = answer_binary(t, &bin);
        let expected = naive_binary(t, &path).unwrap();
        assert_eq!(
            matrix.pairs(),
            expected,
            "matrix evaluation disagrees with the specification on {src:?}"
        );
    }

    #[test]
    fn steps_match_specification() {
        let t = tree();
        for src in [
            "child::book",
            "child::*",
            "descendant::title",
            "descendant::*",
            "parent::*",
            "ancestor::bib",
            "following_sibling::*",
            "preceding_sibling::book",
            "self::book",
            ".",
        ] {
            check_against_naive(&t, src);
        }
    }

    #[test]
    fn compositions_and_unions_match_specification() {
        let t = tree();
        for src in [
            "child::book/child::author",
            "child::*/child::*",
            "descendant::author union descendant::title",
            "child::book/child::title union child::paper/child::title",
            "(child::book union child::paper)/child::title",
        ] {
            check_against_naive(&t, src);
        }
    }

    #[test]
    fn intersect_except_and_filters_match_specification() {
        let t = tree();
        for src in [
            "descendant::* intersect child::*",
            "descendant::* except child::*",
            "child::book[child::author]",
            "child::*[not(child::author)]",
            "child::book[child::author and child::title]",
            "child::*[child::author or child::title]",
            "child::book[child::author[following_sibling::author]]",
            "child::*[. is .]",
            "child::*[not(. is .)]",
        ] {
            check_against_naive(&t, src);
        }
    }

    #[test]
    fn unary_except_is_relation_complement() {
        let t = tree();
        let child = from_variable_free_path(&parse_path("child::*").unwrap()).unwrap();
        let m = answer_binary(&t, &child);
        let mut c = answer_binary(&t, &child.complement());
        assert_eq!(c.count_pairs(), t.len() * t.len() - m.count_pairs());
        c.complement();
        assert_eq!(c, m);
    }

    #[test]
    fn nodes_expression_is_the_full_relation() {
        let t = tree();
        let nodes = answer_binary(&t, &BinExpr::nodes());
        assert_eq!(nodes.count_pairs(), t.len() * t.len());
    }

    #[test]
    fn unary_answers() {
        let t = tree();
        let bin = from_variable_free_path(&parse_path("child::book/child::author").unwrap())
            .unwrap();
        let from_root = answer_unary_from(&t, &bin, t.root());
        assert_eq!(from_root.len(), 3);
        assert!(from_root.iter().all(|&v| t.label_str(v) == "author"));
        let from_leaf = answer_unary_from(&t, &bin, t.nodes_with_label_str("title")[0]);
        assert!(from_leaf.is_empty());
    }

    #[test]
    fn step_matrix_name_test_uses_inverse_enumeration() {
        // Regression guard: named steps must agree with wildcard+label
        // filtering for every axis.
        let t = tree();
        for axis in xpath_tree::axes::ALL_AXES {
            let named = step_matrix(&t, axis, &NameTest::name("title"));
            let wild = step_matrix(&t, axis, &NameTest::Wildcard);
            for u in t.nodes() {
                for v in t.nodes() {
                    let expected = wild.get(u, v) && t.label_str(v) == "title";
                    assert_eq!(named.get(u, v), expected, "axis {axis:?} at ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn deep_tree_sanity() {
        let t = Tree::from_terms("a(b(c(d(e(f)))))").unwrap();
        check_against_naive(&t, "descendant::*/ancestor::*");
        check_against_naive(&t, "descendant::* except descendant::*/descendant::*");
        let _ = Assignment::new(); // keep the naive crate linked in this test module
    }
}
