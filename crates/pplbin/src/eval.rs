//! Matrix evaluation of PPLbin expressions (Theorem 2).
//!
//! Every [`BinExpr`] is mapped to its Boolean matrix by structural recursion,
//! using the four operations of Section 4 of the paper.  The total cost is
//! `O(|P| · |t|³)` (word-parallelised), dominated by one matrix product per
//! composition node.

use crate::matrix::NodeMatrix;
use crate::relation::{KernelMode, KernelStats, Relation, SparseRows};
use xpath_ast::{BinExpr, NameTest};
use xpath_tree::{Axis, NodeId, Tree};

/// End of the preorder interval of every subtree: `ends[u]` is one past the
/// largest node id inside the subtree of `u`, so the descendants of `u` are
/// exactly the id range `(u, ends[u])` (node ids are preorder numbers).
///
/// Computed in one reverse document-order pass: children follow their parent
/// in id order, so every subtree size is final before its parent reads it.
fn subtree_ends(tree: &Tree) -> Vec<u32> {
    let n = tree.len();
    let mut size = vec![1u32; n];
    for u in (1..n).rev() {
        let p = tree
            .parent(NodeId(u as u32))
            .expect("non-root node has a parent")
            .index();
        size[p] += size[u];
    }
    (0..n).map(|u| u as u32 + size[u]).collect()
}

/// Build the step relation for an axis and name test in its natural
/// representation, directly from the tree:
///
/// * `self::*` → [`Relation::Identity`];
/// * `descendant(-or-self)::*` → [`Relation::Interval`] (preorder subtree
///   ranges, no bit ever materialised);
/// * every other wildcard axis → CSR successor lists (`child`, `parent`,
///   `ancestor` chains and the sibling axes all carry `O(|t|)`–`O(depth·|t|)`
///   pairs);
/// * name tests → CSR by inverse-axis enumeration from the labelled nodes.
///
/// Representations that outgrow the CSR break-even densify automatically.
pub fn step_relation(tree: &Tree, axis: Axis, test: &NameTest) -> Relation {
    let n = tree.len();
    match test {
        NameTest::Wildcard => match axis {
            Axis::SelfAxis => Relation::Identity(n),
            Axis::Descendant => {
                let ends = subtree_ends(tree);
                let rows = (0..n).map(|u| (u as u32 + 1, ends[u])).collect();
                Relation::Interval { n, rows }.compact()
            }
            Axis::DescendantOrSelf => {
                let ends = subtree_ends(tree);
                let rows = (0..n).map(|u| (u as u32, ends[u])).collect();
                Relation::Interval { n, rows }.compact()
            }
            _ => {
                let rows = tree.nodes().map(|u| {
                    let mut cols: Vec<u32> = tree.axis_iter(axis, u).map(|v| v.0).collect();
                    // Upward/backward axes iterate in reverse document
                    // order; CSR rows must ascend.
                    cols.sort_unstable();
                    cols
                });
                Relation::Sparse(SparseRows::from_rows(n, rows)).compact()
            }
        },
        NameTest::Name(name) => {
            // Enumerate only nodes with the right label and use the inverse
            // axis, which is usually much sparser than scanning all targets.
            // The inverse is *exact* for every axis except `first-child`
            // (whose inverse is approximated by `parent`), so the per-pair
            // `axis.relates` re-check is only needed there.
            let inverse = axis.inverse();
            let recheck = axis == Axis::FirstChild;
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            for &v in tree.nodes_with_label_str(name) {
                for u in tree.axis_iter(inverse, v) {
                    if !recheck || axis.relates(tree, u, v) {
                        pairs.push((u.0, v.0));
                    }
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            Relation::Sparse(SparseRows::from_sorted_pairs(n, &pairs)).compact()
        }
    }
}

/// Build the step matrix `M_{A::N}` for an axis and name test:
/// `M[u, v] = 1` iff `(u, v) ∈ A(t)` and the label of `v` matches `N`.
///
/// Materialised boundary form of [`step_relation`].
pub fn step_matrix(tree: &Tree, axis: Axis, test: &NameTest) -> NodeMatrix {
    step_relation(tree, axis, test).to_matrix()
}

/// Mode-aware step construction shared by the recursive evaluator and the
/// memoising [`MatrixStore`]: the dense baseline materialises immediately,
/// the adaptive modes keep the natural representation; either way the
/// dispatch is recorded.
///
/// [`MatrixStore`]: crate::store::MatrixStore
pub(crate) fn step_relation_in_mode(
    tree: &Tree,
    axis: Axis,
    test: &NameTest,
    mode: KernelMode,
    stats: &mut KernelStats,
) -> Relation {
    let r = if mode == KernelMode::Dense {
        Relation::Dense(step_relation(tree, axis, test).to_matrix())
    } else {
        step_relation(tree, axis, test)
    };
    stats.record_step(&r);
    r
}

/// Evaluate a PPLbin expression to its adaptive [`Relation`] under a kernel
/// mode, recording every kernel dispatch in `stats`.
pub fn eval_relation(
    tree: &Tree,
    expr: &BinExpr,
    mode: KernelMode,
    stats: &mut KernelStats,
) -> Relation {
    match expr {
        BinExpr::Step(axis, test) => step_relation_in_mode(tree, *axis, test, mode, stats),
        BinExpr::Seq(a, b) => {
            let ra = eval_relation(tree, a, mode, stats);
            let rb = eval_relation(tree, b, mode, stats);
            ra.product(&rb, mode, stats)
        }
        BinExpr::Union(a, b) => {
            let ra = eval_relation(tree, a, mode, stats);
            let rb = eval_relation(tree, b, mode, stats);
            ra.union(&rb, mode, stats)
        }
        BinExpr::Except(p) => eval_relation(tree, p, mode, stats).complement(mode, stats),
        BinExpr::Test(p) => eval_relation(tree, p, mode, stats).diagonal_filter(mode, stats),
    }
}

/// Evaluate a PPLbin expression to its Boolean matrix (adaptive kernels,
/// materialised at the boundary).
pub fn eval_binexpr(tree: &Tree, expr: &BinExpr) -> NodeMatrix {
    eval_relation(tree, expr, KernelMode::default(), &mut KernelStats::default()).to_matrix()
}

/// Answer the binary query `q^bin_P(t)` of a PPLbin expression: the full
/// relation as a matrix.  This is the entry point used by Theorem 2 and by
/// the HCL oracle.
pub fn answer_binary(tree: &Tree, expr: &BinExpr) -> NodeMatrix {
    eval_binexpr(tree, expr)
}

/// Answer a *unary* query: the nodes reachable from `start` via `expr`.
pub fn answer_unary_from(tree: &Tree, expr: &BinExpr, start: NodeId) -> Vec<NodeId> {
    let m = eval_binexpr(tree, expr);
    m.successors(start).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::parse_path;
    use xpath_naive::{answer_binary as naive_binary, Assignment};
    use xpath_tree::Tree;

    fn tree() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title),paper(title))")
            .unwrap()
    }

    fn check_against_naive(t: &Tree, src: &str) {
        let path = parse_path(src).unwrap();
        let bin = from_variable_free_path(&path).unwrap();
        let matrix = answer_binary(t, &bin);
        let expected = naive_binary(t, &path).unwrap();
        assert_eq!(
            matrix.pairs(),
            expected,
            "matrix evaluation disagrees with the specification on {src:?}"
        );
    }

    #[test]
    fn steps_match_specification() {
        let t = tree();
        for src in [
            "child::book",
            "child::*",
            "descendant::title",
            "descendant::*",
            "parent::*",
            "ancestor::bib",
            "following_sibling::*",
            "preceding_sibling::book",
            "self::book",
            ".",
        ] {
            check_against_naive(&t, src);
        }
    }

    #[test]
    fn compositions_and_unions_match_specification() {
        let t = tree();
        for src in [
            "child::book/child::author",
            "child::*/child::*",
            "descendant::author union descendant::title",
            "child::book/child::title union child::paper/child::title",
            "(child::book union child::paper)/child::title",
        ] {
            check_against_naive(&t, src);
        }
    }

    #[test]
    fn intersect_except_and_filters_match_specification() {
        let t = tree();
        for src in [
            "descendant::* intersect child::*",
            "descendant::* except child::*",
            "child::book[child::author]",
            "child::*[not(child::author)]",
            "child::book[child::author and child::title]",
            "child::*[child::author or child::title]",
            "child::book[child::author[following_sibling::author]]",
            "child::*[. is .]",
            "child::*[not(. is .)]",
        ] {
            check_against_naive(&t, src);
        }
    }

    #[test]
    fn unary_except_is_relation_complement() {
        let t = tree();
        let child = from_variable_free_path(&parse_path("child::*").unwrap()).unwrap();
        let m = answer_binary(&t, &child);
        let mut c = answer_binary(&t, &child.complement());
        assert_eq!(c.count_pairs(), t.len() * t.len() - m.count_pairs());
        c.complement();
        assert_eq!(c, m);
    }

    #[test]
    fn nodes_expression_is_the_full_relation() {
        let t = tree();
        let nodes = answer_binary(&t, &BinExpr::nodes());
        assert_eq!(nodes.count_pairs(), t.len() * t.len());
    }

    #[test]
    fn unary_answers() {
        let t = tree();
        let bin = from_variable_free_path(&parse_path("child::book/child::author").unwrap())
            .unwrap();
        let from_root = answer_unary_from(&t, &bin, t.root());
        assert_eq!(from_root.len(), 3);
        assert!(from_root.iter().all(|&v| t.label_str(v) == "author"));
        let from_leaf = answer_unary_from(&t, &bin, t.nodes_with_label_str("title")[0]);
        assert!(from_leaf.is_empty());
    }

    #[test]
    fn step_matrix_name_test_uses_inverse_enumeration() {
        // Regression guard: named steps must agree with wildcard+label
        // filtering for every axis.
        let t = tree();
        for axis in xpath_tree::axes::ALL_AXES {
            let named = step_matrix(&t, axis, &NameTest::name("title"));
            let wild = step_matrix(&t, axis, &NameTest::Wildcard);
            for u in t.nodes() {
                for v in t.nodes() {
                    let expected = wild.get(u, v) && t.label_str(v) == "title";
                    assert_eq!(named.get(u, v), expected, "axis {axis:?} at ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn name_step_drops_redundant_relates_check_safely() {
        // Satellite audit: `axis.inverse()` is the exact converse for every
        // axis except `first-child` (approximated by `parent`), so the
        // per-pair `relates` re-check was dropped everywhere else.  Pin the
        // optimised construction to the fully re-checked reference on every
        // axis and label.
        for terms in [
            "bib(book(author,title),book(author,author,title),paper(title))",
            "a(b(c(d,e),f),b(g),a(b),c)",
        ] {
            let t = Tree::from_terms(terms).unwrap();
            let labels: std::collections::BTreeSet<String> = t
                .nodes()
                .map(|n| t.label_str(n).to_string())
                .collect();
            for axis in xpath_tree::axes::ALL_AXES {
                for label in &labels {
                    let named = step_matrix(&t, axis, &NameTest::name(label));
                    let mut reference = NodeMatrix::empty(t.len());
                    for &v in t.nodes_with_label_str(label) {
                        for u in t.axis_iter(axis.inverse(), v) {
                            if axis.relates(&t, u, v) {
                                reference.set(u, v);
                            }
                        }
                    }
                    assert_eq!(named, reference, "axis {axis:?} label {label}");
                }
            }
        }
    }

    #[test]
    fn step_relations_use_their_natural_representation() {
        let t = tree();
        for (axis, test, expected) in [
            (Axis::SelfAxis, NameTest::Wildcard, "identity"),
            (Axis::Descendant, NameTest::Wildcard, "interval"),
            (Axis::DescendantOrSelf, NameTest::Wildcard, "interval"),
            (Axis::Child, NameTest::Wildcard, "sparse"),
            (Axis::Parent, NameTest::Wildcard, "sparse"),
            (Axis::FollowingSibling, NameTest::Wildcard, "sparse"),
            (Axis::Descendant, NameTest::name("title"), "sparse"),
        ] {
            let r = step_relation(&t, axis, &test);
            assert_eq!(r.variant_name(), expected, "{axis:?} {test:?}");
            assert_eq!(r.to_matrix(), step_matrix(&t, axis, &test));
        }
        // Ancestor chains stay CSR only above the break-even (avg depth <
        // words per row); on this 10-node tree they rightly densify, while a
        // wide shallow tree keeps them sparse.
        let wide = Tree::from_terms(
            "r(a(x,x,x,x,x,x,x),b(x,x,x,x,x,x,x),c(x,x,x,x,x,x,x),d(x,x,x,x,x,x,x),\
             e(x,x,x,x,x,x,x),f(x,x,x,x,x,x,x),g(x,x,x,x,x,x,x),h(x,x,x,x,x,x,x),\
             i(x,x,x,x,x,x,x),j(x,x,x,x,x,x,x))",
        )
        .unwrap();
        assert!(wide.len() > 64, "two words per row");
        let anc = step_relation(&wide, Axis::Ancestor, &NameTest::Wildcard);
        assert_eq!(anc.variant_name(), "sparse");
        assert_eq!(anc.to_matrix(), step_matrix(&wide, Axis::Ancestor, &NameTest::Wildcard));
    }

    #[test]
    fn eval_relation_modes_agree() {
        let t = tree();
        for src in [
            "descendant::*/child::author",
            "child::*/child::*",
            "descendant::* except child::*",
            "child::book[child::author]/child::title",
        ] {
            let bin = from_variable_free_path(&parse_path(src).unwrap()).unwrap();
            let mut reference = None;
            for mode in [
                KernelMode::Dense,
                KernelMode::Adaptive,
                KernelMode::AdaptiveThreaded,
            ] {
                let mut stats = KernelStats::default();
                let got = eval_relation(&t, &bin, mode, &mut stats).to_matrix();
                assert!(stats.total() > 0, "{src} under {mode:?} recorded nothing");
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(&got, want, "{src} under {mode:?}"),
                }
            }
        }
    }

    #[test]
    fn deep_tree_sanity() {
        let t = Tree::from_terms("a(b(c(d(e(f)))))").unwrap();
        check_against_naive(&t, "descendant::*/ancestor::*");
        check_against_naive(&t, "descendant::* except descendant::*/descendant::*");
        let _ = Assignment::new(); // keep the naive crate linked in this test module
    }
}
