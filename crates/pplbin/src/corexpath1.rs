//! The linear-time set-based evaluator for the `except`-free fragment
//! (Core XPath 1.0), after Gottlob–Koch–Pichler.
//!
//! Section 4 of the paper recalls the "main evaluation trick" of Core
//! XPath 1.0: the successor set `S_a(N) = {u' | ∃u ∈ N. a(u, u')}` of a node
//! set under an axis is computable in time `O(|t|)`, which extends to full
//! Core XPath 1.0 expressions and yields `O(|P|·|t|)` unary query answering.
//! The paper also notes that the trick does **not** extend to PPLbin because
//! `S_{except P}(N) ≠ S_P(N)` in general — that is exactly why the matrix
//! algorithm of [`crate::eval`] is needed.  This module implements the
//! set-based algorithm for the `except`-free fragment so that the benchmark
//! harness can exhibit the contrast (experiment E9 in EXPERIMENTS.md).

use std::fmt;
use xpath_ast::{BinExpr, NameTest};
use xpath_tree::{NodeId, NodeSet, Tree};

/// Error raised when the set-based evaluator meets an `except` operator,
/// which is outside Core XPath 1.0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotCoreXPath1 {
    /// Rendering of the offending subexpression.
    pub subexpression: String,
}

impl fmt::Display for NotCoreXPath1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`except` is not part of Core XPath 1.0: `{}`",
            self.subexpression
        )
    }
}

impl std::error::Error for NotCoreXPath1 {}

fn restrict_by_label(tree: &Tree, mut set: NodeSet, test: &NameTest) -> NodeSet {
    match test {
        NameTest::Wildcard => set,
        NameTest::Name(name) => {
            let mut labelled = NodeSet::empty(tree.len());
            for &v in tree.nodes_with_label_str(name) {
                labelled.insert(v);
            }
            set.intersect_with(&labelled);
            set
        }
    }
}

/// `S_P(N)` — the successor set of `N` under an `except`-free PPLbin
/// expression, computed in time `O(|P| · |t|)`.
pub fn succ_set(tree: &Tree, expr: &BinExpr, set: &NodeSet) -> Result<NodeSet, NotCoreXPath1> {
    match expr {
        BinExpr::Step(axis, test) => {
            let moved = tree.axis_successors(*axis, set);
            Ok(restrict_by_label(tree, moved, test))
        }
        BinExpr::Seq(a, b) => {
            let mid = succ_set(tree, a, set)?;
            succ_set(tree, b, &mid)
        }
        BinExpr::Union(a, b) => {
            let mut sa = succ_set(tree, a, set)?;
            let sb = succ_set(tree, b, set)?;
            sa.union_with(&sb);
            Ok(sa)
        }
        BinExpr::Test(p) => {
            // [P] is a partial identity: keep the nodes of `set` that have a
            // P-successor.
            let holds = has_successor_set(tree, p)?;
            let mut out = set.clone();
            out.intersect_with(&holds);
            Ok(out)
        }
        BinExpr::Except(_) => Err(NotCoreXPath1 {
            subexpression: expr.to_string(),
        }),
    }
}

/// The set `{u | ∃v. (u, v) ∈ ⟦P⟧}` of nodes with a `P`-successor, in time
/// `O(|P| · |t|)`, by evaluating the *inverse* expression from the full node
/// set.
pub fn has_successor_set(tree: &Tree, expr: &BinExpr) -> Result<NodeSet, NotCoreXPath1> {
    let inv = inverse(expr)?;
    succ_set(tree, &inv, &NodeSet::full(tree.len()))
}

/// The inverse relation of an `except`-free PPLbin expression, as an
/// expression of the same fragment and linear size.
pub fn inverse(expr: &BinExpr) -> Result<BinExpr, NotCoreXPath1> {
    match expr {
        BinExpr::Step(axis, test) => {
            // (A::N)^{-1} relates v to u when A(u,v) and N(v): moving
            // backwards we must first check the label of the *start* node,
            // then move along the inverse axis.  Encode the label check as a
            // self-step composed before the inverse axis step.
            let label_check = BinExpr::Step(xpath_tree::Axis::SelfAxis, test.clone());
            let back = BinExpr::Step(axis.inverse(), NameTest::Wildcard);
            Ok(match test {
                NameTest::Wildcard => back,
                NameTest::Name(_) => label_check.then(back),
            })
        }
        BinExpr::Seq(a, b) => Ok(inverse(b)?.then(inverse(a)?)),
        BinExpr::Union(a, b) => Ok(inverse(a)?.or(inverse(b)?)),
        BinExpr::Test(p) => Ok(BinExpr::Test(Box::new(p.as_ref().clone()))),
        BinExpr::Except(_) => Err(NotCoreXPath1 {
            subexpression: expr.to_string(),
        }),
    }
}

/// Answer a unary Core XPath 1.0 query from the document root:
/// `S_P({root})`, in time `O(|P|·|t|)`.
pub fn unary_from_root(tree: &Tree, expr: &BinExpr) -> Result<Vec<NodeId>, NotCoreXPath1> {
    let start = NodeSet::singleton(tree.len(), tree.root());
    Ok(succ_set(tree, expr, &start)?.iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::answer_binary;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::parse_path;
    use xpath_tree::Tree;

    fn tree() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title),paper(title))")
            .unwrap()
    }

    fn bin(src: &str) -> BinExpr {
        from_variable_free_path(&parse_path(src).unwrap()).unwrap()
    }

    fn set_of(tree: &Tree, nodes: &[NodeId]) -> NodeSet {
        NodeSet::from_iter(tree.len(), nodes.iter().copied())
    }

    #[test]
    fn succ_set_agrees_with_matrix_engine() {
        let t = tree();
        for src in [
            "child::book",
            "child::book/child::author",
            "descendant::title",
            "child::book[child::author]/child::title",
            "(child::book union child::paper)/child::title",
            "child::*[child::author or child::title]",
            "ancestor::*",
            "following_sibling::*/child::title",
        ] {
            let e = bin(src);
            let matrix = answer_binary(&t, &e);
            // From every singleton start set...
            for u in t.nodes() {
                let got = succ_set(&t, &e, &set_of(&t, &[u])).unwrap();
                let expected: Vec<NodeId> = matrix.successors(u).collect();
                assert_eq!(got.iter().collect::<Vec<_>>(), expected, "{src} from {u}");
            }
            // ...and from the full set.
            let got_full = succ_set(&t, &e, &NodeSet::full(t.len())).unwrap();
            let mut expected_full = NodeSet::empty(t.len());
            for (_, v) in matrix.pairs() {
                expected_full.insert(v);
            }
            assert_eq!(got_full, expected_full, "{src} from full set");
        }
    }

    #[test]
    fn has_successor_set_agrees_with_matrix_rows() {
        let t = tree();
        for src in [
            "child::author",
            "child::book/child::author",
            "descendant::title",
            "parent::book",
            "child::book[child::author[following_sibling::author]]",
        ] {
            let e = bin(src);
            let got = has_successor_set(&t, &e).unwrap();
            let expected = answer_binary(&t, &e).nonempty_rows();
            assert_eq!(got, expected, "{src}");
        }
    }

    #[test]
    fn except_is_rejected() {
        let e = bin("descendant::* except child::*");
        assert!(succ_set(&tree(), &e, &NodeSet::full(tree().len())).is_err());
        assert!(inverse(&e).is_err());
        let err = has_successor_set(&tree(), &e).unwrap_err();
        assert!(err.to_string().contains("except"));
    }

    #[test]
    fn unary_from_root_selects_expected_nodes() {
        let t = tree();
        let titles = unary_from_root(&t, &bin("child::book/child::title")).unwrap();
        assert_eq!(titles.len(), 2);
        assert!(titles.iter().all(|&v| t.label_str(v) == "title"));
        let all_titles = unary_from_root(&t, &bin("descendant::title")).unwrap();
        assert_eq!(all_titles.len(), 3);
    }

    #[test]
    fn inverse_of_named_steps_checks_the_target_label() {
        let t = tree();
        let e = bin("child::title");
        let inv = inverse(&e).unwrap();
        // The inverse relates each title to its parent; computing successors
        // of the title set under the inverse must give exactly the parents.
        let titles = set_of(&t, t.nodes_with_label_str("title"));
        let parents = succ_set(&t, &inv, &titles).unwrap();
        let expected: Vec<NodeId> = t
            .nodes_with_label_str("title")
            .iter()
            .map(|&v| t.parent(v).unwrap())
            .collect();
        let mut expected_set = NodeSet::empty(t.len());
        for p in expected {
            expected_set.insert(p);
        }
        assert_eq!(parents, expected_set);
        // Starting from non-title nodes the inverse yields nothing.
        let authors = set_of(&t, t.nodes_with_label_str("author"));
        assert!(succ_set(&t, &inv, &authors).unwrap().is_empty());
    }
}
