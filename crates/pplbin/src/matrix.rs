//! Bit-packed Boolean node×node matrices.
//!
//! `M[u, v] = 1` means the pair `(u, v)` belongs to the binary query.  Rows
//! are stored contiguously as `u64` words, so the Boolean matrix product —
//! the dominant cost of the PPLbin algorithm — processes 64 columns per word
//! operation while retaining the cubic asymptotics of the paper's analysis.

use std::fmt;
use xpath_tree::{NodeId, NodeSet};

/// Hard ceiling on a single dense materialisation, in bytes.  At |t| = 1M an
/// n×n bit matrix is ~125 GB; any kernel that would cross this limit reports
/// a [`CapacityError`] instead of attempting (and aborting on) the
/// allocation.  2 GiB admits every |t| ≤ ~131k dense fallback while keeping
/// the 1M stress band strictly symbolic.
pub const DENSE_BYTE_LIMIT: usize = 2 * 1024 * 1024 * 1024;

/// A dense n×n materialisation was refused because it would exceed
/// [`DENSE_BYTE_LIMIT`] (or overflow the address space outright).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityError {
    /// Domain size whose dense form was requested.
    pub n: usize,
    /// Bytes the n×n bit matrix would need (may exceed `usize`).
    pub required_bytes: u128,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dense {n}×{n} bit matrix needs {req} bytes, over the {limit}-byte limit",
            n = self.n,
            req = self.required_bytes,
            limit = DENSE_BYTE_LIMIT
        )
    }
}

impl std::error::Error for CapacityError {}

/// Check that a dense `n`×`n` bit matrix may be materialised.  All checked
/// arithmetic — `n` around `u32::MAX` would overflow `n * stride` long
/// before the allocator gets a say.
pub fn dense_guard(n: usize) -> Result<(), CapacityError> {
    let words = (n as u128) * (n.div_ceil(64) as u128);
    let required_bytes = words * 8;
    if required_bytes > DENSE_BYTE_LIMIT as u128 {
        return Err(CapacityError { n, required_bytes });
    }
    Ok(())
}

/// A square Boolean matrix indexed by node ids.
#[derive(Clone, PartialEq, Eq)]
pub struct NodeMatrix {
    /// Number of nodes (rows == columns == `n`).
    n: usize,
    /// Words per row.
    stride: usize,
    /// Row-major bit storage, `n * stride` words.
    words: Vec<u64>,
}

impl NodeMatrix {
    /// The all-zero matrix (the empty relation).
    pub fn empty(n: usize) -> NodeMatrix {
        let stride = n.div_ceil(64);
        let len = n
            .checked_mul(stride)
            .expect("matrix dimensions overflow the address space");
        NodeMatrix {
            n,
            stride,
            words: vec![0; len],
        }
    }

    /// Capacity-checked [`NodeMatrix::empty`]: refuses allocations over
    /// [`DENSE_BYTE_LIMIT`] instead of aborting in the allocator.
    pub fn try_empty(n: usize) -> Result<NodeMatrix, CapacityError> {
        dense_guard(n)?;
        Ok(NodeMatrix::empty(n))
    }

    /// The all-one matrix (the full relation `nodes(t)²`).
    pub fn full(n: usize) -> NodeMatrix {
        let mut m = NodeMatrix::empty(n);
        for w in m.words.iter_mut() {
            *w = u64::MAX;
        }
        m.clear_tails();
        m
    }

    /// The identity relation (`self::*`).
    pub fn identity(n: usize) -> NodeMatrix {
        let mut m = NodeMatrix::empty(n);
        for i in 0..n {
            m.set(NodeId(i as u32), NodeId(i as u32));
        }
        m
    }

    fn clear_tails(&mut self) {
        let extra = self.stride * 64 - self.n;
        if extra == 0 || self.stride == 0 {
            return;
        }
        let mask = u64::MAX >> extra;
        for r in 0..self.n {
            self.words[r * self.stride + self.stride - 1] &= mask;
        }
    }

    /// Number of rows/columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix has zero rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Approximate heap footprint of the bit storage, in bytes (used by the
    /// corpus layer's memory-budget accounting).
    pub fn approx_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    #[inline]
    fn row_range(&self, u: NodeId) -> std::ops::Range<usize> {
        let start = u.index() * self.stride;
        start..start + self.stride
    }

    /// Set `M[u, v] = 1`.
    #[inline]
    pub fn set(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(u.index() < self.n && v.index() < self.n);
        self.words[u.index() * self.stride + v.index() / 64] |= 1u64 << (v.index() % 64);
    }

    /// Read `M[u, v]`.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> bool {
        debug_assert!(u.index() < self.n && v.index() < self.n);
        (self.words[u.index() * self.stride + v.index() / 64] >> (v.index() % 64)) & 1 == 1
    }

    /// The raw words of row `u`.
    pub fn row_words(&self, u: NodeId) -> &[u64] {
        &self.words[self.row_range(u)]
    }

    /// OR the row `v` of `other` into row `u` of `self` (word-parallel).
    pub(crate) fn or_row_from(&mut self, u: NodeId, other: &NodeMatrix, v: NodeId) {
        debug_assert_eq!(self.n, other.n);
        let dst = u.index() * self.stride;
        let src = v.index() * other.stride;
        for k in 0..self.stride {
            self.words[dst + k] |= other.words[src + k];
        }
    }

    /// OR a raw word slice into row `u` (for same-crate kernels).
    pub(crate) fn or_words_into_row(&mut self, u: NodeId, words: &[u64]) {
        debug_assert_eq!(words.len(), self.stride);
        let dst = u.index() * self.stride;
        for (k, &w) in words.iter().enumerate() {
            self.words[dst + k] |= w;
        }
    }

    /// Set every column of `lo..hi` in row `u` using two boundary masks and
    /// whole-word fills for the interior.
    pub fn fill_row_range(&mut self, u: NodeId, lo: usize, hi: usize) {
        debug_assert!(hi <= self.n);
        if lo >= hi {
            return;
        }
        let row = u.index() * self.stride;
        let (w_lo, b_lo) = (lo / 64, lo % 64);
        let (w_hi, b_hi) = ((hi - 1) / 64, (hi - 1) % 64);
        let lo_mask = u64::MAX << b_lo;
        let hi_mask = u64::MAX >> (63 - b_hi);
        if w_lo == w_hi {
            self.words[row + w_lo] |= lo_mask & hi_mask;
        } else {
            self.words[row + w_lo] |= lo_mask;
            for w in &mut self.words[row + w_lo + 1..row + w_hi] {
                *w = u64::MAX;
            }
            self.words[row + w_hi] |= hi_mask;
        }
    }

    /// Iterate over the columns set in row `u` (the successors of `u`).
    ///
    /// The iterator walks the packed words directly — no allocation per word
    /// (or at all), so it is safe to use inside the product/transpose hot
    /// paths.
    pub fn successors(&self, u: NodeId) -> SuccessorIter<'_> {
        SuccessorIter {
            words: self.row_words(u),
            next_word: 0,
            base: 0,
            current: 0,
        }
    }

    /// Number of pairs in the relation.
    pub fn count_pairs(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the relation empty?
    pub fn is_relation_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Does row `u` contain at least one 1?
    pub fn row_nonempty(&self, u: NodeId) -> bool {
        self.row_words(u).iter().any(|&w| w != 0)
    }

    /// Element-wise union (`self ∨= other`).
    pub fn union_with(&mut self, other: &NodeMatrix) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Element-wise intersection (`self ∧= other`).
    pub fn intersect_with(&mut self, other: &NodeMatrix) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Element-wise difference (`self ∧= ¬other`).
    pub fn difference_with(&mut self, other: &NodeMatrix) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Complement every entry (`¬M`, the `except` operator).
    pub fn complement(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.clear_tails();
    }

    /// Boolean matrix product `self · other` (relation composition):
    /// `(A·B)[u, w] = ⋁_v A[u, v] ∧ B[v, w]`.
    ///
    /// Implementation: for every set bit `v` of row `u` of `A`, OR row `v`
    /// of `B` into row `u` of the result — `O(n³ / 64)` word operations.
    pub fn product(&self, other: &NodeMatrix) -> NodeMatrix {
        debug_assert_eq!(self.n, other.n);
        let mut out = NodeMatrix::empty(self.n);
        for u in 0..self.n {
            let a_row = &self.words[u * self.stride..(u + 1) * self.stride];
            let out_row_start = u * self.stride;
            for (wi, &word) in a_row.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let v = wi * 64 + bit;
                    let b_row_start = v * other.stride;
                    for k in 0..self.stride {
                        out.words[out_row_start + k] |= other.words[b_row_start + k];
                    }
                }
            }
        }
        out
    }

    /// Blocked Boolean matrix product: Four-Russians-style row-combination
    /// lookup over 8-row groups of `other`, on top of the existing 64-bit
    /// word parallelism.
    ///
    /// For each group `g` of eight consecutive rows of `B`, the 256 possible
    /// OR-combinations of those rows are tabulated once (each entry extends a
    /// smaller combination by one row, so the table costs 256 row-ORs, not
    /// 8·256).  Row `u` of the output then absorbs the whole group with a
    /// single table lookup indexed by byte `g` of row `u` of `A` — eight
    /// columns per probe instead of one per set bit, an ~8× word-operation
    /// saving on dense operands while zero bytes skip in O(1).
    pub fn product_blocked(&self, other: &NodeMatrix) -> NodeMatrix {
        debug_assert_eq!(self.n, other.n);
        let mut out = NodeMatrix::empty(self.n);
        if self.n == 0 {
            return out;
        }
        let stride = self.stride;
        let mut table = vec![0u64; 256 * stride];
        for g in 0..self.n.div_ceil(8) {
            build_group_table(&other.words, self.n, stride, g, &mut table);
            apply_group_table(&self.words, &mut out.words, stride, g, &table);
        }
        out
    }

    /// Boolean matrix product with the output rows computed in parallel
    /// blocks by scoped threads, each running the blocked Four-Russians
    /// kernel of [`NodeMatrix::product_blocked`] over its own row range
    /// (with a private combination table, so no synchronisation at all).
    ///
    /// Falls back to the serial blocked product when the matrix is small or
    /// only one hardware thread is available — thread spawn overhead
    /// dominates below a few hundred rows.
    pub fn product_threaded(&self, other: &NodeMatrix) -> NodeMatrix {
        debug_assert_eq!(self.n, other.n);
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if self.n < PARALLEL_MIN_DIM || threads < 2 {
            return self.product_blocked(other);
        }
        let mut out = NodeMatrix::empty(self.n);
        let n = self.n;
        let stride = self.stride;
        let rows_per_block = n.div_ceil(threads.min(n));
        let a = &self.words;
        let b = &other.words;
        std::thread::scope(|scope| {
            for (block, out_block) in out.words.chunks_mut(rows_per_block * stride).enumerate() {
                scope.spawn(move || {
                    let first_row = block * rows_per_block;
                    let block_rows = out_block.len() / stride;
                    let mut table = vec![0u64; 256 * stride];
                    for g in 0..n.div_ceil(8) {
                        build_group_table(b, n, stride, g, &mut table);
                        apply_group_table(
                            &a[first_row * stride..(first_row + block_rows) * stride],
                            out_block,
                            stride,
                            g,
                            &table,
                        );
                    }
                });
            }
        });
        out
    }

    /// Reference implementation of the product using a triple loop over
    /// individual entries.  Used by tests and by the ablation benchmark that
    /// compares the word-parallel product against the naïve cubic one.
    pub fn product_naive(&self, other: &NodeMatrix) -> NodeMatrix {
        debug_assert_eq!(self.n, other.n);
        let mut out = NodeMatrix::empty(self.n);
        for u in 0..self.n {
            for v in 0..self.n {
                if !self.get(NodeId(u as u32), NodeId(v as u32)) {
                    continue;
                }
                for w in 0..self.n {
                    if other.get(NodeId(v as u32), NodeId(w as u32)) {
                        out.set(NodeId(u as u32), NodeId(w as u32));
                    }
                }
            }
        }
        out
    }

    /// The `[M]` operation of the paper: `[M][u, u'] = 1` iff `u = u'` and
    /// row `u` of `M` is non-empty.
    pub fn diagonal_filter(&self) -> NodeMatrix {
        let mut out = NodeMatrix::empty(self.n);
        for u in 0..self.n {
            let id = NodeId(u as u32);
            if self.row_nonempty(id) {
                out.set(id, id);
            }
        }
        out
    }

    /// Transpose (the inverse relation), computed tile-by-tile: each 64×64
    /// bit block is gathered into registers, transposed with the word-level
    /// butterfly network, and written to the mirrored block of the output.
    /// All-zero tiles are skipped, so sparse matrices transpose in time
    /// proportional to the words scanned rather than the bits set.
    pub fn transpose(&self) -> NodeMatrix {
        let mut out = NodeMatrix::empty(self.n);
        let stride = self.stride;
        let mut tile = [0u64; 64];
        for bi in 0..stride {
            let row0 = bi * 64;
            let rows = 64.min(self.n - row0);
            for bj in 0..stride {
                let mut any = 0u64;
                for (k, t) in tile.iter_mut().enumerate() {
                    *t = if k < rows {
                        self.words[(row0 + k) * stride + bj]
                    } else {
                        0
                    };
                    any |= *t;
                }
                if any == 0 {
                    continue;
                }
                transpose64(&mut tile);
                let col0 = bj * 64;
                let cols = 64.min(self.n - col0);
                for (k, &t) in tile.iter().take(cols).enumerate() {
                    if t != 0 {
                        out.words[(col0 + k) * stride + bi] = t;
                    }
                }
            }
        }
        out
    }

    /// The pre-optimisation transpose: one `set` call per stored bit,
    /// driven by the [`NodeMatrix::successors`] iterator.  Kept as the
    /// reference implementation for the property tests pinning the
    /// word-blocked [`NodeMatrix::transpose`].
    pub fn transpose_naive(&self) -> NodeMatrix {
        let mut out = NodeMatrix::empty(self.n);
        for u in 0..self.n {
            let id = NodeId(u as u32);
            for v in self.successors(id) {
                out.set(v, id);
            }
        }
        out
    }

    /// The set of start nodes with at least one successor
    /// (`{u | ∃v. M[u,v]}`).
    pub fn nonempty_rows(&self) -> NodeSet {
        let mut s = NodeSet::empty(self.n);
        for u in 0..self.n {
            let id = NodeId(u as u32);
            if self.row_nonempty(id) {
                s.insert(id);
            }
        }
        s
    }

    /// Collect the relation as a sorted vector of pairs (for tests and small
    /// result reporting).
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.count_pairs());
        for u in 0..self.n {
            let id = NodeId(u as u32);
            for v in self.successors(id) {
                out.push((id, v));
            }
        }
        out
    }
}

/// Minimum dimension for which [`NodeMatrix::product_threaded`] actually
/// spawns threads; below this the serial product wins.
pub const PARALLEL_MIN_DIM: usize = 256;

/// Tabulate the 256 OR-combinations of the eight `B` rows `8g .. 8g+8`
/// (rows past the domain count as zero).  Entry `c` extends entry
/// `c & (c-1)` — the combination without `c`'s lowest set bit — by row
/// `8g + trailing_zeros(c)`, so the whole table costs 255 row-ORs.
fn build_group_table(b: &[u64], n: usize, stride: usize, g: usize, table: &mut [u64]) {
    table[..stride].fill(0);
    let rows = (n - 8 * g).min(8);
    for c in 1..256usize {
        let i = c.trailing_zeros() as usize;
        let rest = (c & (c - 1)) * stride;
        let dst = c * stride;
        if i >= rows {
            table.copy_within(rest..rest + stride, dst);
            continue;
        }
        let row = (8 * g + i) * stride;
        for k in 0..stride {
            table[dst + k] = table[rest + k] | b[row + k];
        }
    }
}

/// OR the tabulated combinations of one 8-row group into the output: row
/// `r` of `out_rows` absorbs `table[byte g of row r of a_rows]`.  All-zero
/// bytes (no set bit in those eight columns) skip in O(1).
fn apply_group_table(a_rows: &[u64], out_rows: &mut [u64], stride: usize, g: usize, table: &[u64]) {
    let word = g / 8;
    let shift = (g % 8) * 8;
    for (a_row, out_row) in a_rows
        .chunks_exact(stride)
        .zip(out_rows.chunks_exact_mut(stride))
    {
        let byte = ((a_row[word] >> shift) & 0xFF) as usize;
        if byte == 0 {
            continue;
        }
        let t = &table[byte * stride..(byte + 1) * stride];
        for (o, &w) in out_row.iter_mut().zip(t) {
            *o |= w;
        }
    }
}

/// Transpose a 64×64 bit block in place (bit `j` of `a[k]` swaps with bit
/// `k` of `a[j]`) via the log-depth butterfly of Hacker's Delight §7-3:
/// swap 32×32 half-blocks, then 16×16, … down to single bits, each level in
/// 64 word operations.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k | j] ^= t;
            a[k] ^= t << j;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Allocation-free iterator over the set columns of one matrix row, in
/// ascending column order.  Returned by [`NodeMatrix::successors`].
pub struct SuccessorIter<'a> {
    words: &'a [u64],
    /// Index of the next word to load.
    next_word: usize,
    /// Column of bit 0 of the word currently being drained.
    base: usize,
    /// Remaining bits of the current word.
    current: u64,
}

impl Iterator for SuccessorIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        while self.current == 0 {
            let &w = self.words.get(self.next_word)?;
            self.base = self.next_word * 64;
            self.next_word += 1;
            self.current = w;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(NodeId((self.base + bit) as u32))
    }
}

impl fmt::Debug for NodeMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "NodeMatrix({}x{})", self.n, self.n)?;
        if self.n <= 32 {
            for u in 0..self.n {
                let row: String = (0..self.n)
                    .map(|v| {
                        if self.get(NodeId(u as u32), NodeId(v as u32)) {
                            '1'
                        } else {
                            '.'
                        }
                    })
                    .collect();
                writeln!(f, "  {row}")?;
            }
        } else {
            writeln!(f, "  ({} pairs)", self.count_pairs())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(n: usize, pairs: &[(u32, u32)]) -> NodeMatrix {
        let mut out = NodeMatrix::empty(n);
        for &(u, v) in pairs {
            out.set(NodeId(u), NodeId(v));
        }
        out
    }

    #[test]
    fn set_get_count() {
        let mut a = NodeMatrix::empty(70);
        assert!(a.is_relation_empty());
        a.set(NodeId(0), NodeId(69));
        a.set(NodeId(69), NodeId(0));
        assert!(a.get(NodeId(0), NodeId(69)));
        assert!(!a.get(NodeId(69), NodeId(69)));
        assert_eq!(a.count_pairs(), 2);
        assert_eq!(a.pairs(), vec![(NodeId(0), NodeId(69)), (NodeId(69), NodeId(0))]);
    }

    #[test]
    fn identity_and_full() {
        let id = NodeMatrix::identity(65);
        assert_eq!(id.count_pairs(), 65);
        let full = NodeMatrix::full(65);
        assert_eq!(full.count_pairs(), 65 * 65);
        let mut c = full.clone();
        c.complement();
        assert!(c.is_relation_empty());
    }

    #[test]
    fn complement_respects_domain_tail() {
        for n in [1, 63, 64, 65, 130] {
            let mut m = NodeMatrix::empty(n);
            m.complement();
            assert_eq!(m.count_pairs(), n * n, "n={n}");
        }
    }

    #[test]
    fn product_matches_naive_product() {
        // Pseudo-random sparse matrices over a domain straddling a word
        // boundary.
        let n = 70;
        let mut a = NodeMatrix::empty(n);
        let mut b = NodeMatrix::empty(n);
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..300 {
            a.set(NodeId((next() % n) as u32), NodeId((next() % n) as u32));
            b.set(NodeId((next() % n) as u32), NodeId((next() % n) as u32));
        }
        let fast = a.product(&b);
        let slow = a.product_naive(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn product_is_relation_composition() {
        let a = m(5, &[(0, 1), (1, 2)]);
        let b = m(5, &[(1, 3), (2, 4)]);
        let c = a.product(&b);
        assert_eq!(c.pairs(), vec![(NodeId(0), NodeId(3)), (NodeId(1), NodeId(4))]);
        // Identity is neutral.
        assert_eq!(a.product(&NodeMatrix::identity(5)), a);
        assert_eq!(NodeMatrix::identity(5).product(&a), a);
    }

    #[test]
    fn diagonal_filter_selects_rows_with_successors() {
        let a = m(4, &[(0, 3), (2, 1)]);
        let d = a.diagonal_filter();
        assert_eq!(d.pairs(), vec![(NodeId(0), NodeId(0)), (NodeId(2), NodeId(2))]);
        assert_eq!(d.nonempty_rows().iter().collect::<Vec<_>>(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn union_intersection_difference() {
        let mut a = m(4, &[(0, 1), (1, 2)]);
        let b = m(4, &[(1, 2), (2, 3)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count_pairs(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.pairs(), vec![(NodeId(1), NodeId(2))]);
        a.difference_with(&b);
        assert_eq!(a.pairs(), vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn transpose_inverts_pairs() {
        let a = m(4, &[(0, 1), (2, 3)]);
        let t = a.transpose();
        assert_eq!(t.pairs(), vec![(NodeId(1), NodeId(0)), (NodeId(3), NodeId(2))]);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn successors_iteration() {
        let a = m(70, &[(5, 0), (5, 64), (5, 69)]);
        let succ: Vec<_> = a.successors(NodeId(5)).collect();
        assert_eq!(succ, vec![NodeId(0), NodeId(64), NodeId(69)]);
        assert!(a.successors(NodeId(6)).next().is_none());
    }

    #[test]
    fn blocked_transpose_matches_per_bit_transpose() {
        for n in [1usize, 5, 63, 64, 65, 130, 200] {
            let mut a = NodeMatrix::empty(n);
            let mut state = 0x5EEDu64.wrapping_add(n as u64);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize
            };
            for _ in 0..3 * n {
                a.set(NodeId((next() % n) as u32), NodeId((next() % n) as u32));
            }
            assert_eq!(a.transpose(), a.transpose_naive(), "n={n}");
        }
    }

    #[test]
    fn blocked_product_matches_naive_product_at_word_boundaries() {
        // The Four-Russians kernel groups columns in bytes and rows in
        // words; every off-by-one shows up at n ∈ {1, 7, 8, 9, 63, 64, 65}.
        for n in [1usize, 7, 8, 9, 63, 64, 65, 130] {
            let mut a = NodeMatrix::empty(n);
            let mut b = NodeMatrix::empty(n);
            let mut state = 0xB10Cu64.wrapping_add(n as u64);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize
            };
            for _ in 0..4 * n {
                a.set(NodeId((next() % n) as u32), NodeId((next() % n) as u32));
                b.set(NodeId((next() % n) as u32), NodeId((next() % n) as u32));
            }
            assert_eq!(a.product_blocked(&b), a.product_naive(&b), "n={n}");
        }
        assert_eq!(
            NodeMatrix::empty(0).product_blocked(&NodeMatrix::empty(0)).len(),
            0
        );
    }

    #[test]
    fn blocked_product_handles_dense_operands() {
        let n = 100;
        let full = NodeMatrix::full(n);
        let id = NodeMatrix::identity(n);
        assert_eq!(full.product_blocked(&id), full);
        assert_eq!(id.product_blocked(&full), full);
        assert_eq!(full.product_blocked(&full), full);
    }

    #[test]
    fn dense_guard_rejects_absurd_allocations() {
        assert!(dense_guard(0).is_ok());
        assert!(dense_guard(1024).is_ok());
        // 1M nodes → ~125 GB: must refuse, not abort.
        let err = dense_guard(1_000_000).unwrap_err();
        assert_eq!(err.n, 1_000_000);
        assert!(err.required_bytes > DENSE_BYTE_LIMIT as u128);
        assert!(err.to_string().contains("1000000"));
        // Sizes that would overflow `n * stride` on 32-bit-ish math are
        // still reported, not wrapped.
        assert!(dense_guard(usize::MAX / 2).is_err());
        assert!(NodeMatrix::try_empty(1_000_000).is_err());
        assert_eq!(NodeMatrix::try_empty(64).unwrap().len(), 64);
    }

    #[test]
    fn threaded_product_matches_serial_product() {
        // Exercise both the serial fallback (n < PARALLEL_MIN_DIM) and the
        // scoped-thread path.
        for n in [65usize, PARALLEL_MIN_DIM + 13] {
            let mut a = NodeMatrix::empty(n);
            let mut b = NodeMatrix::empty(n);
            let mut state = 0xF00Du64.wrapping_add(n as u64);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize
            };
            for _ in 0..4 * n {
                a.set(NodeId((next() % n) as u32), NodeId((next() % n) as u32));
                b.set(NodeId((next() % n) as u32), NodeId((next() % n) as u32));
            }
            assert_eq!(a.product_threaded(&b), a.product(&b), "n={n}");
        }
    }

    #[test]
    fn fill_row_range_matches_per_bit_sets() {
        for n in [1usize, 63, 64, 65, 130] {
            for (lo, hi) in [(0, 0), (0, 1), (0, n), (n / 3, 2 * n / 3 + 1), (n - 1, n)] {
                let mut filled = NodeMatrix::empty(n);
                filled.fill_row_range(NodeId(0), lo, hi);
                let mut reference = NodeMatrix::empty(n);
                for v in lo..hi {
                    reference.set(NodeId(0), NodeId(v as u32));
                }
                assert_eq!(filled, reference, "n={n} range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn debug_rendering_small_and_large() {
        let a = m(3, &[(0, 1)]);
        let s = format!("{a:?}");
        assert!(s.contains(".1."));
        let big = NodeMatrix::empty(100);
        assert!(format!("{big:?}").contains("pairs"));
    }

    // -- word-boundary edge cases ------------------------------------------
    //
    // The bit-packed storage strides in 64-bit words; every off-by-one in
    // `clear_tails` / `stride` shows up exactly at n ∈ {0, 1, 63, 64, 65}.

    /// Word counts per row for the boundary sizes.
    #[test]
    fn stride_at_word_boundaries() {
        for (n, words_per_row) in [(0usize, 0usize), (1, 1), (63, 1), (64, 1), (65, 2)] {
            let m = NodeMatrix::empty(n);
            assert_eq!(m.stride, words_per_row, "n={n}");
            assert_eq!(m.words.len(), n * words_per_row, "n={n}");
            assert_eq!(m.len(), n);
            assert_eq!(m.count_pairs(), 0, "n={n}");
            if n >= 1 {
                assert_eq!(m.row_words(NodeId(0)).len(), words_per_row, "n={n}");
            }
        }
    }

    #[test]
    fn zero_sized_matrix_supports_every_operation() {
        let mut z = NodeMatrix::empty(0);
        assert!(z.is_empty());
        assert!(z.is_relation_empty());
        assert_eq!(z.count_pairs(), 0);
        assert!(z.pairs().is_empty());
        z.complement();
        assert_eq!(z.count_pairs(), 0, "complement must not invent bits");
        let f = NodeMatrix::full(0);
        assert_eq!(f.count_pairs(), 0);
        assert_eq!(z.product(&f).count_pairs(), 0);
        assert_eq!(z.transpose().len(), 0);
        assert_eq!(z.diagonal_filter().len(), 0);
        assert_eq!(NodeMatrix::identity(0).count_pairs(), 0);
    }

    #[test]
    fn single_node_matrix() {
        let mut one = NodeMatrix::full(1);
        assert_eq!(one.count_pairs(), 1);
        assert!(one.get(NodeId(0), NodeId(0)));
        assert_eq!(one, NodeMatrix::identity(1));
        assert_eq!(one.product(&one), one);
        assert_eq!(one.transpose(), one);
        one.complement();
        assert!(one.is_relation_empty());
    }

    #[test]
    fn full_clears_tail_bits_exactly() {
        // The tail mask is what separates `count_pairs` from over-counting:
        // at n=63 one spare bit per row, at n=64 none, at n=65 63 spare bits
        // in the second word of each row.
        for (n, last_word_mask) in [
            (1usize, 1u64),
            (63, u64::MAX >> 1),
            (64, u64::MAX),
            (65, 1),
        ] {
            let f = NodeMatrix::full(n);
            assert_eq!(f.count_pairs(), n * n, "n={n}");
            for u in 0..n {
                let row = f.row_words(NodeId(u as u32));
                assert_eq!(*row.last().unwrap(), last_word_mask, "n={n} row {u}");
                for w in &row[..row.len() - 1] {
                    assert_eq!(*w, u64::MAX, "n={n} row {u} interior word");
                }
            }
            // The last column must be populated and column n (if it existed)
            // must not leak into `successors`.
            let succ: Vec<NodeId> = f.successors(NodeId(0)).collect();
            assert_eq!(succ.len(), n, "n={n}");
            assert_eq!(succ.last(), Some(&NodeId(n as u32 - 1)), "n={n}");
        }
    }

    #[test]
    fn product_round_trips_at_word_boundaries() {
        // (A·I) = (I·A) = A, and A·F has exactly `nonempty_rows(A) * n`
        // pairs, for domains on both sides of the word boundary.
        for n in [1usize, 63, 64, 65] {
            let mut a = NodeMatrix::empty(n);
            // A sparse pattern touching the first, last and boundary columns.
            let cols = [0, n / 2, n - 1];
            for (i, &c) in cols.iter().enumerate() {
                a.set(NodeId((i % n) as u32), NodeId(c as u32));
            }
            let id = NodeMatrix::identity(n);
            assert_eq!(a.product(&id), a, "A·I, n={n}");
            assert_eq!(id.product(&a), a, "I·A, n={n}");
            let f = NodeMatrix::full(n);
            let af = a.product(&f);
            assert_eq!(
                af.count_pairs(),
                a.nonempty_rows().len() * n,
                "A·F, n={n}"
            );
            assert_eq!(a.product(&a), a.product_naive(&a), "A·A, n={n}");
        }
    }

    #[test]
    fn transpose_round_trips_at_word_boundaries() {
        for n in [1usize, 63, 64, 65] {
            let mut a = NodeMatrix::empty(n);
            a.set(NodeId(0), NodeId(n as u32 - 1));
            if n > 1 {
                a.set(NodeId(n as u32 - 1), NodeId(1));
            }
            let t = a.transpose();
            assert_eq!(t.transpose(), a, "Aᵀᵀ = A, n={n}");
            assert!(t.get(NodeId(n as u32 - 1), NodeId(0)), "n={n}");
            // Full and identity are symmetric; transposition fixes them.
            assert_eq!(NodeMatrix::full(n).transpose(), NodeMatrix::full(n));
            assert_eq!(
                NodeMatrix::identity(n).transpose(),
                NodeMatrix::identity(n)
            );
            // (A·B)ᵀ = Bᵀ·Aᵀ.
            let b = NodeMatrix::full(n);
            assert_eq!(
                a.product(&b).transpose(),
                b.transpose().product(&a.transpose()),
                "n={n}"
            );
        }
    }
}
