//! Lazy relation algebra: symbolic products, unions and complements whose
//! rows densify on demand.
//!
//! The adaptive [`Relation`] kernels already compose Identity/Interval/CSR
//! operands symbolically — interval∘interval merges ranges in O(n), a
//! CSR∘interval product is a range-gather — but two eager costs remain and
//! they are exactly what pins every bench band at |t| ≈ 960:
//!
//! 1. **complements densify**: `¬R` of any non-trivial operand is an n×n
//!    bit matrix (≈125 GB at |t| = 1M), and every product touching it pays
//!    dense-fallback rates;
//! 2. **successor lists materialise whole matrices**: the Fig. 8 answering
//!    phase asks for *rows* of atom relations, yet the store eagerly builds
//!    all `n` of them up front.
//!
//! [`LazyRel`] fixes the first: a small expression DAG kept symbolic
//! wherever eager evaluation would densify.  Structured operands still
//! collapse eagerly through the adaptive kernels (so the DAG stays shallow);
//! only complements — and operators applied over them — become deferred
//! nodes.  Any single row of a deferred node evaluates in time proportional
//! to the rows it touches, never `n²`.
//!
//! [`LazyRows`] fixes the second: a per-relation row cache that computes
//! `row(u)` the first time the answering phase pulls it and memoises the
//! `Arc`'d result, with byte-accurate accounting of what actually
//! materialised (so the corpus memory budget stays honest).

use crate::matrix::CapacityError;
use crate::relation::{KernelMode, KernelStats, Relation};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use xpath_tree::NodeId;

/// A relation-algebra expression kept symbolic where evaluation would
/// densify.  `Eager` leaves hold compact adaptive [`Relation`]s; the other
/// variants defer exactly the operators whose eager result would be dense.
#[derive(Debug, Clone)]
pub enum LazyRel {
    /// An eagerly compiled, compact relation — the leaves of the DAG and
    /// the form every fully structured expression collapses back to.
    Eager(Relation),
    /// `¬a`, deferred: row `u` is the sorted complement of `a.row(u)`.
    Complement(Arc<LazyRel>),
    /// `a · b` with at least one deferred operand.
    Product(Arc<LazyRel>, Arc<LazyRel>),
    /// `a ∪ b` with at least one deferred operand.
    Union(Arc<LazyRel>, Arc<LazyRel>),
    /// `a ∩ b` with at least one deferred operand.
    Intersect(Arc<LazyRel>, Arc<LazyRel>),
    /// `[a]` (diagonal filter) over a deferred operand.
    DiagonalFilter(Arc<LazyRel>),
}

impl LazyRel {
    /// Wrap an eagerly compiled relation.
    pub fn eager(r: Relation) -> Arc<LazyRel> {
        Arc::new(LazyRel::Eager(r))
    }

    /// Smart product: collapses eagerly through the adaptive kernels while
    /// both operands are eager (their product stays symbolic or pays at most
    /// the guarded dense fallback), defers otherwise.
    pub fn product(
        a: &Arc<LazyRel>,
        b: &Arc<LazyRel>,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Result<Arc<LazyRel>, CapacityError> {
        if let (LazyRel::Eager(ra), LazyRel::Eager(rb)) = (a.as_ref(), b.as_ref()) {
            return Ok(LazyRel::eager(ra.try_product(rb, mode, stats)?));
        }
        Ok(Arc::new(LazyRel::Product(Arc::clone(a), Arc::clone(b))))
    }

    /// Smart union: eager∪eager collapses, anything deferred stays a node.
    pub fn union(
        a: &Arc<LazyRel>,
        b: &Arc<LazyRel>,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Result<Arc<LazyRel>, CapacityError> {
        if let (LazyRel::Eager(ra), LazyRel::Eager(rb)) = (a.as_ref(), b.as_ref()) {
            return Ok(LazyRel::eager(ra.try_union(rb, mode, stats)?));
        }
        Ok(Arc::new(LazyRel::Union(Arc::clone(a), Arc::clone(b))))
    }

    /// Smart intersection.
    pub fn intersect(
        a: &Arc<LazyRel>,
        b: &Arc<LazyRel>,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Result<Arc<LazyRel>, CapacityError> {
        if let (LazyRel::Eager(ra), LazyRel::Eager(rb)) = (a.as_ref(), b.as_ref()) {
            return Ok(LazyRel::eager(ra.try_intersect(rb, mode, stats)?));
        }
        Ok(Arc::new(LazyRel::Intersect(Arc::clone(a), Arc::clone(b))))
    }

    /// Smart complement.  Under [`KernelMode::Lazy`], the trivial poles stay
    /// eager and an operand that is already dense complements in place (the
    /// memory is already paid) — every other operand, the case that would
    /// densify, defers.  Under the eager modes the complement compiles
    /// through the capacity-guarded kernels (and may therefore fail instead
    /// of aborting).
    pub fn complement(
        a: &Arc<LazyRel>,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Result<Arc<LazyRel>, CapacityError> {
        match a.as_ref() {
            // ¬¬x = x.  Fig. 4 encodes `intersect`/`except` with doubly
            // nested complements; cancelling keeps the DAG shallow.
            LazyRel::Complement(x) => return Ok(Arc::clone(x)),
            // De Morgan: ¬(x ∪ y) = ¬x ∩ ¬y.  `a except b` arrives as
            // ¬(¬a ∪ b); rewriting yields a ∩ ¬b, whose rows filter the
            // compact side in O(|a row|) instead of materialising an O(n)
            // union row per pull — this is what keeps the MC sweep
            // subquadratic over `except`-bearing atoms.
            LazyRel::Union(x, y) => {
                let nx = LazyRel::complement(x, mode, stats)?;
                let ny = LazyRel::complement(y, mode, stats)?;
                return LazyRel::intersect(&nx, &ny, mode, stats);
            }
            // Dual: ¬(x ∩ y) = ¬x ∪ ¬y, for symmetry (unions short-circuit
            // row predicates operand by operand).
            LazyRel::Intersect(x, y) => {
                let nx = LazyRel::complement(x, mode, stats)?;
                let ny = LazyRel::complement(y, mode, stats)?;
                return LazyRel::union(&nx, &ny, mode, stats);
            }
            _ => {}
        }
        if let LazyRel::Eager(r) = a.as_ref() {
            let trivially_structured = matches!(r, Relation::Full(_)) || r.is_relation_empty();
            let in_place = matches!(r, Relation::Dense(_));
            if !matches!(mode, KernelMode::Lazy) || trivially_structured || in_place {
                return Ok(LazyRel::eager(r.try_complement(mode, stats)?));
            }
        }
        stats.complement_ops += 1;
        Ok(Arc::new(LazyRel::Complement(Arc::clone(a))))
    }

    /// Smart diagonal filter.
    pub fn diagonal_filter(
        a: &Arc<LazyRel>,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Arc<LazyRel> {
        if let LazyRel::Eager(r) = a.as_ref() {
            return LazyRel::eager(r.diagonal_filter(mode, stats));
        }
        stats.diagonal_ops += 1;
        Arc::new(LazyRel::DiagonalFilter(Arc::clone(a)))
    }

    /// Number of rows/columns of the domain.
    pub fn len(&self) -> usize {
        match self {
            LazyRel::Eager(r) => r.len(),
            LazyRel::Complement(a) | LazyRel::DiagonalFilter(a) => a.len(),
            LazyRel::Product(a, _) | LazyRel::Union(a, _) | LazyRel::Intersect(a, _) => a.len(),
        }
    }

    /// True if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The eager relation, if this node is a leaf.
    pub fn as_eager(&self) -> Option<&Relation> {
        match self {
            LazyRel::Eager(r) => Some(r),
            _ => None,
        }
    }

    /// Is any part of this expression deferred?
    pub fn is_deferred(&self) -> bool {
        !matches!(self, LazyRel::Eager(_))
    }

    /// Would materialising one row of this expression cost ~`n` (wide)
    /// rather than ~`|compact row|`?  Complements are wide, operators
    /// inherit wideness from their operands.  Used to pick the walk side of
    /// an intersection: `except` shapes normalise to `compact ∩ ¬compact`,
    /// and walking the compact side keeps every row pull row-proportional.
    fn row_is_wide(&self) -> bool {
        match self {
            LazyRel::Eager(_) | LazyRel::DiagonalFilter(_) => false,
            LazyRel::Complement(_) => true,
            LazyRel::Union(a, b) | LazyRel::Product(a, b) => {
                a.row_is_wide() || b.row_is_wide()
            }
            LazyRel::Intersect(a, b) => a.row_is_wide() && b.row_is_wide(),
        }
    }

    /// Approximate heap footprint: the eager leaves plus node overhead.
    /// Shared sub-DAGs are counted once per reference — a deliberate
    /// over-approximation (the budget must never under-count).
    pub fn approx_bytes(&self) -> usize {
        let node = std::mem::size_of::<LazyRel>();
        node + match self {
            LazyRel::Eager(r) => r.approx_bytes(),
            LazyRel::Complement(a) | LazyRel::DiagonalFilter(a) => a.approx_bytes(),
            LazyRel::Product(a, b) | LazyRel::Union(a, b) | LazyRel::Intersect(a, b) => {
                a.approx_bytes() + b.approx_bytes()
            }
        }
    }

    /// Row `u` as a sorted, deduped successor list, computed on demand.
    /// Cost is proportional to the rows the expression touches for `u` —
    /// never `n²`.
    pub fn row(&self, u: NodeId) -> Vec<NodeId> {
        match self {
            LazyRel::Eager(r) => r.successor_list(u),
            LazyRel::Complement(a) => complement_ids(&a.row(u), a.len()),
            LazyRel::Union(a, b) => merge_ids(&a.row(u), &b.row(u)),
            LazyRel::Intersect(a, b) => {
                if a.row_is_wide() != b.row_is_wide() {
                    // Walk the compact side, probe the wide one: the row of
                    // `compact ∩ ¬compact` filters in O(|compact row|).
                    let (walk, probe) = if a.row_is_wide() { (b, a) } else { (a, b) };
                    walk.row(u).into_iter().filter(|&v| probe.get(u, v)).collect()
                } else {
                    intersect_ids(&a.row(u), &b.row(u))
                }
            }
            LazyRel::Product(a, b) => {
                let mut out: Vec<NodeId> = Vec::new();
                for v in a.row(u) {
                    out.extend(b.row(v));
                }
                out.sort_unstable_by_key(|id| id.0);
                out.dedup();
                out
            }
            LazyRel::DiagonalFilter(a) => {
                if a.row_nonempty(u) {
                    vec![u]
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Does row `u` contain at least one pair?  Products short-circuit on
    /// the first non-empty target row, so `[P1/P2]`-style filters over
    /// deferred operands never compute full rows.
    pub fn row_nonempty(&self, u: NodeId) -> bool {
        match self {
            LazyRel::Eager(r) => r.row_nonempty(u),
            LazyRel::Complement(a) => a.row(u).len() < a.len(),
            LazyRel::Union(a, b) => a.row_nonempty(u) || b.row_nonempty(u),
            LazyRel::Intersect(a, b) => {
                let (walk, probe) = if a.row_is_wide() && !b.row_is_wide() {
                    (b, a)
                } else {
                    (a, b)
                };
                walk.row_any(u, &mut |v| probe.get(u, v))
            }
            LazyRel::Product(a, b) => a.row(u).into_iter().any(|v| b.row_nonempty(v)),
            LazyRel::DiagonalFilter(a) => a.row_nonempty(u),
        }
    }

    /// Does row `u` contain a node satisfying `pred`?  Early-exits on the
    /// first hit.  Complements walk the *gaps* of the inner row instead of
    /// materialising their (up to `n`-element) complement row — with a
    /// predicate that succeeds often (the `MC` sweep tests membership in a
    /// mostly-full node set) this is `O(|inner row|)`, not `O(n)`.
    pub fn row_any(&self, u: NodeId, pred: &mut dyn FnMut(NodeId) -> bool) -> bool {
        match self {
            LazyRel::Eager(r) => r.successor_list(u).into_iter().any(&mut *pred),
            LazyRel::Complement(a) => {
                let inner = a.row(u);
                let n = a.len() as u32;
                let mut next = 0u32;
                for id in inner {
                    for v in next..id.0 {
                        if pred(NodeId(v)) {
                            return true;
                        }
                    }
                    next = id.0 + 1;
                }
                (next..n).any(|v| pred(NodeId(v)))
            }
            LazyRel::Union(a, b) => a.row_any(u, pred) || b.row_any(u, pred),
            LazyRel::Intersect(a, b) => {
                let (walk, probe) = if a.row_is_wide() && !b.row_is_wide() {
                    (b, a)
                } else {
                    (a, b)
                };
                walk.row_any(u, &mut |v| probe.get(u, v) && pred(v))
            }
            LazyRel::Product(a, b) => a.row(u).into_iter().any(|v| b.row_any(v, pred)),
            LazyRel::DiagonalFilter(a) => a.row_nonempty(u) && pred(u),
        }
    }

    /// Membership test.
    pub fn get(&self, u: NodeId, v: NodeId) -> bool {
        match self {
            LazyRel::Eager(r) => r.get(u, v),
            LazyRel::Complement(a) => !a.get(u, v),
            LazyRel::Union(a, b) => a.get(u, v) || b.get(u, v),
            LazyRel::Intersect(a, b) => a.get(u, v) && b.get(u, v),
            LazyRel::Product(a, b) => a.row(u).into_iter().any(|w| b.get(w, v)),
            LazyRel::DiagonalFilter(a) => u == v && a.row_nonempty(u),
        }
    }

    /// Force the whole expression to a concrete [`Relation`], through the
    /// capacity-guarded eager kernels.  The compatibility path for callers
    /// that need a materialised result; fails rather than aborts when a
    /// deferred complement would exceed the dense budget.
    pub fn force(
        &self,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Result<Relation, CapacityError> {
        match self {
            LazyRel::Eager(r) => Ok(r.clone()),
            LazyRel::Complement(a) => a.force(mode, stats)?.try_complement(mode, stats),
            LazyRel::Union(a, b) => {
                a.force(mode, stats)?.try_union(&b.force(mode, stats)?, mode, stats)
            }
            LazyRel::Intersect(a, b) => {
                a.force(mode, stats)?.try_intersect(&b.force(mode, stats)?, mode, stats)
            }
            LazyRel::Product(a, b) => {
                a.force(mode, stats)?.try_product(&b.force(mode, stats)?, mode, stats)
            }
            LazyRel::DiagonalFilter(a) => Ok(a.force(mode, stats)?.diagonal_filter(mode, stats)),
        }
    }
}

/// Per-relation row cache: computes successor rows on first pull and
/// memoises them as shared `Arc`s.  Thread-safe (lock-free per row via
/// [`OnceLock`]); byte accounting tracks only what actually materialised.
#[derive(Debug)]
pub struct LazyRows {
    rel: Arc<LazyRel>,
    rows: Vec<OnceLock<Arc<Vec<NodeId>>>>,
    materialised_rows: AtomicUsize,
    materialised_bytes: AtomicUsize,
}

impl LazyRows {
    /// A row cache over `rel`, with no rows materialised yet.
    pub fn new(rel: Arc<LazyRel>) -> LazyRows {
        let n = rel.len();
        let mut rows = Vec::with_capacity(n);
        rows.resize_with(n, OnceLock::new);
        LazyRows {
            rel,
            rows,
            materialised_rows: AtomicUsize::new(0),
            materialised_bytes: AtomicUsize::new(0),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The underlying (possibly deferred) relation expression.
    pub fn relation(&self) -> &Arc<LazyRel> {
        &self.rel
    }

    /// Row `u`, materialising and memoising it on first pull.
    pub fn row(&self, u: NodeId) -> Arc<Vec<NodeId>> {
        self.rows[u.index()]
            .get_or_init(|| {
                let row = Arc::new(self.rel.row(u));
                self.materialised_rows.fetch_add(1, Ordering::Relaxed);
                self.materialised_bytes.fetch_add(
                    row.len() * std::mem::size_of::<NodeId>(),
                    Ordering::Relaxed,
                );
                row
            })
            .clone()
    }

    /// Non-emptiness of row `u` without materialising it (uses the memoised
    /// row if one exists).
    pub fn row_nonempty(&self, u: NodeId) -> bool {
        if let Some(row) = self.rows[u.index()].get() {
            return !row.is_empty();
        }
        self.rel.row_nonempty(u)
    }

    /// Early-exit predicate search over row `u` without materialising it
    /// (uses the memoised row if one exists; see [`LazyRel::row_any`]).
    pub fn row_any<F: FnMut(NodeId) -> bool>(&self, u: NodeId, mut pred: F) -> bool {
        if let Some(row) = self.rows[u.index()].get() {
            return row.iter().any(|&v| pred(v));
        }
        self.rel.row_any(u, &mut pred)
    }

    /// How many rows have been pulled so far.
    pub fn materialised_rows(&self) -> usize {
        self.materialised_rows.load(Ordering::Relaxed)
    }

    /// Bytes held by the cache itself: the (lazy) row table plus exactly the
    /// rows that have materialised — not the n² worst case.  Excludes the
    /// underlying expression, which the store accounts separately.
    pub fn cached_bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<OnceLock<Arc<Vec<NodeId>>>>()
            + self.materialised_bytes.load(Ordering::Relaxed)
    }

    /// Honest heap footprint: the symbolic expression plus
    /// [`LazyRows::cached_bytes`].
    pub fn approx_bytes(&self) -> usize {
        self.rel.approx_bytes() + self.cached_bytes()
    }
}

/// Merge two sorted, deduped id lists.
fn merge_ids(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Intersect two sorted id lists.
fn intersect_ids(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// The sorted complement of a sorted id list within `0..n`.
fn complement_ids(a: &[NodeId], n: usize) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(n - a.len());
    let mut next = 0u32;
    for &id in a {
        for v in next..id.0 {
            out.push(NodeId(v));
        }
        next = id.0 + 1;
    }
    for v in next..n as u32 {
        out.push(NodeId(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::NodeMatrix;
    use crate::relation::SparseRows;

    const LAZY: KernelMode = KernelMode::Lazy;

    fn stats() -> KernelStats {
        KernelStats::default()
    }

    /// Row-by-row comparison of a lazy expression against a reference
    /// matrix.
    fn assert_rows_match(lazy: &LazyRel, want: &NodeMatrix, label: &str) {
        assert_eq!(lazy.len(), want.len(), "{label}: domain");
        for u in 0..want.len() {
            let id = NodeId(u as u32);
            let got = lazy.row(id);
            let expect: Vec<NodeId> = want.successors(id).collect();
            assert_eq!(got, expect, "{label}: row {u}");
            assert_eq!(lazy.row_nonempty(id), !expect.is_empty(), "{label}: nonempty {u}");
        }
    }

    /// A deterministic interval relation covering empty rows, short ranges
    /// and ranges straddling word boundaries.
    fn interval_rel(n: usize) -> Relation {
        let rows = (0..n as u32)
            .map(|u| {
                if u % 3 == 0 {
                    (u, (u + 7).min(n as u32))
                } else if u % 5 == 0 {
                    (0, (n as u32).min(2))
                } else {
                    (0, 0)
                }
            })
            .collect();
        Relation::Interval { n, rows }
    }

    /// A deterministic sparse CSR relation.
    fn sparse_rel(n: usize) -> Relation {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut state = 7u64 ^ n as u64;
        for _ in 0..3 * n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 33) as usize % n.max(1)) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = ((state >> 33) as usize % n.max(1)) as u32;
            pairs.push((u, v));
        }
        pairs.sort_unstable();
        pairs.dedup();
        Relation::Sparse(SparseRows::from_sorted_pairs(n, &pairs))
    }

    /// The satellite property suite: interval∘interval, CSR∘interval and
    /// complement-of-interval rows must match the dense reference at every
    /// word-boundary size.  At n ≤ 65 the reference product is the naïve
    /// triple loop; at n = 4096 the (independently pinned) word-parallel
    /// product stands in — the naïve cube would take minutes.
    #[test]
    fn symbolic_rows_match_dense_reference_at_boundary_sizes() {
        for n in [0usize, 1, 63, 64, 65, 4096] {
            let iv = interval_rel(n);
            let sp = sparse_rel(n);
            let ivm = iv.to_matrix();
            let spm = sp.to_matrix();
            let reference = |a: &NodeMatrix, b: &NodeMatrix| {
                if n <= 65 {
                    a.product_naive(b)
                } else {
                    a.product(b)
                }
            };

            let mut s = stats();
            // interval ∘ interval (collapses eagerly through the kernels).
            let a = LazyRel::eager(iv.clone());
            let prod = LazyRel::product(&a, &a, LAZY, &mut s).unwrap();
            assert_rows_match(&prod, &reference(&ivm, &ivm), &format!("iv∘iv n={n}"));

            // CSR ∘ interval (range-gather).
            let b = LazyRel::eager(sp.clone());
            let prod = LazyRel::product(&b, &a, LAZY, &mut s).unwrap();
            assert_rows_match(&prod, &reference(&spm, &ivm), &format!("sp∘iv n={n}"));

            // complement-of-interval stays symbolic; rows match ¬M.
            let not_iv = LazyRel::complement(&a, LAZY, &mut s).unwrap();
            let mut want = ivm.clone();
            want.complement();
            if n > 0 {
                assert!(not_iv.is_deferred() || iv.is_relation_empty(), "n={n}");
            }
            assert_rows_match(&not_iv, &want, &format!("¬iv n={n}"));

            // CSR ∘ complement-of-interval: deferred product, rows on demand.
            let prod = LazyRel::product(&b, &not_iv, LAZY, &mut s).unwrap();
            assert_rows_match(&prod, &reference(&spm, &want), &format!("sp∘¬iv n={n}"));

            // union / intersect / diagonal over the deferred complement.
            let uni = LazyRel::union(&b, &not_iv, LAZY, &mut s).unwrap();
            let mut want_u = spm.clone();
            want_u.union_with(&want);
            assert_rows_match(&uni, &want_u, &format!("sp∪¬iv n={n}"));
            let inter = LazyRel::intersect(&b, &not_iv, LAZY, &mut s).unwrap();
            let mut want_i = spm.clone();
            want_i.intersect_with(&want);
            assert_rows_match(&inter, &want_i, &format!("sp∩¬iv n={n}"));
            let diag = LazyRel::diagonal_filter(&inter, LAZY, &mut s);
            assert_rows_match(&diag, &want_i.diagonal_filter(), &format!("[sp∩¬iv] n={n}"));
        }
    }

    #[test]
    fn force_matches_row_semantics_and_guards_capacity() {
        let n = 130;
        let mut s = stats();
        let iv = LazyRel::eager(interval_rel(n));
        let not_iv = LazyRel::complement(&iv, LAZY, &mut s).unwrap();
        let forced = not_iv.force(LAZY, &mut s).unwrap();
        for u in 0..n {
            let id = NodeId(u as u32);
            assert_eq!(forced.successor_list(id), not_iv.row(id), "row {u}");
        }
        // A deferred complement over a capacity-busting domain must error on
        // force, not abort.
        let huge = 1_000_000;
        let sparse = LazyRel::eager(Relation::empty(huge));
        let full = LazyRel::complement(&sparse, LAZY, &mut s).unwrap(); // ¬∅ = Full: structured
        assert!(full.as_eager().is_some());
        let chain = LazyRel::eager(Relation::Identity(huge));
        let deferred = LazyRel::complement(&chain, LAZY, &mut s).unwrap();
        assert!(deferred.is_deferred());
        assert!(deferred.force(LAZY, &mut s).is_err());
        // …but its rows are still answerable, in O(row) time.
        let row = deferred.row(NodeId(5));
        assert_eq!(row.len(), huge - 1);
        assert!(!row.contains(&NodeId(5)));
        assert!(deferred.row_nonempty(NodeId(5)));
    }

    #[test]
    fn get_agrees_with_rows_across_operators() {
        let n = 65;
        let mut s = stats();
        let iv = LazyRel::eager(interval_rel(n));
        let sp = LazyRel::eager(sparse_rel(n));
        let not_iv = LazyRel::complement(&iv, LAZY, &mut s).unwrap();
        let expr = LazyRel::product(&sp, &not_iv, LAZY, &mut s).unwrap();
        for u in 0..n {
            let id = NodeId(u as u32);
            let row = expr.row(id);
            for v in 0..n {
                let vid = NodeId(v as u32);
                assert_eq!(expr.get(id, vid), row.contains(&vid), "({u},{v})");
            }
        }
    }

    #[test]
    fn lazy_rows_memoise_and_account_bytes() {
        let n = 1000;
        let mut s = stats();
        let iv = LazyRel::eager(interval_rel(n));
        let rows = LazyRows::new(LazyRel::complement(&iv, LAZY, &mut s).unwrap());
        let base = rows.approx_bytes();
        assert_eq!(rows.materialised_rows(), 0);
        // row_nonempty must not materialise anything.
        assert!(rows.row_nonempty(NodeId(1)));
        assert_eq!(rows.materialised_rows(), 0);
        let r5 = rows.row(NodeId(5));
        let again = rows.row(NodeId(5));
        assert!(Arc::ptr_eq(&r5, &again), "second pull returns the memo");
        assert_eq!(rows.materialised_rows(), 1);
        let after_one = rows.approx_bytes();
        assert!(after_one > base, "materialised bytes must show up");
        let delta = after_one - base;
        assert_eq!(delta, r5.len() * std::mem::size_of::<NodeId>());
        // Far below the dense footprint: one row, not n²/8 bytes.
        assert!(after_one < n * n / 8);
    }

    #[test]
    fn eager_operands_collapse_without_deferral() {
        let n = 64;
        let mut s = stats();
        let a = LazyRel::eager(interval_rel(n));
        let b = LazyRel::eager(sparse_rel(n));
        for node in [
            LazyRel::product(&a, &b, LAZY, &mut s).unwrap(),
            LazyRel::union(&a, &b, LAZY, &mut s).unwrap(),
            LazyRel::intersect(&a, &b, LAZY, &mut s).unwrap(),
            LazyRel::diagonal_filter(&a, LAZY, &mut s),
        ] {
            assert!(node.as_eager().is_some(), "eager×eager must not defer");
        }
    }

    #[test]
    fn zero_and_one_node_domains() {
        for n in [0usize, 1] {
            let mut s = stats();
            let id = LazyRel::eager(Relation::Identity(n));
            let not_id = LazyRel::complement(&id, LAZY, &mut s).unwrap();
            let prod = LazyRel::product(&not_id, &id, LAZY, &mut s).unwrap();
            for u in 0..n {
                assert_eq!(prod.row(NodeId(u as u32)), Vec::<NodeId>::new(), "n={n}");
            }
            assert_eq!(prod.len(), n);
            let rows = LazyRows::new(prod);
            assert_eq!(rows.len(), n);
            assert_eq!(rows.is_empty(), n == 0);
        }
    }
}
