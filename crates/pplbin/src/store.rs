//! Amortized matrix compilation: a per-document cache of compiled PPLbin
//! matrices.
//!
//! Theorem 1's bound `O(|P|·|t|³ + n·|P|·|t|²·|A|)` is dominated by the
//! `|t|³` matrix compilation of the PPLbin atoms, yet that work depends only
//! on the *(tree, expression)* pair — never on the query's variables or
//! output.  A [`MatrixStore`] therefore memoises every compiled subterm so a
//! workload of many queries over one document pays each `|t|³` product once:
//!
//! * **steps** — the `M_{A::N}` matrices of `step_matrix` are keyed by
//!   `(Axis, NameTest)`;
//! * **composite subterms** — `Seq`/`Union`/`Except`/`Test` nodes are
//!   *hash-consed*: structurally equal subterms (even across different
//!   queries) intern to the same [`ExprId`] in amortised `O(1)` per AST
//!   node, and each id's matrix is computed at most once;
//! * **successor lists** — the Prop. 10 oracle representation
//!   (`u ↦ {u' | (u,u') ∈ q_b(t)}`) derived from a matrix is cached per
//!   [`ExprId`] behind an `Arc`, so repeated HCL⁻ answering over the same
//!   atoms shares one allocation — across threads too.
//!
//! The store is deliberately tree-agnostic in its API (the caller passes the
//! `&Tree` on every evaluation) but domain-checked: it is created for a
//! fixed node count and will panic if used with a tree of a different size.
//!
//! Two ownership regimes are provided:
//!
//! * [`MatrixStore`] — the single-threaded store (`&mut self` evaluation),
//!   used directly by benchmarks and cold paths;
//! * [`SharedMatrixStore`] — a sharded `Mutex` wrapper whose evaluation
//!   methods take `&self`, so one document can answer queries from many
//!   threads at once.  `ppl_xpath::Session` owns one and threads it through
//!   every cached entry point.

use crate::eval::step_relation_in_mode;
use crate::incremental::{
    merge_rows, remap_cols, remap_range, remap_row_words, rows_intersecting_cols,
    rows_intersecting_range, Dirty, EditApplyStats,
};
use crate::lazy::{LazyRel, LazyRows};
use crate::matrix::{CapacityError, NodeMatrix};
use crate::relation::{KernelMode, KernelStats, Relation, SparseRows};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use xpath_sync::{Mutex, MutexGuard};
use xpath_ast::{BinExpr, NameTest};
use xpath_tree::{Axis, EditDelta, EditKind, NodeId, Tree};

/// Where a consumer of Prop. 10 successor rows pulls them from: an eagerly
/// materialised table (`lists[u]` for every `u`, the pre-lazy behaviour) or
/// an on-demand [`LazyRows`] cache that computes rows the first time the
/// answering phase asks for them.  Cloning is an `Arc` bump either way.
#[derive(Debug, Clone)]
pub enum SuccessorSource {
    /// All `n` rows materialised up front (eager kernel modes).
    Eager(Arc<Vec<Vec<NodeId>>>),
    /// Rows computed and memoised on first pull ([`KernelMode::Lazy`]).
    Lazy(Arc<LazyRows>),
}

impl SuccessorSource {
    /// Domain size (number of rows).
    pub fn len(&self) -> usize {
        match self {
            SuccessorSource::Eager(lists) => lists.len(),
            SuccessorSource::Lazy(rows) => rows.len(),
        }
    }

    /// True if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `f` over row `u` (sorted successor ids).  The lazy variant
    /// materialises and memoises the row on first pull.
    pub fn with_row<R>(&self, u: NodeId, f: impl FnOnce(&[NodeId]) -> R) -> R {
        match self {
            SuccessorSource::Eager(lists) => f(&lists[u.index()]),
            SuccessorSource::Lazy(rows) => f(&rows.row(u)),
        }
    }

    /// Row `u` as an owned vector.
    pub fn row_vec(&self, u: NodeId) -> Vec<NodeId> {
        self.with_row(u, <[NodeId]>::to_vec)
    }

    /// Non-emptiness of row `u`, without materialising it in the lazy case.
    pub fn row_nonempty(&self, u: NodeId) -> bool {
        match self {
            SuccessorSource::Eager(lists) => !lists[u.index()].is_empty(),
            SuccessorSource::Lazy(rows) => rows.row_nonempty(u),
        }
    }

    /// Does row `u` contain a node satisfying `pred`?  Early-exits on the
    /// first hit; the lazy variant answers from the symbolic form without
    /// materialising the row (see [`LazyRel::row_any`]).
    ///
    /// [`LazyRel::row_any`]: crate::lazy::LazyRel::row_any
    pub fn row_any(&self, u: NodeId, mut pred: impl FnMut(NodeId) -> bool) -> bool {
        match self {
            SuccessorSource::Eager(lists) => lists[u.index()].iter().any(|&v| pred(v)),
            SuccessorSource::Lazy(rows) => rows.row_any(u, pred),
        }
    }
}

/// Identifier of a hash-consed PPLbin subterm inside a [`MatrixStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// Dense index of the subterm.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One hash-consing node: a [`BinExpr`] constructor with interned children.
///
/// Because children are `ExprId`s rather than boxed subtrees, hashing a
/// shape is `O(1)` (plus the name-test string for steps), which is what
/// makes interning a whole expression linear in its size.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Shape {
    Step(Axis, NameTest),
    Seq(ExprId, ExprId),
    Union(ExprId, ExprId),
    Except(ExprId),
    Test(ExprId),
}

/// Cache-effectiveness counters of a [`MatrixStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Subterm evaluations answered from the cache.
    pub hits: u64,
    /// Subterm evaluations that had to compile a matrix.
    pub misses: u64,
    /// Distinct subterms interned so far.
    pub interned: usize,
    /// Subterms whose matrix has been compiled and retained.
    pub compiled: usize,
    /// Per-kernel dispatch counters of the compilations behind the misses.
    pub kernels: KernelStats,
}

impl CacheStats {
    /// Total lookups (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Accumulate another counter set (used to aggregate the per-shard
    /// stats of a [`SharedMatrixStore`]).
    pub fn merge(&mut self, other: &CacheStats) {
        // Exhaustive destructuring (no `..`): a future counter field that is
        // not aggregated here fails to compile instead of reading 0.
        let CacheStats {
            hits,
            misses,
            interned,
            compiled,
            kernels,
        } = other;
        self.hits += hits;
        self.misses += misses;
        self.interned += interned;
        self.compiled += compiled;
        self.kernels.merge(kernels);
    }
}

/// A memoising compiler of PPLbin expressions over one fixed document tree.
#[derive(Debug, Clone, Default)]
pub struct MatrixStore {
    domain: usize,
    /// Hash-consing table: shape → id.
    ids: HashMap<Shape, ExprId>,
    /// Shape of each interned id (indexed by `ExprId::index`).
    shapes: Vec<Shape>,
    /// Compiled relation of each interned id, if computed already — kept in
    /// its adaptive (and, under [`KernelMode::Lazy`], possibly symbolic)
    /// representation so downstream compositions stay structure-aware;
    /// materialised to [`NodeMatrix`] only at the public boundary.
    relations: Vec<Option<Arc<LazyRel>>>,
    /// Cached Prop. 10 successor lists, shared with callers via `Arc` (so
    /// they can cross thread boundaries under a [`SharedMatrixStore`]).
    successors: HashMap<ExprId, Arc<Vec<Vec<NodeId>>>>,
    /// On-demand row caches handed out as [`SuccessorSource::Lazy`] under
    /// [`KernelMode::Lazy`], memoised per id so repeated answering over the
    /// same atom shares materialised rows.
    lazy_rows: HashMap<ExprId, Arc<LazyRows>>,
    /// Which kernels the store compiles with.
    mode: KernelMode,
    /// Per-kernel dispatch counters across all compilations.
    kernels: KernelStats,
    hits: u64,
    misses: u64,
}

impl MatrixStore {
    /// An empty store for trees with `domain` nodes, using the default
    /// (adaptive, threaded) kernels.
    pub fn new(domain: usize) -> MatrixStore {
        MatrixStore {
            domain,
            ..MatrixStore::default()
        }
    }

    /// An empty store compiling with an explicit [`KernelMode`] (the E11
    /// ablation benchmark sweeps all three).
    pub fn with_mode(domain: usize, mode: KernelMode) -> MatrixStore {
        MatrixStore {
            domain,
            mode,
            ..MatrixStore::default()
        }
    }

    /// The node count the store was created for.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// The kernel mode the store compiles with.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Switch kernel modes.  Already-compiled relations are kept (they are
    /// equivalent under every mode); only future compilations change.
    pub fn set_mode(&mut self, mode: KernelMode) {
        self.mode = mode;
    }

    /// Current cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            interned: self.shapes.len(),
            compiled: self.relations.iter().filter(|m| m.is_some()).count(),
            kernels: self.kernels,
        }
    }

    /// Per-kernel dispatch counters only.
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernels
    }

    /// Approximate heap occupancy of the cached state, in bytes: compiled
    /// relations (symbolic forms charge their eager leaves, not the n² they
    /// defer), Prop. 10 successor lists, and exactly the lazy rows that have
    /// materialised so far (hash-consing table overhead is ignored — it is
    /// dwarfed by the matrices it indexes).  The corpus layer charges this
    /// against its session-pool memory budget.
    pub fn approx_bytes(&self) -> usize {
        let relations: usize = self
            .relations
            .iter()
            .flatten()
            .map(|r| r.approx_bytes())
            .sum();
        let lists: usize = self
            .successors
            .values()
            .map(|lists| {
                lists
                    .iter()
                    .map(|row| std::mem::size_of::<Vec<NodeId>>() + row.len() * std::mem::size_of::<NodeId>())
                    .sum::<usize>()
            })
            .sum();
        let lazy: usize = self.lazy_rows.values().map(|r| r.cached_bytes()).sum();
        relations + lists + lazy
    }

    /// Drop every cached relation and counter (the hash-consing table is
    /// cleared too); the kernel mode is kept.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.shapes.clear();
        self.relations.clear();
        self.successors.clear();
        self.lazy_rows.clear();
        self.kernels = KernelStats::default();
        self.hits = 0;
        self.misses = 0;
    }

    fn check_tree(&self, tree: &Tree) {
        assert_eq!(
            tree.len(),
            self.domain,
            "MatrixStore was created for {}-node trees, got {} nodes",
            self.domain,
            tree.len()
        );
    }

    /// Hash-cons an expression: structurally equal subterms map to the same
    /// id. Linear in the expression size.
    pub fn intern(&mut self, expr: &BinExpr) -> ExprId {
        let shape = match expr {
            BinExpr::Step(axis, test) => Shape::Step(*axis, test.clone()),
            BinExpr::Seq(a, b) => {
                let (a, b) = (self.intern(a), self.intern(b));
                Shape::Seq(a, b)
            }
            BinExpr::Union(a, b) => {
                let (a, b) = (self.intern(a), self.intern(b));
                Shape::Union(a, b)
            }
            BinExpr::Except(p) => Shape::Except(self.intern(p)),
            BinExpr::Test(p) => Shape::Test(self.intern(p)),
        };
        if let Some(&id) = self.ids.get(&shape) {
            return id;
        }
        let id = ExprId(self.shapes.len() as u32);
        self.ids.insert(shape.clone(), id);
        self.shapes.push(shape);
        self.relations.push(None);
        id
    }

    /// Read-only structural lookup: the id of `expr` if it has been interned
    /// already, without interning it.
    fn find_id(&self, expr: &BinExpr) -> Option<ExprId> {
        let shape = match expr {
            BinExpr::Step(axis, test) => Shape::Step(*axis, test.clone()),
            BinExpr::Seq(a, b) => Shape::Seq(self.find_id(a)?, self.find_id(b)?),
            BinExpr::Union(a, b) => Shape::Union(self.find_id(a)?, self.find_id(b)?),
            BinExpr::Except(p) => Shape::Except(self.find_id(p)?),
            BinExpr::Test(p) => Shape::Test(self.find_id(p)?),
        };
        self.ids.get(&shape).copied()
    }

    /// Is the relation of `expr` already compiled in this store?  Pure
    /// inspection: neither interns nor counts as a cache lookup.  The
    /// query planner uses this to prefer the cached engine once a session
    /// is warm for a plan's atoms.
    pub fn is_compiled(&self, expr: &BinExpr) -> bool {
        self.find_id(expr)
            .is_some_and(|id| self.relations[id.index()].is_some())
    }

    /// Make sure the relation of `id` is compiled, reusing every already
    /// compiled child.  Under the eager modes every node collapses to an
    /// eager leaf through the capacity-guarded kernels (failing, not
    /// aborting, past the dense budget); under [`KernelMode::Lazy`],
    /// complements — and operators over them — stay symbolic.
    fn try_ensure(&mut self, tree: &Tree, id: ExprId) -> Result<(), CapacityError> {
        if self.relations[id.index()].is_some() {
            self.hits += 1;
            return Ok(());
        }
        self.misses += 1;
        let mode = self.mode;
        let shape = self.shapes[id.index()].clone();
        let r = match shape {
            Shape::Step(axis, test) => LazyRel::eager(step_relation_in_mode(
                tree,
                axis,
                &test,
                mode,
                &mut self.kernels,
            )),
            Shape::Seq(a, b) => {
                self.try_ensure(tree, a)?;
                self.try_ensure(tree, b)?;
                let ra = Arc::clone(self.relations[a.index()].as_ref().expect("ensured"));
                let rb = Arc::clone(self.relations[b.index()].as_ref().expect("ensured"));
                LazyRel::product(&ra, &rb, mode, &mut self.kernels)?
            }
            Shape::Union(a, b) => {
                self.try_ensure(tree, a)?;
                self.try_ensure(tree, b)?;
                let ra = Arc::clone(self.relations[a.index()].as_ref().expect("ensured"));
                let rb = Arc::clone(self.relations[b.index()].as_ref().expect("ensured"));
                LazyRel::union(&ra, &rb, mode, &mut self.kernels)?
            }
            Shape::Except(p) => {
                self.try_ensure(tree, p)?;
                let rp = Arc::clone(self.relations[p.index()].as_ref().expect("ensured"));
                LazyRel::complement(&rp, mode, &mut self.kernels)?
            }
            Shape::Test(p) => {
                self.try_ensure(tree, p)?;
                let rp = Arc::clone(self.relations[p.index()].as_ref().expect("ensured"));
                LazyRel::diagonal_filter(&rp, mode, &mut self.kernels)
            }
        };
        self.relations[id.index()] = Some(r);
        Ok(())
    }

    /// Evaluate a PPLbin expression through the cache: equal subterms (from
    /// this or any earlier call) are compiled exactly once.  The result is
    /// materialised as a dense [`NodeMatrix`] — the public boundary keeps
    /// its pre-adaptive type so existing callers work unchanged.
    pub fn eval(&mut self, tree: &Tree, expr: &BinExpr) -> NodeMatrix {
        self.eval_relation(tree, expr).to_matrix()
    }

    /// Evaluate a PPLbin expression through the cache to its adaptive
    /// [`Relation`] representation, panicking past the dense capacity
    /// budget (see [`MatrixStore::try_eval_relation`] for the fallible
    /// form).
    pub fn eval_relation(&mut self, tree: &Tree, expr: &BinExpr) -> Relation {
        self.try_eval_relation(tree, expr)
            .expect("dense capacity exceeded while materialising a cached relation")
    }

    /// Evaluate a PPLbin expression through the cache to a concrete
    /// [`Relation`], forcing any symbolic form through the capacity-guarded
    /// kernels.  Fails (instead of aborting) when the result would exceed
    /// the dense byte budget — at |t| = 1M an n×n bit matrix is ~125 GB.
    pub fn try_eval_relation(
        &mut self,
        tree: &Tree,
        expr: &BinExpr,
    ) -> Result<Relation, CapacityError> {
        self.check_tree(tree);
        let id = self.intern(expr);
        self.try_ensure(tree, id)?;
        let rel = Arc::clone(self.relations[id.index()].as_ref().expect("ensured"));
        match rel.as_eager() {
            Some(r) => Ok(r.clone()),
            None => rel.force(self.mode, &mut self.kernels),
        }
    }

    /// Evaluate a PPLbin expression to its (possibly symbolic) [`LazyRel`]
    /// form without forcing anything dense.
    pub fn try_eval_lazy(
        &mut self,
        tree: &Tree,
        expr: &BinExpr,
    ) -> Result<Arc<LazyRel>, CapacityError> {
        self.check_tree(tree);
        let id = self.intern(expr);
        self.try_ensure(tree, id)?;
        Ok(Arc::clone(self.relations[id.index()].as_ref().expect("ensured")))
    }

    /// The Prop. 10 oracle lists for `expr`: `lists[u] = {u' | (u,u') ∈
    /// q_expr(t)}` in document order, shared behind an `Arc` so repeated
    /// callers pay one pointer clone.  Built row by row from the adaptive
    /// (or symbolic) representation — interval, sparse and deferred
    /// relations never materialise their bits.  Panics past the dense
    /// capacity budget; see [`MatrixStore::try_successor_lists`].
    pub fn successor_lists(&mut self, tree: &Tree, expr: &BinExpr) -> Arc<Vec<Vec<NodeId>>> {
        self.try_successor_lists(tree, expr)
            .expect("dense capacity exceeded while compiling successor lists")
    }

    /// Fallible form of [`MatrixStore::successor_lists`].
    pub fn try_successor_lists(
        &mut self,
        tree: &Tree,
        expr: &BinExpr,
    ) -> Result<Arc<Vec<Vec<NodeId>>>, CapacityError> {
        self.check_tree(tree);
        let id = self.intern(expr);
        self.try_ensure(tree, id)?;
        if let Some(lists) = self.successors.get(&id) {
            return Ok(Arc::clone(lists));
        }
        let r = self.relations[id.index()].as_ref().expect("ensured");
        let lists: Vec<Vec<NodeId>> = (0..self.domain)
            .map(|u| r.row(NodeId(u as u32)))
            .collect();
        let rc = Arc::new(lists);
        self.successors.insert(id, Arc::clone(&rc));
        Ok(rc)
    }

    /// The successor rows of `expr` in the form matching the kernel mode:
    /// an eagerly materialised table under the eager modes, an on-demand
    /// memoising [`LazyRows`] cache under [`KernelMode::Lazy`].  The Fig. 8
    /// answering phase pulls rows through this handle so a lazy pipeline
    /// only ever pays for the rows it visits.
    pub fn successor_source(
        &mut self,
        tree: &Tree,
        expr: &BinExpr,
    ) -> Result<SuccessorSource, CapacityError> {
        if !matches!(self.mode, KernelMode::Lazy) {
            return Ok(SuccessorSource::Eager(self.try_successor_lists(tree, expr)?));
        }
        self.check_tree(tree);
        let id = self.intern(expr);
        self.try_ensure(tree, id)?;
        if let Some(rows) = self.lazy_rows.get(&id) {
            return Ok(SuccessorSource::Lazy(Arc::clone(rows)));
        }
        let rel = Arc::clone(self.relations[id.index()].as_ref().expect("ensured"));
        let rows = Arc::new(LazyRows::new(rel));
        self.lazy_rows.insert(id, Arc::clone(&rows));
        Ok(SuccessorSource::Lazy(rows))
    }

    /// Carry the cache through a tree edit instead of recompiling it.
    ///
    /// `new_tree` is the post-edit document and `delta` the edit that
    /// produced it from the `delta.old_len`-node tree this store was
    /// compiled against.  Afterwards the store answers queries over
    /// `new_tree` exactly as a cold store compiled on it would — that is
    /// what `run_edit_fuzz` pins — but most cached entries are *patched*
    /// (clean rows remapped through the id shift, dirty rows recomputed
    /// from the entry's children) rather than rebuilt:
    ///
    /// * **relabel** — node ids do not move, so entries whose label
    ///   footprint misses `delta.labels` are kept verbatim; the rest are
    ///   dropped (recompiled on demand).
    /// * **insert / delete** — step leaves are re-derived from the tree
    ///   (O(|t|), unavoidable: the tree changed), and their dirty rows —
    ///   [`EditDelta::dirty_rows`], pinned sound per axis in
    ///   `xpath_tree::edit` — propagate bottom-up through the operators:
    ///   `D(a·b) = D(a) ∪ {u : rows_a(u) ∩ D(b) ≠ ∅}` (plus, under delete,
    ///   the rows of the *old* `a` that routed through the deleted id
    ///   range — a surviving row can lose columns it only reached via a
    ///   deleted intermediate node), `D(a∪b) = D(a) ∪ D(b)`,
    ///   `D(test(p)) = D(p)` plus the same deleted-route term, and
    ///   `D(¬p)` = everything under insert (the complement gains the fresh
    ///   columns in every row) but `D(p)` under delete (survivor remapping
    ///   is a bijection onto the new ids, so complement commutes with it).
    ///
    /// An entry is rebuilt from its children instead of patched when its
    /// dirty set is `All` or covers more than a quarter of the rows, or
    /// when its cached form is symbolic ([`KernelMode::Lazy`] complements
    /// rebuild in O(1)) or trivially cheap (`Identity`/`Full`).
    ///
    /// Prop. 10 successor lists and lazy row caches are dropped wholesale
    /// on insert/delete — they re-derive lazily from the patched relations
    /// on the next answering pass.
    pub fn apply_edit(&mut self, new_tree: &Tree, delta: &EditDelta) -> EditApplyStats {
        assert_eq!(
            delta.old_len, self.domain,
            "apply_edit: delta starts from a {}-node tree, store holds {}",
            delta.old_len, self.domain
        );
        assert_eq!(
            delta.new_len,
            new_tree.len(),
            "apply_edit: delta does not produce the given tree"
        );
        let mut out = EditApplyStats::default();
        if delta.kind == EditKind::Relabel {
            self.apply_relabel(delta, &mut out);
            return out;
        }

        self.domain = new_tree.len();
        // Row tables re-derive on demand from the patched relations.
        self.successors.clear();
        self.lazy_rows.clear();
        let old_relations: Vec<Option<Arc<LazyRel>>> = self.relations.clone();
        let n_new = self.domain;
        let mode = self.mode;
        // Per-id dirty sets, filled bottom-up (children intern before
        // parents, so ascending ids visit children first).
        let mut dirty: Vec<Dirty> = Vec::with_capacity(self.shapes.len());
        for idx in 0..self.shapes.len() {
            if old_relations[idx].is_none() {
                // Never compiled: nothing to patch, and no compiled parent
                // can sit above it (ensure compiles children first), so
                // this dirty value is only read if a parent was dropped
                // too — in which case `All` is the safe answer.
                dirty.push(Dirty::All);
                continue;
            }
            out.rows_total += n_new as u64;
            let shape = self.shapes[idx].clone();
            if let Shape::Step(axis, test) = &shape {
                let r = step_relation_in_mode(new_tree, *axis, test, mode, &mut self.kernels);
                self.relations[idx] = Some(LazyRel::eager(r));
                let d = delta.dirty_rows(*axis);
                out.rows_invalidated += d.len() as u64;
                out.entries_patched += 1;
                dirty.push(Dirty::Rows(d));
                continue;
            }
            if self.children_of(&shape).iter().any(|c| self.relations[c.index()].is_none()) {
                // A child fell out (capacity) earlier in this pass.
                self.relations[idx] = None;
                out.entries_dropped += 1;
                out.rows_invalidated += n_new as u64;
                dirty.push(Dirty::All);
                continue;
            }
            let d = self.composite_dirty(&shape, delta, &old_relations, &dirty);
            let old_rel = old_relations[idx].as_ref().expect("checked above");
            // Patch only when the dirty set is small — `+2` slack so tiny
            // documents still exercise the patch path — and the cached form
            // is a materialised Sparse/Dense/Interval (symbolic forms
            // rebuild in O(1); Identity/Full rebuild via trivial kernels).
            let patched = match &d {
                Dirty::Rows(rows) if rows.len() <= n_new / 4 + 2 => old_rel
                    .as_eager()
                    .and_then(|r| self.patch_entry(r, &shape, rows, delta)),
                _ => None,
            };
            match patched {
                Some(rel) => {
                    let Dirty::Rows(rows) = &d else { unreachable!() };
                    out.rows_invalidated += rows.len() as u64;
                    out.entries_patched += 1;
                    self.relations[idx] = Some(LazyRel::eager(rel));
                    dirty.push(d);
                }
                None => {
                    out.rows_invalidated += n_new as u64;
                    match self.rebuild_composite(&shape) {
                        Ok(rel) => {
                            self.relations[idx] = Some(rel);
                            out.entries_rebuilt += 1;
                        }
                        Err(()) => {
                            self.relations[idx] = None;
                            out.entries_dropped += 1;
                        }
                    }
                    dirty.push(Dirty::All);
                }
            }
        }
        out
    }

    /// The relabel arm of [`MatrixStore::apply_edit`]: ids do not move, so
    /// an entry is stale only if `delta.labels` (old + new label, sorted)
    /// intersects its label footprint — computed bottom-up without walking
    /// any matrix.
    fn apply_relabel(&mut self, delta: &EditDelta, out: &mut EditApplyStats) {
        let n = self.domain as u64;
        let mut hit = vec![false; self.shapes.len()];
        for idx in 0..self.shapes.len() {
            hit[idx] = match &self.shapes[idx] {
                Shape::Step(_, NameTest::Name(l)) => delta.labels.binary_search(l).is_ok(),
                Shape::Step(_, NameTest::Wildcard) => false,
                Shape::Seq(a, b) | Shape::Union(a, b) => hit[a.index()] || hit[b.index()],
                Shape::Except(p) | Shape::Test(p) => hit[p.index()],
            };
            if self.relations[idx].is_none() {
                continue;
            }
            out.rows_total += n;
            if hit[idx] {
                let id = ExprId(idx as u32);
                self.relations[idx] = None;
                self.successors.remove(&id);
                self.lazy_rows.remove(&id);
                out.entries_dropped += 1;
                out.rows_invalidated += n;
            } else {
                out.entries_kept += 1;
            }
        }
    }

    /// Child ids of a composite shape (empty for steps).
    fn children_of(&self, shape: &Shape) -> Vec<ExprId> {
        match shape {
            Shape::Step(..) => Vec::new(),
            Shape::Seq(a, b) | Shape::Union(a, b) => vec![*a, *b],
            Shape::Except(p) | Shape::Test(p) => vec![*p],
        }
    }

    /// Propagate dirty rows through one operator, given the children's
    /// dirty sets, their *updated* relations (in `self`) and their *old*
    /// relations (for the deleted-route terms).
    fn composite_dirty(
        &self,
        shape: &Shape,
        delta: &EditDelta,
        old_relations: &[Option<Arc<LazyRel>>],
        dirty: &[Dirty],
    ) -> Dirty {
        match shape {
            Shape::Step(..) => unreachable!("steps are handled by the caller"),
            Shape::Union(a, b) => match (&dirty[a.index()], &dirty[b.index()]) {
                (Dirty::All, _) | (_, Dirty::All) => Dirty::All,
                (Dirty::Rows(da), Dirty::Rows(db)) => Dirty::Rows(merge_rows(da, db)),
            },
            Shape::Except(p) => {
                if delta.kind == EditKind::Insert {
                    // Every row of the complement gains the fresh columns.
                    return Dirty::All;
                }
                dirty[p.index()].clone()
            }
            Shape::Test(p) => {
                let base = match &dirty[p.index()] {
                    Dirty::All => return Dirty::All,
                    Dirty::Rows(r) => r.clone(),
                };
                self.with_deleted_routes(*p, delta, old_relations, base)
            }
            Shape::Seq(a, b) => {
                let da = match &dirty[a.index()] {
                    Dirty::All => return Dirty::All,
                    Dirty::Rows(r) => r,
                };
                let db = match &dirty[b.index()] {
                    Dirty::All => return Dirty::All,
                    Dirty::Rows(r) => r,
                };
                let mut rows = da.clone();
                if !db.is_empty() {
                    let a_new = self.relations[a.index()].as_ref().expect("children updated");
                    match a_new.as_eager() {
                        None => return Dirty::All,
                        Some(r) => rows = merge_rows(&rows, &rows_intersecting_cols(r, db)),
                    }
                }
                self.with_deleted_routes(*a, delta, old_relations, rows)
            }
        }
    }

    /// Under delete, widen `rows` by the survivors whose *old* `child` row
    /// reached into the deleted id range: the old product/test row counted
    /// columns contributed via those dead intermediates, and the clean-row
    /// remap would wrongly keep them.
    fn with_deleted_routes(
        &self,
        child: ExprId,
        delta: &EditDelta,
        old_relations: &[Option<Arc<LazyRel>>],
        rows: Vec<u32>,
    ) -> Dirty {
        if delta.kind != EditKind::Delete {
            return Dirty::Rows(rows);
        }
        let old = old_relations[child.index()].as_ref().expect("child was compiled");
        let Some(r) = old.as_eager() else {
            return Dirty::All;
        };
        let extra: Vec<u32> = rows_intersecting_range(r, delta.pos, delta.pos + delta.count)
            .into_iter()
            .filter_map(|u_old| delta.remap(u_old))
            .collect();
        // `remap` is monotone, so `extra` is still sorted.
        Dirty::Rows(merge_rows(&rows, &extra))
    }

    /// Recompute one row of a composite entry from its (already updated)
    /// children.  Returns sorted new-id columns.
    fn recompute_row(&self, shape: &Shape, u: u32) -> Vec<u32> {
        let child = |id: ExprId| {
            self.relations[id.index()]
                .as_ref()
                .expect("children update before parents")
        };
        let id = NodeId(u);
        match shape {
            Shape::Step(..) => unreachable!("step rows rebuild from the tree"),
            Shape::Seq(a, b) => {
                let (ra, rb) = (child(*a), child(*b));
                let mut out: Vec<u32> = Vec::new();
                for v in ra.row(id) {
                    out.extend(rb.row(v).into_iter().map(|w| w.0));
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            Shape::Union(a, b) => {
                let ca: Vec<u32> = child(*a).row(id).into_iter().map(|v| v.0).collect();
                let cb: Vec<u32> = child(*b).row(id).into_iter().map(|v| v.0).collect();
                merge_rows(&ca, &cb)
            }
            Shape::Except(p) => {
                let inner = child(*p).row(id);
                let mut out = Vec::with_capacity(self.domain - inner.len());
                let mut next = 0u32;
                for v in inner {
                    out.extend(next..v.0);
                    next = v.0 + 1;
                }
                out.extend(next..self.domain as u32);
                out
            }
            Shape::Test(p) => {
                if child(*p).row_nonempty(id) {
                    vec![u]
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Patch one materialised relation through the edit: clean rows are
    /// remapped from the old relation, dirty rows recomputed from the
    /// entry's children.  `None` bails to a rebuild (trivial forms, or an
    /// interval row whose image stops being contiguous).
    fn patch_entry(
        &self,
        old: &Relation,
        shape: &Shape,
        dirty_rows: &[u32],
        delta: &EditDelta,
    ) -> Option<Relation> {
        let n_new = self.domain;
        let n_old = delta.old_len;
        let is_dirty = |u: u32| dirty_rows.binary_search(&u).is_ok();
        match old {
            // Rebuilding Identity/Full runs trivial kernels; not worth a
            // row-wise patch.
            Relation::Identity(_) | Relation::Full(_) => None,
            Relation::Interval { rows, .. } => {
                let mut out: Vec<(u32, u32)> = Vec::with_capacity(n_new);
                for u in 0..n_new as u32 {
                    if is_dirty(u) {
                        let row = self.recompute_row(shape, u);
                        match row.len() {
                            0 => out.push((0, 0)),
                            len if row[len - 1] - row[0] + 1 == len as u32 => {
                                out.push((row[0], row[len - 1] + 1));
                            }
                            // The recomputed row is not contiguous: the
                            // entry no longer fits interval form.
                            _ => return None,
                        }
                    } else {
                        let u_old = delta.preimage(u).expect("clean rows have preimages");
                        let (lo, hi) = rows[u_old as usize];
                        out.push(remap_range(lo, hi, delta)?);
                    }
                }
                Some(Relation::Interval { n: n_new, rows: out }.compact())
            }
            Relation::Sparse(s) => {
                let mut rows: Vec<Vec<u32>> = Vec::with_capacity(n_new);
                for u in 0..n_new as u32 {
                    if is_dirty(u) {
                        rows.push(self.recompute_row(shape, u));
                    } else {
                        let u_old = delta.preimage(u).expect("clean rows have preimages");
                        rows.push(remap_cols(s.row(u_old as usize), delta));
                    }
                }
                Some(Relation::Sparse(SparseRows::from_rows(n_new, rows)).compact())
            }
            Relation::Dense(m) => {
                let mut out = NodeMatrix::try_empty(n_new).ok()?;
                for u in 0..n_new as u32 {
                    if is_dirty(u) {
                        for c in self.recompute_row(shape, u) {
                            out.set(NodeId(u), NodeId(c));
                        }
                    } else {
                        let u_old = delta.preimage(u).expect("clean rows have preimages");
                        let words =
                            remap_row_words(m.row_words(NodeId(u_old)), delta, n_old, n_new);
                        out.or_words_into_row(NodeId(u), &words);
                    }
                }
                Some(Relation::Dense(out).compact())
            }
        }
    }

    /// Recompile one composite entry from its (already updated) children.
    /// `Err` means a child is missing (dropped at capacity) or the kernels
    /// refused the result; the caller drops the entry.
    fn rebuild_composite(&mut self, shape: &Shape) -> Result<Arc<LazyRel>, ()> {
        fn child(store: &MatrixStore, id: ExprId) -> Result<Arc<LazyRel>, ()> {
            store.relations[id.index()].as_ref().map(Arc::clone).ok_or(())
        }
        let mode = self.mode;
        match shape {
            Shape::Step(..) => unreachable!("steps rebuild from the tree"),
            Shape::Seq(a, b) => {
                let (ra, rb) = (child(self, *a)?, child(self, *b)?);
                LazyRel::product(&ra, &rb, mode, &mut self.kernels).map_err(|_| ())
            }
            Shape::Union(a, b) => {
                let (ra, rb) = (child(self, *a)?, child(self, *b)?);
                LazyRel::union(&ra, &rb, mode, &mut self.kernels).map_err(|_| ())
            }
            Shape::Except(p) => {
                let rp = child(self, *p)?;
                LazyRel::complement(&rp, mode, &mut self.kernels).map_err(|_| ())
            }
            Shape::Test(p) => {
                let rp = child(self, *p)?;
                Ok(LazyRel::diagonal_filter(&rp, mode, &mut self.kernels))
            }
        }
    }
}

/// A thread-safe, sharded wrapper around [`MatrixStore`]: the cache design
/// behind `ppl_xpath::Session`.
///
/// Every evaluation routes to one of `shards` independent single-threaded
/// stores by the hash of the evaluated expression, and only that shard's
/// `Mutex` is held while compiling.  The unit of caching in the Theorem 1
/// pipeline is the PPLbin *atom* (queries are answered atom by atom), and
/// equal atoms always hash to the same shard, so the sharing that matters —
/// the same atom re-requested by later queries, possibly from other
/// threads — is always a cache hit.  What sharding gives up is *cross-shard*
/// subterm sharing: two distinct atoms that happen to contain a common
/// subterm may compile it once per shard.  That duplication is bounded by
/// the shard count and buys lock granularity: threads serving disjoint
/// atoms never contend.
///
/// All methods take `&self`; the type is `Send + Sync` and is meant to be
/// shared behind an `Arc`.
#[derive(Debug)]
pub struct SharedMatrixStore {
    domain: usize,
    shards: Vec<Mutex<MatrixStore>>,
}

/// Default shard count of a [`SharedMatrixStore`].
pub const DEFAULT_STORE_SHARDS: usize = 8;

impl SharedMatrixStore {
    /// A store for trees with `domain` nodes, with the default shard count
    /// and kernel mode.
    pub fn new(domain: usize) -> SharedMatrixStore {
        Self::with_shards_and_mode(domain, DEFAULT_STORE_SHARDS, KernelMode::default())
    }

    /// A store with an explicit kernel mode.
    pub fn with_mode(domain: usize, mode: KernelMode) -> SharedMatrixStore {
        Self::with_shards_and_mode(domain, DEFAULT_STORE_SHARDS, mode)
    }

    /// A store with explicit shard count and kernel mode.  `shards` is
    /// clamped to at least 1.
    pub fn with_shards_and_mode(
        domain: usize,
        shards: usize,
        mode: KernelMode,
    ) -> SharedMatrixStore {
        let shards = shards.max(1);
        SharedMatrixStore {
            domain,
            shards: (0..shards)
                .map(|_| Mutex::new(MatrixStore::with_mode(domain, mode)))
                .collect(),
        }
    }

    /// The node count the store was created for.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of independent shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lock the shard responsible for `expr`, applying the poison policy of
    /// [`SharedMatrixStore::recover_shard`].
    fn shard(&self, expr: &BinExpr) -> MutexGuard<'_, MatrixStore> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        expr.hash(&mut hasher);
        let shard = (hasher.finish() as usize) % self.shards.len();
        match self.shards[shard].lock() {
            Ok(guard) => guard,
            Err(poisoned) => Self::recover_shard(&self.shards[shard], poisoned),
        }
    }

    fn each_shard<R>(&self, mut f: impl FnMut(&mut MatrixStore) -> R) -> Vec<R> {
        self.shards
            .iter()
            .map(|s| {
                let mut guard = match s.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => Self::recover_shard(s, poisoned),
                };
                f(&mut guard)
            })
            .collect()
    }

    /// Poison policy: a panicking evaluation may have left a half-built
    /// entry (a reserved slot whose relation never landed) in the shard it
    /// held, so the shard's cache is cleared and the poison flag reset.
    /// Losing one shard's cache costs recompilation; trusting a mid-update
    /// cache — or killing every worker that touches the shard next, which
    /// is what `lock().unwrap()` did before PR 9 — is far worse.
    fn recover_shard<'a>(
        mutex: &'a Mutex<MatrixStore>,
        poisoned: xpath_sync::PoisonError<MutexGuard<'a, MatrixStore>>,
    ) -> MutexGuard<'a, MatrixStore> {
        let mut guard = poisoned.into_inner();
        guard.clear();
        mutex.clear_poison();
        guard
    }

    /// Evaluate a PPLbin expression to a dense [`NodeMatrix`] through the
    /// cache (see [`MatrixStore::eval`]).
    pub fn eval(&self, tree: &Tree, expr: &BinExpr) -> NodeMatrix {
        self.shard(expr).eval(tree, expr)
    }

    /// Evaluate a PPLbin expression to its adaptive [`Relation`] through
    /// the cache.
    pub fn eval_relation(&self, tree: &Tree, expr: &BinExpr) -> Relation {
        self.shard(expr).eval_relation(tree, expr)
    }

    /// Fallible evaluation to a concrete [`Relation`] (see
    /// [`MatrixStore::try_eval_relation`]).
    pub fn try_eval_relation(
        &self,
        tree: &Tree,
        expr: &BinExpr,
    ) -> Result<Relation, CapacityError> {
        self.shard(expr).try_eval_relation(tree, expr)
    }

    /// The Prop. 10 successor lists of `expr`, shared behind an `Arc` (see
    /// [`MatrixStore::successor_lists`]).  The shard lock is held only while
    /// compiling; callers answer from the returned lists lock-free.
    pub fn successor_lists(&self, tree: &Tree, expr: &BinExpr) -> Arc<Vec<Vec<NodeId>>> {
        self.shard(expr).successor_lists(tree, expr)
    }

    /// Fallible form of [`SharedMatrixStore::successor_lists`].
    pub fn try_successor_lists(
        &self,
        tree: &Tree,
        expr: &BinExpr,
    ) -> Result<Arc<Vec<Vec<NodeId>>>, CapacityError> {
        self.shard(expr).try_successor_lists(tree, expr)
    }

    /// Mode-appropriate successor rows (see
    /// [`MatrixStore::successor_source`]); the shard lock is held only while
    /// compiling the symbolic form — lazy rows materialise lock-free behind
    /// the returned handle.
    pub fn successor_source(
        &self,
        tree: &Tree,
        expr: &BinExpr,
    ) -> Result<SuccessorSource, CapacityError> {
        self.shard(expr).successor_source(tree, expr)
    }

    /// Is `expr` already compiled?  Pure inspection of the responsible
    /// shard (no interning, no hit/miss accounting).
    pub fn is_compiled(&self, expr: &BinExpr) -> bool {
        self.shard(expr).is_compiled(expr)
    }

    /// Aggregate cache counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for stats in self.each_shard(|s| s.stats()) {
            out.merge(&stats);
        }
        out
    }

    /// Aggregate per-kernel dispatch counters across all shards.
    pub fn kernel_stats(&self) -> KernelStats {
        self.stats().kernels
    }

    /// Approximate heap occupancy across all shards, in bytes (see
    /// [`MatrixStore::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        self.each_shard(|s| s.approx_bytes()).iter().sum()
    }

    /// The kernel mode shards compile with (uniform across shards).
    pub fn mode(&self) -> KernelMode {
        self.shards[0]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .mode()
    }

    /// Switch every shard's kernel mode; already-compiled relations are
    /// kept.
    pub fn set_mode(&self, mode: KernelMode) {
        self.each_shard(|s| s.set_mode(mode));
    }

    /// Drop every cached relation and counter in every shard.
    pub fn clear(&self) {
        self.each_shard(|s| s.clear());
    }

    /// A post-edit copy of this store: every shard is cloned and carried
    /// through the edit with [`MatrixStore::apply_edit`].  The original is
    /// left untouched (each shard lock is held only while cloning), so
    /// in-flight readers of the old store never observe a half-applied
    /// edit — the serving layer swaps the returned store in atomically and
    /// lets old snapshots drain.
    pub fn fork_edited(
        &self,
        new_tree: &Tree,
        delta: &EditDelta,
    ) -> (SharedMatrixStore, EditApplyStats) {
        let mut stats = EditApplyStats::default();
        let shards = self.each_shard(|s| {
            let mut forked = s.clone();
            stats.merge(&forked.apply_edit(new_tree, delta));
            Mutex::new(forked)
        });
        (
            SharedMatrixStore {
                domain: new_tree.len(),
                shards,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::answer_binary;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::parse_path;

    fn tree() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title),paper(title))")
            .unwrap()
    }

    fn bin(src: &str) -> BinExpr {
        from_variable_free_path(&parse_path(src).unwrap()).unwrap()
    }

    #[test]
    fn cached_evaluation_matches_cold_evaluation() {
        let t = tree();
        let mut store = MatrixStore::new(t.len());
        for src in [
            "child::book/child::author",
            "descendant::* except child::*",
            "child::book[child::author]/child::title",
            "(child::book union child::paper)/child::title",
            "child::book/child::author", // repeated on purpose
        ] {
            let b = bin(src);
            assert_eq!(store.eval(&t, &b), answer_binary(&t, &b), "{src}");
        }
    }

    #[test]
    fn repeated_evaluation_hits_the_cache() {
        let t = tree();
        let mut store = MatrixStore::new(t.len());
        let b = bin("child::book/child::author");
        store.eval(&t, &b);
        let first = store.stats();
        assert_eq!(first.hits, 0);
        assert_eq!(first.misses, 3); // two steps + the composition
        store.eval(&t, &b);
        let second = store.stats();
        assert_eq!(second.misses, first.misses, "no recompilation");
        assert!(second.hits > first.hits);
        assert_eq!(second.lookups(), 4);
    }

    #[test]
    fn shared_subterms_are_hash_consed_across_queries() {
        let t = tree();
        let mut store = MatrixStore::new(t.len());
        store.eval(&t, &bin("child::book/child::author"));
        let before = store.stats();
        // A different query sharing the `child::book` step: only the new
        // step and the new composition are compiled.
        store.eval(&t, &bin("child::book/child::title"));
        let after = store.stats();
        assert_eq!(after.misses, before.misses + 2);
        assert!(after.hits > before.hits, "child::book must be reused");
        assert_eq!(after.interned, before.interned + 2);
    }

    #[test]
    fn interning_is_structural() {
        let mut store = MatrixStore::new(1);
        let a = store.intern(&bin("child::a/child::b"));
        let b = store.intern(&bin("child::a/child::b"));
        let c = store.intern(&bin("child::b/child::a"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.index(), store.intern(&bin("child::a/child::b")).index());
    }

    #[test]
    fn successor_lists_match_matrix_rows_and_are_shared() {
        let t = tree();
        let mut store = MatrixStore::new(t.len());
        let b = bin("descendant::title");
        let lists = store.successor_lists(&t, &b);
        let m = answer_binary(&t, &b);
        for u in t.nodes() {
            let expected: Vec<NodeId> = m.successors(u).collect();
            assert_eq!(lists[u.index()], expected);
        }
        let again = store.successor_lists(&t, &b);
        assert!(Arc::ptr_eq(&lists, &again), "lists must be shared, not rebuilt");
    }

    #[test]
    fn shared_store_matches_cold_and_is_queried_concurrently() {
        let t = tree();
        let store = SharedMatrixStore::new(t.len());
        let exprs: Vec<BinExpr> = [
            "child::book/child::author",
            "descendant::* except child::*",
            "(child::book union child::paper)/child::title",
            "descendant::title",
        ]
        .iter()
        .map(|s| bin(s))
        .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for b in &exprs {
                        assert_eq!(store.eval(&t, b), answer_binary(&t, b));
                        let lists = store.successor_lists(&t, b);
                        assert_eq!(lists.len(), t.len());
                    }
                });
            }
        });
        let stats = store.stats();
        assert!(stats.hits > 0, "threads must share compiled atoms: {stats:?}");
        assert!(stats.compiled > 0);
        store.clear();
        assert_eq!(store.stats().lookups(), 0);
        assert_eq!(store.domain(), t.len());
        assert!(store.shard_count() >= 1);
    }

    /// PR 9 poison policy: a panic while a shard lock is held clears that
    /// shard's cache and resets the poison flag — the next caller serves a
    /// correct answer from a cold cache instead of dying on `unwrap()`.
    #[test]
    fn poisoned_shard_clears_its_cache_and_keeps_serving() {
        let t = tree();
        let store = SharedMatrixStore::with_shards_and_mode(t.len(), 1, KernelMode::default());
        let b = bin("child::book/child::author");
        store.eval(&t, &b);
        assert!(store.stats().lookups() > 0, "warm cache before the panic");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.each_shard(|_| panic!("evaluation blew up while holding the shard"));
        }));
        assert!(caught.is_err());
        // First touch after the poison recovers the shard: cache cleared.
        assert_eq!(store.stats().lookups(), 0, "clear-on-poison drops the cache");
        // And the store keeps answering, recompiling from scratch.
        assert_eq!(store.eval(&t, &b), answer_binary(&t, &b));
        assert_eq!(store.eval(&t, &b), answer_binary(&t, &b));
        assert!(store.stats().hits > 0, "cache rebuilds after recovery");
    }

    #[test]
    fn shared_store_is_compiled_reports_without_counting() {
        let t = tree();
        let store = SharedMatrixStore::new(t.len());
        let b = bin("child::book/child::author");
        assert!(!store.is_compiled(&b));
        store.eval(&t, &b);
        let before = store.stats();
        assert!(store.is_compiled(&b));
        assert!(!store.is_compiled(&bin("descendant::publisher")));
        assert_eq!(store.stats().lookups(), before.lookups());
    }

    #[test]
    fn shared_store_mode_switch_applies_to_every_shard() {
        let store = SharedMatrixStore::with_mode(4, KernelMode::Dense);
        assert_eq!(store.mode(), KernelMode::Dense);
        store.set_mode(KernelMode::Adaptive);
        assert_eq!(store.mode(), KernelMode::Adaptive);
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let t = tree();
        let mut store = MatrixStore::new(t.len());
        store.eval(&t, &bin("child::*"));
        assert!(store.stats().compiled > 0);
        store.clear();
        assert_eq!(store.stats(), CacheStats::default());
        assert_eq!(store.domain(), t.len());
    }

    #[test]
    fn approx_bytes_tracks_compiled_state_and_clears() {
        let t = tree();
        let store = SharedMatrixStore::new(t.len());
        assert_eq!(store.approx_bytes(), 0, "empty stores occupy nothing");
        store.eval(&t, &bin("descendant::* except child::*"));
        let after_eval = store.approx_bytes();
        assert!(after_eval > 0, "compiled relations must be accounted");
        store.successor_lists(&t, &bin("descendant::* except child::*"));
        assert!(
            store.approx_bytes() > after_eval,
            "successor lists must add occupancy"
        );
        store.clear();
        assert_eq!(store.approx_bytes(), 0, "clear() must release the accounting");
    }

    #[test]
    #[should_panic(expected = "MatrixStore was created for")]
    fn domain_mismatch_is_rejected() {
        let t = tree();
        let mut store = MatrixStore::new(t.len() + 1);
        store.eval(&t, &bin("child::*"));
    }

    /// The query mix the edit tests pin: every operator (`Seq`, `Union`,
    /// `Except`, `Test`), every axis family, shared subterms.
    const EDIT_QUERIES: &[&str] = &[
        "child::book/child::author",
        "descendant::title",
        "descendant::* except child::*",
        "child::book[child::author]/child::title",
        "(child::book union child::paper)/child::title",
        "following-sibling::*/child::title",
        "parent::*/descendant::author",
        "self::*[descendant::author]",
    ];

    fn assert_store_matches_cold(store: &mut MatrixStore, t: &Tree, ctx: &str) {
        let mut cold = MatrixStore::with_mode(t.len(), store.mode());
        for src in EDIT_QUERIES {
            let b = bin(src);
            assert_eq!(
                store.eval(t, &b),
                cold.eval(t, &b),
                "{ctx}: {src} diverged from a cold compile"
            );
        }
    }

    /// `apply_edit` must leave the store indistinguishable from a cold
    /// store compiled on the post-edit tree — across every kernel mode and
    /// all three edit kinds.
    #[test]
    fn apply_edit_matches_cold_recompile_for_every_mode_and_edit_kind() {
        for mode in [
            KernelMode::Dense,
            KernelMode::Adaptive,
            KernelMode::AdaptiveThreaded,
            KernelMode::Lazy,
        ] {
            let t0 = tree();
            let mut store = MatrixStore::with_mode(t0.len(), mode);
            for src in EDIT_QUERIES {
                store.eval(&t0, &bin(src));
            }

            // Insert a subtree under the second book.
            let sub = Tree::from_terms("note(author,ref(title))").unwrap();
            let book2 = t0.nodes_with_label_str("book")[1];
            let (t1, delta) = t0.insert_subtree(book2, 1, &sub).unwrap();
            let stats = store.apply_edit(&t1, &delta);
            assert_eq!(stats.entries_dropped, 0, "{mode:?}: nothing at capacity");
            assert!(stats.rows_total > 0);
            assert_store_matches_cold(&mut store, &t1, &format!("{mode:?} insert"));

            // Relabel a title to a name outside the query mix's footprint…
            let title = t1.nodes_with_label_str("title")[0];
            let (t2, delta) = t1.relabel(title, "subtitle").unwrap();
            let stats = store.apply_edit(&t2, &delta);
            assert!(
                stats.entries_kept > 0,
                "{mode:?}: entries outside the label footprint must survive a relabel"
            );
            assert_store_matches_cold(&mut store, &t2, &format!("{mode:?} relabel"));

            // …and delete the first book's whole subtree.
            let book1 = t2.nodes_with_label_str("book")[0];
            let (t3, delta) = t2.delete_subtree(book1).unwrap();
            store.apply_edit(&t3, &delta);
            assert_store_matches_cold(&mut store, &t3, &format!("{mode:?} delete"));
            assert_eq!(store.domain(), t3.len());
        }
    }

    /// On a larger document a leaf-local edit must patch entries rather
    /// than rebuild everything: the invalidated-row count stays far below
    /// the total.
    #[test]
    fn leaf_edits_on_a_wide_tree_patch_instead_of_rebuilding() {
        let wide = format!(
            "bib({})",
            (0..120)
                .map(|_| "book(author,title)")
                .collect::<Vec<_>>()
                .join(",")
        );
        let t0 = Tree::from_terms(&wide).unwrap();
        let mut store = MatrixStore::new(t0.len());
        for src in ["child::book/child::author", "descendant::title"] {
            store.eval(&t0, &bin(src));
        }
        let sub = Tree::from_terms("title").unwrap();
        let book = t0.nodes_with_label_str("book")[60];
        let (t1, delta) = t0.insert_subtree(book, 2, &sub).unwrap();
        let stats = store.apply_edit(&t1, &delta);
        assert!(stats.entries_patched > 0, "{stats:?}");
        assert!(
            stats.rows_invalidated * 10 < stats.rows_total,
            "a leaf insert must invalidate few rows: {stats:?}"
        );
        assert_store_matches_cold(&mut store, &t1, "wide-tree insert");
    }

    /// `fork_edited` leaves the original store intact and answering over
    /// the old tree, while the fork answers over the new one.
    #[test]
    fn fork_edited_preserves_the_original_snapshot() {
        let t0 = tree();
        let store = SharedMatrixStore::new(t0.len());
        let b = bin("child::book/child::author");
        let before = store.eval(&t0, &b);

        let sub = Tree::from_terms("book(author)").unwrap();
        let (t1, delta) = t0.insert_subtree(t0.root(), 0, &sub).unwrap();
        let (forked, stats) = store.fork_edited(&t1, &delta);
        assert!(stats.rows_total > 0);
        assert_eq!(forked.domain(), t1.len());

        // Old snapshot still consistent…
        assert_eq!(store.eval(&t0, &b), before);
        assert_eq!(store.domain(), t0.len());
        // …and the fork agrees with a cold compile on the new tree.
        assert_eq!(forked.eval(&t1, &b), answer_binary(&t1, &b));
    }
}
