//! Amortized matrix compilation: a per-document cache of compiled PPLbin
//! matrices.
//!
//! Theorem 1's bound `O(|P|·|t|³ + n·|P|·|t|²·|A|)` is dominated by the
//! `|t|³` matrix compilation of the PPLbin atoms, yet that work depends only
//! on the *(tree, expression)* pair — never on the query's variables or
//! output.  A [`MatrixStore`] therefore memoises every compiled subterm so a
//! workload of many queries over one document pays each `|t|³` product once:
//!
//! * **steps** — the `M_{A::N}` matrices of `step_matrix` are keyed by
//!   `(Axis, NameTest)`;
//! * **composite subterms** — `Seq`/`Union`/`Except`/`Test` nodes are
//!   *hash-consed*: structurally equal subterms (even across different
//!   queries) intern to the same [`ExprId`] in amortised `O(1)` per AST
//!   node, and each id's matrix is computed at most once;
//! * **successor lists** — the Prop. 10 oracle representation
//!   (`u ↦ {u' | (u,u') ∈ q_b(t)}`) derived from a matrix is cached per
//!   [`ExprId`] behind an `Rc`, so repeated HCL⁻ answering over the same
//!   atoms shares one allocation.
//!
//! The store is deliberately tree-agnostic in its API (the caller passes the
//! `&Tree` on every evaluation) but domain-checked: it is created for a
//! fixed node count and will panic if used with a tree of a different size.
//! `ppl_xpath::Document` owns one store behind interior mutability and
//! threads it through every cached entry point.

use crate::eval::step_relation_in_mode;
use crate::matrix::NodeMatrix;
use crate::relation::{KernelMode, KernelStats, Relation};
use std::collections::HashMap;
use std::rc::Rc;
use xpath_ast::{BinExpr, NameTest};
use xpath_tree::{Axis, NodeId, Tree};

/// Identifier of a hash-consed PPLbin subterm inside a [`MatrixStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// Dense index of the subterm.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One hash-consing node: a [`BinExpr`] constructor with interned children.
///
/// Because children are `ExprId`s rather than boxed subtrees, hashing a
/// shape is `O(1)` (plus the name-test string for steps), which is what
/// makes interning a whole expression linear in its size.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Shape {
    Step(Axis, NameTest),
    Seq(ExprId, ExprId),
    Union(ExprId, ExprId),
    Except(ExprId),
    Test(ExprId),
}

/// Cache-effectiveness counters of a [`MatrixStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Subterm evaluations answered from the cache.
    pub hits: u64,
    /// Subterm evaluations that had to compile a matrix.
    pub misses: u64,
    /// Distinct subterms interned so far.
    pub interned: usize,
    /// Subterms whose matrix has been compiled and retained.
    pub compiled: usize,
    /// Per-kernel dispatch counters of the compilations behind the misses.
    pub kernels: KernelStats,
}

impl CacheStats {
    /// Total lookups (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A memoising compiler of PPLbin expressions over one fixed document tree.
#[derive(Debug, Clone, Default)]
pub struct MatrixStore {
    domain: usize,
    /// Hash-consing table: shape → id.
    ids: HashMap<Shape, ExprId>,
    /// Shape of each interned id (indexed by `ExprId::index`).
    shapes: Vec<Shape>,
    /// Compiled relation of each interned id, if computed already — kept in
    /// its adaptive representation so downstream compositions stay
    /// structure-aware; materialised to [`NodeMatrix`] only at the public
    /// boundary.
    relations: Vec<Option<Relation>>,
    /// Cached Prop. 10 successor lists, shared with callers via `Rc`.
    successors: HashMap<ExprId, Rc<Vec<Vec<NodeId>>>>,
    /// Which kernels the store compiles with.
    mode: KernelMode,
    /// Per-kernel dispatch counters across all compilations.
    kernels: KernelStats,
    hits: u64,
    misses: u64,
}

impl MatrixStore {
    /// An empty store for trees with `domain` nodes, using the default
    /// (adaptive, threaded) kernels.
    pub fn new(domain: usize) -> MatrixStore {
        MatrixStore {
            domain,
            ..MatrixStore::default()
        }
    }

    /// An empty store compiling with an explicit [`KernelMode`] (the E11
    /// ablation benchmark sweeps all three).
    pub fn with_mode(domain: usize, mode: KernelMode) -> MatrixStore {
        MatrixStore {
            domain,
            mode,
            ..MatrixStore::default()
        }
    }

    /// The node count the store was created for.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// The kernel mode the store compiles with.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Switch kernel modes.  Already-compiled relations are kept (they are
    /// equivalent under every mode); only future compilations change.
    pub fn set_mode(&mut self, mode: KernelMode) {
        self.mode = mode;
    }

    /// Current cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            interned: self.shapes.len(),
            compiled: self.relations.iter().filter(|m| m.is_some()).count(),
            kernels: self.kernels,
        }
    }

    /// Per-kernel dispatch counters only.
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernels
    }

    /// Drop every cached relation and counter (the hash-consing table is
    /// cleared too); the kernel mode is kept.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.shapes.clear();
        self.relations.clear();
        self.successors.clear();
        self.kernels = KernelStats::default();
        self.hits = 0;
        self.misses = 0;
    }

    fn check_tree(&self, tree: &Tree) {
        assert_eq!(
            tree.len(),
            self.domain,
            "MatrixStore was created for {}-node trees, got {} nodes",
            self.domain,
            tree.len()
        );
    }

    /// Hash-cons an expression: structurally equal subterms map to the same
    /// id. Linear in the expression size.
    pub fn intern(&mut self, expr: &BinExpr) -> ExprId {
        let shape = match expr {
            BinExpr::Step(axis, test) => Shape::Step(*axis, test.clone()),
            BinExpr::Seq(a, b) => {
                let (a, b) = (self.intern(a), self.intern(b));
                Shape::Seq(a, b)
            }
            BinExpr::Union(a, b) => {
                let (a, b) = (self.intern(a), self.intern(b));
                Shape::Union(a, b)
            }
            BinExpr::Except(p) => Shape::Except(self.intern(p)),
            BinExpr::Test(p) => Shape::Test(self.intern(p)),
        };
        if let Some(&id) = self.ids.get(&shape) {
            return id;
        }
        let id = ExprId(self.shapes.len() as u32);
        self.ids.insert(shape.clone(), id);
        self.shapes.push(shape);
        self.relations.push(None);
        id
    }

    /// Make sure the relation of `id` is compiled, reusing every already
    /// compiled child.
    fn ensure(&mut self, tree: &Tree, id: ExprId) {
        if self.relations[id.index()].is_some() {
            self.hits += 1;
            return;
        }
        self.misses += 1;
        let mode = self.mode;
        let shape = self.shapes[id.index()].clone();
        let r = match shape {
            Shape::Step(axis, test) => {
                step_relation_in_mode(tree, axis, &test, mode, &mut self.kernels)
            }
            Shape::Seq(a, b) => {
                self.ensure(tree, a);
                self.ensure(tree, b);
                let ra = self.relations[a.index()].as_ref().expect("ensured");
                let rb = self.relations[b.index()].as_ref().expect("ensured");
                ra.product(rb, mode, &mut self.kernels)
            }
            Shape::Union(a, b) => {
                self.ensure(tree, a);
                self.ensure(tree, b);
                let ra = self.relations[a.index()].as_ref().expect("ensured");
                let rb = self.relations[b.index()].as_ref().expect("ensured");
                ra.union(rb, mode, &mut self.kernels)
            }
            Shape::Except(p) => {
                self.ensure(tree, p);
                let rp = self.relations[p.index()].as_ref().expect("ensured");
                rp.complement(mode, &mut self.kernels)
            }
            Shape::Test(p) => {
                self.ensure(tree, p);
                let rp = self.relations[p.index()].as_ref().expect("ensured");
                rp.diagonal_filter(mode, &mut self.kernels)
            }
        };
        self.relations[id.index()] = Some(r);
    }

    /// Evaluate a PPLbin expression through the cache: equal subterms (from
    /// this or any earlier call) are compiled exactly once.  The result is
    /// materialised as a dense [`NodeMatrix`] — the public boundary keeps
    /// its pre-adaptive type so existing callers work unchanged.
    pub fn eval(&mut self, tree: &Tree, expr: &BinExpr) -> NodeMatrix {
        self.eval_relation(tree, expr).to_matrix()
    }

    /// Evaluate a PPLbin expression through the cache to its adaptive
    /// [`Relation`] representation.
    pub fn eval_relation(&mut self, tree: &Tree, expr: &BinExpr) -> Relation {
        self.check_tree(tree);
        let id = self.intern(expr);
        self.ensure(tree, id);
        self.relations[id.index()].clone().expect("ensured")
    }

    /// The Prop. 10 oracle lists for `expr`: `lists[u] = {u' | (u,u') ∈
    /// q_expr(t)}` in document order, shared behind an `Rc` so repeated
    /// callers pay one pointer clone.  Built straight from the adaptive
    /// representation — interval and sparse relations never materialise
    /// their bits.
    pub fn successor_lists(&mut self, tree: &Tree, expr: &BinExpr) -> Rc<Vec<Vec<NodeId>>> {
        self.check_tree(tree);
        let id = self.intern(expr);
        self.ensure(tree, id);
        if let Some(lists) = self.successors.get(&id) {
            return Rc::clone(lists);
        }
        let r = self.relations[id.index()].as_ref().expect("ensured");
        let lists: Vec<Vec<NodeId>> = (0..self.domain)
            .map(|u| r.successor_list(NodeId(u as u32)))
            .collect();
        let rc = Rc::new(lists);
        self.successors.insert(id, Rc::clone(&rc));
        rc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::answer_binary;
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_ast::parse_path;

    fn tree() -> Tree {
        Tree::from_terms("bib(book(author,title),book(author,author,title),paper(title))")
            .unwrap()
    }

    fn bin(src: &str) -> BinExpr {
        from_variable_free_path(&parse_path(src).unwrap()).unwrap()
    }

    #[test]
    fn cached_evaluation_matches_cold_evaluation() {
        let t = tree();
        let mut store = MatrixStore::new(t.len());
        for src in [
            "child::book/child::author",
            "descendant::* except child::*",
            "child::book[child::author]/child::title",
            "(child::book union child::paper)/child::title",
            "child::book/child::author", // repeated on purpose
        ] {
            let b = bin(src);
            assert_eq!(store.eval(&t, &b), answer_binary(&t, &b), "{src}");
        }
    }

    #[test]
    fn repeated_evaluation_hits_the_cache() {
        let t = tree();
        let mut store = MatrixStore::new(t.len());
        let b = bin("child::book/child::author");
        store.eval(&t, &b);
        let first = store.stats();
        assert_eq!(first.hits, 0);
        assert_eq!(first.misses, 3); // two steps + the composition
        store.eval(&t, &b);
        let second = store.stats();
        assert_eq!(second.misses, first.misses, "no recompilation");
        assert!(second.hits > first.hits);
        assert_eq!(second.lookups(), 4);
    }

    #[test]
    fn shared_subterms_are_hash_consed_across_queries() {
        let t = tree();
        let mut store = MatrixStore::new(t.len());
        store.eval(&t, &bin("child::book/child::author"));
        let before = store.stats();
        // A different query sharing the `child::book` step: only the new
        // step and the new composition are compiled.
        store.eval(&t, &bin("child::book/child::title"));
        let after = store.stats();
        assert_eq!(after.misses, before.misses + 2);
        assert!(after.hits > before.hits, "child::book must be reused");
        assert_eq!(after.interned, before.interned + 2);
    }

    #[test]
    fn interning_is_structural() {
        let mut store = MatrixStore::new(1);
        let a = store.intern(&bin("child::a/child::b"));
        let b = store.intern(&bin("child::a/child::b"));
        let c = store.intern(&bin("child::b/child::a"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.index(), store.intern(&bin("child::a/child::b")).index());
    }

    #[test]
    fn successor_lists_match_matrix_rows_and_are_shared() {
        let t = tree();
        let mut store = MatrixStore::new(t.len());
        let b = bin("descendant::title");
        let lists = store.successor_lists(&t, &b);
        let m = answer_binary(&t, &b);
        for u in t.nodes() {
            let expected: Vec<NodeId> = m.successors(u).collect();
            assert_eq!(lists[u.index()], expected);
        }
        let again = store.successor_lists(&t, &b);
        assert!(Rc::ptr_eq(&lists, &again), "lists must be shared, not rebuilt");
    }

    #[test]
    fn clear_resets_counters_and_entries() {
        let t = tree();
        let mut store = MatrixStore::new(t.len());
        store.eval(&t, &bin("child::*"));
        assert!(store.stats().compiled > 0);
        store.clear();
        assert_eq!(store.stats(), CacheStats::default());
        assert_eq!(store.domain(), t.len());
    }

    #[test]
    #[should_panic(expected = "MatrixStore was created for")]
    fn domain_mismatch_is_rejected() {
        let t = tree();
        let mut store = MatrixStore::new(t.len() + 1);
        store.eval(&t, &bin("child::*"));
    }
}
