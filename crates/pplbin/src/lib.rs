//! # `xpath_pplbin` — the Boolean-matrix engine for PPLbin (Theorem 2)
//!
//! Section 4 of the paper gives an algorithm answering binary queries of the
//! variable-free language **PPLbin** (Core XPath 1.0 + `except`) in time
//! `O(|P|·|t|³)`: the binary query of an expression `P` over a tree `t` is
//! represented as a `|t|×|t|` Boolean matrix `M_P^t`, and the operators map
//! to matrix operations over the Boolean semiring:
//!
//! ```text
//! M_{P1/P2}        = M_{P1} · M_{P2}          (Boolean product)
//! M_{P1 union P2}  = M_{P1} + M_{P2}          (element-wise ∨)
//! M_{except P}     = ¬ M_P                     (element-wise complement)
//! M_{[P]}          = [M_P]                     (diagonal of rows with a 1)
//! ```
//!
//! This crate provides:
//!
//! * [`matrix::NodeMatrix`] — bit-packed Boolean node×node matrices with the
//!   four operations above (the product is the naïve cubic one, word-
//!   parallelised over 64-bit blocks, exactly the bound the paper uses;
//!   the `O(n^2.376)` fast-multiplication remark of the paper is out of
//!   scope, see DESIGN.md);
//! * [`eval`] — evaluation of [`xpath_ast::BinExpr`] to matrices
//!   ([`eval::answer_binary`]), including step-matrix construction for every
//!   axis;
//! * [`corexpath1`] — the *linear-time* set-based evaluator of
//!   Gottlob–Koch–Pichler for the `except`-free fragment (Core XPath 1.0),
//!   used as a baseline and for the linear-time unary queries recalled in
//!   Section 4;
//! * [`relation`] — [`relation::Relation`], the adaptive relation
//!   representation (identity / full / per-row intervals / CSR successor
//!   lists / dense bits) with structure-aware product, union, intersection,
//!   complement, diagonal-filter and transpose kernels, plus a row-blocked
//!   multithreaded dense product; axis-shaped operands compose without the
//!   `n³/64` dense scan;
//! * [`store`] — [`store::MatrixStore`], a per-document cache that
//!   hash-conses PPLbin subterms and memoises their compiled relations, so a
//!   workload of queries over one tree pays each `|t|³` product once; and
//!   [`store::SharedMatrixStore`], its sharded thread-safe wrapper
//!   (`&self` evaluation behind per-shard `Mutex`es) that lets one document
//!   serve queries from many threads at once.

#![forbid(unsafe_code)]

pub mod corexpath1;
pub mod eval;
pub mod incremental;
pub mod lazy;
pub mod matrix;
pub mod relation;
pub mod store;

pub use corexpath1::{has_successor_set, succ_set, unary_from_root, NotCoreXPath1};
pub use incremental::EditApplyStats;
pub use eval::{answer_binary, eval_binexpr, eval_relation, step_matrix, step_relation};
pub use lazy::{LazyRel, LazyRows};
pub use matrix::{dense_guard, CapacityError, NodeMatrix, DENSE_BYTE_LIMIT};
pub use relation::{KernelMode, KernelStats, Relation, SparseRows};
pub use store::{
    CacheStats, ExprId, MatrixStore, SharedMatrixStore, SuccessorSource, DEFAULT_STORE_SHARDS,
};
