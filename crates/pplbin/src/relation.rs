//! Structure-aware relation kernels: adaptive representations for the
//! Boolean node×node relations of the Theorem-2 hot path.
//!
//! The `O(|P|·|t|³)` bound of Theorem 2 is dominated by Boolean matrix
//! products, but the matrices the paper actually composes are highly
//! structured: step matrices for `child`/`parent`/sibling axes carry at
//! most `|t|` set bits, and `descendant` rows are *contiguous preorder
//! intervals* (node ids equal preorder numbers, so the subtree below `u`
//! occupies the id range `(u, u + size(u))`).  A [`Relation`] keeps each
//! operand in the cheapest faithful representation:
//!
//! | variant        | exact for                                    | storage |
//! |----------------|----------------------------------------------|---------|
//! | [`Identity`]   | `self::*`                                    | O(1)    |
//! | [`Full`]       | `nodes²` (e.g. `except` of the empty query)   | O(1)    |
//! | [`Interval`]   | `descendant(-or-self)::*`, row-wise ranges   | O(n)    |
//! | [`SparseRows`] | `child`, `parent`, sibling steps, ancestors  | O(nnz)  |
//! | [`Dense`]      | anything (complements, saturated products)   | O(n²/64)|
//!
//! Every kernel picks a specialised path per variant pair (interval rows
//! compose by range merging and OR via two boundary masks plus whole-word
//! fills; sparse operands gather only the bits that exist) and falls back to
//! the bit-packed [`NodeMatrix`] otherwise, re-[`compact`]ing the result so
//! structure lost by one operator can be rediscovered by the next.  A
//! [`KernelMode`] selects between the dense baseline (the pre-PR behaviour),
//! the adaptive kernels, and adaptive kernels plus the row-blocked
//! multithreaded dense product; [`KernelStats`] counts every dispatch so
//! regressions are visible from `pplx --stats` and the E11 ablation.
//!
//! [`Identity`]: Relation::Identity
//! [`Full`]: Relation::Full
//! [`Interval`]: Relation::Interval
//! [`SparseRows`]: Relation::Sparse
//! [`Dense`]: Relation::Dense
//! [`compact`]: Relation::compact

use crate::matrix::{dense_guard, CapacityError, NodeMatrix, PARALLEL_MIN_DIM};
use std::fmt;
use xpath_tree::{NodeId, NodeSet};

/// Which product/union/complement kernels the evaluator dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Always materialise dense [`NodeMatrix`] operands and use the serial
    /// word-parallel product — the pre-adaptive baseline, kept for the E11
    /// ablation benchmark.
    Dense,
    /// Structure-aware kernels, single-threaded.
    Adaptive,
    /// Structure-aware kernels, with the remaining large dense×dense
    /// products handled by the blocked Four-Russians product across scoped
    /// threads.
    #[default]
    AdaptiveThreaded,
    /// Everything `AdaptiveThreaded` does, plus the store keeps the relation
    /// *algebra* symbolic: complements (and expressions over them) are
    /// deferred as [`LazyRel`] nodes whose rows densify on demand, and
    /// successor lists materialise per row as the Fig. 8 answering phase
    /// pulls them.  The mode that opens the 100k–1M-node bench band.
    ///
    /// [`LazyRel`]: crate::lazy::LazyRel
    Lazy,
}

impl KernelMode {
    /// Parse a mode name as used by the `pplx --kernels` flag.
    pub fn parse(name: &str) -> Option<KernelMode> {
        Some(match name {
            "dense" => KernelMode::Dense,
            "adaptive" => KernelMode::Adaptive,
            "adaptive_threaded" | "adaptive-threaded" => KernelMode::AdaptiveThreaded,
            "lazy" => KernelMode::Lazy,
            _ => return None,
        })
    }

    /// Stable name of the mode (inverse of [`KernelMode::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::Dense => "dense",
            KernelMode::Adaptive => "adaptive",
            KernelMode::AdaptiveThreaded => "adaptive_threaded",
            KernelMode::Lazy => "lazy",
        }
    }

    /// Does this mode row-block large dense×dense products across threads?
    pub(crate) fn threaded(self) -> bool {
        matches!(self, KernelMode::AdaptiveThreaded | KernelMode::Lazy)
    }
}

/// Per-kernel dispatch counters, kept by the [`MatrixStore`] and surfaced
/// through `pplx --stats` and the bench harness.
///
/// [`MatrixStore`]: crate::store::MatrixStore
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Step matrices constructed as `Identity`.
    pub step_identity: u64,
    /// Step matrices constructed as row intervals.
    pub step_interval: u64,
    /// Step matrices constructed as CSR successor lists.
    pub step_sparse: u64,
    /// Step matrices that had to densify.
    pub step_dense: u64,
    /// Products short-circuited by an `Identity`/`Full` operand.
    pub product_trivial: u64,
    /// Products through the interval kernels (range merge / masked fill).
    pub product_interval: u64,
    /// Products with a sparse operand (successor-list gather).
    pub product_sparse: u64,
    /// Serial dense×dense products.
    pub product_dense: u64,
    /// Row-blocked multithreaded dense×dense products.
    pub product_dense_threaded: u64,
    /// Unions answered by a structured (interval/sparse/trivial) kernel.
    pub union_structured: u64,
    /// Unions that fell back to dense word ORs.
    pub union_dense: u64,
    /// Intersections answered by a structured kernel.
    pub intersect_structured: u64,
    /// Intersections that fell back to dense word ANDs.
    pub intersect_dense: u64,
    /// Complement operations (always materialise unless trivial).
    pub complement_ops: u64,
    /// `[M]` diagonal-filter operations.
    pub diagonal_ops: u64,
    /// Transpose operations.
    pub transpose_ops: u64,
}

impl KernelStats {
    /// Total kernel dispatches of any kind.
    pub fn total(&self) -> u64 {
        self.step_identity
            + self.step_interval
            + self.step_sparse
            + self.step_dense
            + self.product_trivial
            + self.product_interval
            + self.product_sparse
            + self.product_dense
            + self.product_dense_threaded
            + self.union_structured
            + self.union_dense
            + self.intersect_structured
            + self.intersect_dense
            + self.complement_ops
            + self.diagonal_ops
            + self.transpose_ops
    }

    /// Accumulate another counter set (used to aggregate the per-shard
    /// counters of a `SharedMatrixStore`).
    pub fn merge(&mut self, other: &KernelStats) {
        // Exhaustive destructuring (no `..`): adding a counter field without
        // aggregating it here becomes a compile error, not a silent zero in
        // `pplx --stats`.
        let KernelStats {
            step_identity,
            step_interval,
            step_sparse,
            step_dense,
            product_trivial,
            product_interval,
            product_sparse,
            product_dense,
            product_dense_threaded,
            union_structured,
            union_dense,
            intersect_structured,
            intersect_dense,
            complement_ops,
            diagonal_ops,
            transpose_ops,
        } = *other;
        self.step_identity += step_identity;
        self.step_interval += step_interval;
        self.step_sparse += step_sparse;
        self.step_dense += step_dense;
        self.product_trivial += product_trivial;
        self.product_interval += product_interval;
        self.product_sparse += product_sparse;
        self.product_dense += product_dense;
        self.product_dense_threaded += product_dense_threaded;
        self.union_structured += union_structured;
        self.union_dense += union_dense;
        self.intersect_structured += intersect_structured;
        self.intersect_dense += intersect_dense;
        self.complement_ops += complement_ops;
        self.diagonal_ops += diagonal_ops;
        self.transpose_ops += transpose_ops;
    }

    pub(crate) fn record_step(&mut self, relation: &Relation) {
        match relation {
            Relation::Identity(_) => self.step_identity += 1,
            Relation::Full(_) | Relation::Interval { .. } => self.step_interval += 1,
            Relation::Sparse(_) => self.step_sparse += 1,
            Relation::Dense(_) => self.step_dense += 1,
        }
    }
}

impl fmt::Display for KernelStats {
    /// One-line rendering used by `pplx --stats`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps id/iv/sp/dn {}/{}/{}/{}, products triv/iv/sp/dn/thr {}/{}/{}/{}/{}, \
             unions st/dn {}/{}, intersects st/dn {}/{}, compl {}, diag {}, transp {}",
            self.step_identity,
            self.step_interval,
            self.step_sparse,
            self.step_dense,
            self.product_trivial,
            self.product_interval,
            self.product_sparse,
            self.product_dense,
            self.product_dense_threaded,
            self.union_structured,
            self.union_dense,
            self.intersect_structured,
            self.intersect_dense,
            self.complement_ops,
            self.diagonal_ops,
            self.transpose_ops,
        )
    }
}

/// CSR-style successor lists: per-row sorted column indices.
///
/// Exact and compact for the low-popcount step matrices (`child`, `parent`,
/// the four sibling axes, `ancestor` chains) and for diagonal filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseRows {
    n: usize,
    /// `offsets[u]..offsets[u+1]` indexes `cols` for row `u`; length `n+1`.
    offsets: Vec<u32>,
    /// Strictly increasing within each row.
    cols: Vec<u32>,
}

impl SparseRows {
    /// The empty relation on `n` nodes.
    pub fn empty(n: usize) -> SparseRows {
        SparseRows {
            n,
            offsets: vec![0; n + 1],
            cols: Vec::new(),
        }
    }

    /// Build from per-row column lists (each must be sorted and deduped).
    pub fn from_rows(n: usize, rows: impl IntoIterator<Item = Vec<u32>>) -> SparseRows {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        offsets.push(0);
        for row in rows {
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "rows must be sorted");
            cols.extend_from_slice(&row);
            offsets.push(cols.len() as u32);
        }
        assert_eq!(offsets.len(), n + 1, "one row list per node expected");
        SparseRows { n, offsets, cols }
    }

    /// Build from lexicographically sorted, deduped `(row, col)` pairs.
    pub fn from_sorted_pairs(n: usize, pairs: &[(u32, u32)]) -> SparseRows {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(pairs.len());
        let mut i = 0;
        offsets.push(0);
        for u in 0..n as u32 {
            while i < pairs.len() && pairs[i].0 == u {
                cols.push(pairs[i].1);
                i += 1;
            }
            offsets.push(cols.len() as u32);
        }
        debug_assert_eq!(i, pairs.len(), "pairs must be sorted by row");
        SparseRows { n, offsets, cols }
    }

    /// The sorted columns of row `u`.
    #[inline]
    pub fn row(&self, u: usize) -> &[u32] {
        &self.cols[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Approximate heap footprint of the CSR arrays, in bytes.
    pub fn approx_bytes(&self) -> usize {
        (self.offsets.len() + self.cols.len()) * std::mem::size_of::<u32>()
    }

    /// Number of stored pairs.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Transpose in O(n + nnz) by counting sort; output rows stay sorted
    /// because source rows are visited in ascending order.
    fn transpose(&self) -> SparseRows {
        let mut counts = vec![0u32; self.n + 1];
        for &c in &self.cols {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cols = vec![0u32; self.cols.len()];
        let mut next = counts;
        for u in 0..self.n {
            for &c in self.row(u) {
                cols[next[c as usize] as usize] = u as u32;
                next[c as usize] += 1;
            }
        }
        SparseRows {
            n: self.n,
            offsets,
            cols,
        }
    }
}

/// A binary relation over the nodes of one tree, in an adaptive
/// representation.  See the module docs for the variant table.
#[derive(Debug, Clone)]
pub enum Relation {
    /// The identity relation (`self::*`).
    Identity(usize),
    /// The full relation `nodes(t)²`.
    Full(usize),
    /// One document-order column range per row: row `u` covers columns
    /// `rows[u].0 .. rows[u].1` (empty rows are `(0, 0)`).
    Interval {
        /// Domain size.
        n: usize,
        /// Per-row `[lo, hi)` column ranges.
        rows: Vec<(u32, u32)>,
    },
    /// CSR successor lists.
    Sparse(SparseRows),
    /// Bit-packed fallback.
    Dense(NodeMatrix),
}

/// Maximum stored pairs for which the CSR representation is kept: the
/// break-even against dense rows, where gathering a sparse row (one
/// operation per set bit) costs the same as OR-ing a packed row (one
/// operation per 64-bit word).  Saturating: near `usize::MAX` domains must
/// report "keep sparse", not wrap around to a tiny limit and densify.
fn sparse_limit(n: usize) -> usize {
    n.saturating_mul(n.div_ceil(64))
}

fn words_per_row(n: usize) -> usize {
    n.div_ceil(64)
}

impl Relation {
    /// The empty relation on `n` nodes.
    pub fn empty(n: usize) -> Relation {
        Relation::Sparse(SparseRows::empty(n))
    }

    /// Number of rows/columns of the domain.
    pub fn len(&self) -> usize {
        match self {
            Relation::Identity(n) | Relation::Full(n) | Relation::Interval { n, .. } => *n,
            Relation::Sparse(s) => s.n,
            Relation::Dense(m) => m.len(),
        }
    }

    /// Approximate heap footprint of this representation, in bytes.  The
    /// corpus layer sums these over a store's compiled relations to decide
    /// when a session must be evicted from its memory budget.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Relation::Identity(_) | Relation::Full(_) => std::mem::size_of::<Relation>(),
            Relation::Interval { rows, .. } => rows.len() * std::mem::size_of::<(u32, u32)>(),
            Relation::Sparse(s) => s.approx_bytes(),
            Relation::Dense(m) => m.approx_bytes(),
        }
    }

    /// True if the *domain* is empty (zero nodes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the relation holds no pairs.
    pub fn is_relation_empty(&self) -> bool {
        match self {
            Relation::Identity(n) | Relation::Full(n) => *n == 0,
            Relation::Interval { rows, .. } => rows.iter().all(|&(lo, hi)| lo >= hi),
            Relation::Sparse(s) => s.nnz() == 0,
            Relation::Dense(m) => m.is_relation_empty(),
        }
    }

    /// Short name of the active representation (for stats and tests).
    pub fn variant_name(&self) -> &'static str {
        match self {
            Relation::Identity(_) => "identity",
            Relation::Full(_) => "full",
            Relation::Interval { .. } => "interval",
            Relation::Sparse(_) => "sparse",
            Relation::Dense(_) => "dense",
        }
    }

    /// Membership test.
    pub fn get(&self, u: NodeId, v: NodeId) -> bool {
        match self {
            Relation::Identity(_) => u == v,
            Relation::Full(_) => true,
            Relation::Interval { rows, .. } => {
                let (lo, hi) = rows[u.index()];
                (lo..hi).contains(&v.0)
            }
            Relation::Sparse(s) => s.row(u.index()).binary_search(&v.0).is_ok(),
            Relation::Dense(m) => m.get(u, v),
        }
    }

    /// Number of pairs in the relation.
    pub fn count_pairs(&self) -> usize {
        match self {
            Relation::Identity(n) => *n,
            Relation::Full(n) => n * n,
            Relation::Interval { rows, .. } => rows
                .iter()
                .map(|&(lo, hi)| hi.saturating_sub(lo) as usize)
                .sum(),
            Relation::Sparse(s) => s.nnz(),
            Relation::Dense(m) => m.count_pairs(),
        }
    }

    /// The successors of `u`, in ascending (document) order.
    pub fn successor_list(&self, u: NodeId) -> Vec<NodeId> {
        match self {
            Relation::Identity(_) => vec![u],
            Relation::Full(n) => (0..*n as u32).map(NodeId).collect(),
            Relation::Interval { rows, .. } => {
                let (lo, hi) = rows[u.index()];
                (lo..hi).map(NodeId).collect()
            }
            Relation::Sparse(s) => s.row(u.index()).iter().map(|&c| NodeId(c)).collect(),
            Relation::Dense(m) => m.successors(u).collect(),
        }
    }

    /// Does row `u` contain at least one pair?
    pub fn row_nonempty(&self, u: NodeId) -> bool {
        match self {
            Relation::Identity(_) => true,
            Relation::Full(n) => *n > 0,
            Relation::Interval { rows, .. } => {
                let (lo, hi) = rows[u.index()];
                lo < hi
            }
            Relation::Sparse(s) => !s.row(u.index()).is_empty(),
            Relation::Dense(m) => m.row_nonempty(u),
        }
    }

    /// The start nodes with at least one successor.
    pub fn nonempty_rows(&self) -> NodeSet {
        let n = self.len();
        let mut out = NodeSet::empty(n);
        for u in 0..n {
            let id = NodeId(u as u32);
            if self.row_nonempty(id) {
                out.insert(id);
            }
        }
        out
    }

    /// All pairs in lexicographic order (tests and small result reporting).
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.count_pairs());
        for u in 0..self.len() {
            let id = NodeId(u as u32);
            for v in self.successor_list(id) {
                out.push((id, v));
            }
        }
        out
    }

    /// Materialise as a bit-packed [`NodeMatrix`] — the conversion used at
    /// the public boundary so existing callers keep working unchanged.
    pub fn to_matrix(&self) -> NodeMatrix {
        match self {
            Relation::Identity(n) => NodeMatrix::identity(*n),
            Relation::Full(n) => NodeMatrix::full(*n),
            Relation::Interval { n, rows } => {
                let mut m = NodeMatrix::empty(*n);
                for (u, &(lo, hi)) in rows.iter().enumerate() {
                    m.fill_row_range(NodeId(u as u32), lo as usize, hi as usize);
                }
                m
            }
            Relation::Sparse(s) => {
                let mut m = NodeMatrix::empty(s.n);
                for u in 0..s.n {
                    for &c in s.row(u) {
                        m.set(NodeId(u as u32), NodeId(c));
                    }
                }
                m
            }
            Relation::Dense(m) => m.clone(),
        }
    }

    /// Capacity-checked [`Relation::to_matrix`]: refuses to densify a
    /// symbolic operand whose bit matrix would exceed the
    /// [`DENSE_BYTE_LIMIT`] (already-dense operands just clone).
    ///
    /// [`DENSE_BYTE_LIMIT`]: crate::matrix::DENSE_BYTE_LIMIT
    pub fn try_to_matrix(&self) -> Result<NodeMatrix, CapacityError> {
        if !matches!(self, Relation::Dense(_)) {
            dense_guard(self.len())?;
        }
        Ok(self.to_matrix())
    }

    /// Wrap a dense matrix and rediscover structure ([`Relation::compact`]).
    pub fn from_matrix(m: NodeMatrix) -> Relation {
        Relation::Dense(m).compact()
    }

    /// Normalise the representation: detect `Identity`/`Full`/interval rows
    /// in a dense or interval operand, downgrade saturated CSR to dense, and
    /// keep everything else as-is.  One O(n²/64) scan in the dense case —
    /// negligible next to any product that produced the operand.
    pub fn compact(self) -> Relation {
        let n = self.len();
        match self {
            Relation::Dense(m) => {
                let mut rows: Vec<(u32, u32)> = Vec::with_capacity(n);
                let mut intervals_ok = true;
                let mut nnz = 0usize;
                for u in 0..n {
                    let words = m.row_words(NodeId(u as u32));
                    let popcount: usize =
                        words.iter().map(|w| w.count_ones() as usize).sum();
                    nnz += popcount;
                    if !intervals_ok {
                        continue;
                    }
                    if popcount == 0 {
                        rows.push((0, 0));
                        continue;
                    }
                    let first_word = words.iter().position(|&w| w != 0).expect("popcount > 0");
                    let last_word = words.iter().rposition(|&w| w != 0).expect("popcount > 0");
                    let lo = first_word * 64 + words[first_word].trailing_zeros() as usize;
                    let hi = last_word * 64 + 63 - words[last_word].leading_zeros() as usize + 1;
                    if hi - lo == popcount {
                        rows.push((lo as u32, hi as u32));
                    } else {
                        intervals_ok = false;
                    }
                }
                if intervals_ok {
                    return interval_or_simpler(n, rows);
                }
                if nnz <= sparse_limit(n) {
                    let rows = (0..n).map(|u| {
                        m.successors(NodeId(u as u32)).map(|v| v.0).collect::<Vec<u32>>()
                    });
                    return Relation::Sparse(SparseRows::from_rows(n, rows));
                }
                Relation::Dense(m)
            }
            Relation::Interval { n, rows } => interval_or_simpler(n, rows),
            Relation::Sparse(s) if s.nnz() > sparse_limit(n) => {
                // Re-compact the densified form: a saturated CSR can still
                // be interval-shaped or even `Full`.
                Relation::Dense(Relation::Sparse(s).to_matrix()).compact()
            }
            other => other,
        }
    }

    /// Interval-form rows if the relation is interval-like: borrowed for
    /// `Interval`, synthesised (O(n), no per-pair cost) for the trivial
    /// poles.
    fn interval_rows(&self) -> Option<std::borrow::Cow<'_, [(u32, u32)]>> {
        use std::borrow::Cow;
        match self {
            Relation::Identity(n) => {
                Some(Cow::Owned((0..*n as u32).map(|u| (u, u + 1)).collect()))
            }
            Relation::Full(n) => Some(Cow::Owned(vec![(0, *n as u32); *n])),
            Relation::Interval { rows, .. } => Some(Cow::Borrowed(rows)),
            _ => None,
        }
    }

    /// Sparse-form rows if cheaply available: borrowed for `Sparse`,
    /// synthesised (O(n)) for `Identity`.
    fn sparse_view(&self) -> Option<std::borrow::Cow<'_, SparseRows>> {
        use std::borrow::Cow;
        match self {
            Relation::Identity(n) => Some(Cow::Owned(SparseRows {
                n: *n,
                offsets: (0..=*n as u32).collect(),
                cols: (0..*n as u32).collect(),
            })),
            Relation::Sparse(s) => Some(Cow::Borrowed(s)),
            _ => None,
        }
    }

    // -- kernels ------------------------------------------------------------

    /// Relation composition `self · other`, dispatching to the cheapest
    /// kernel for the operand pair under `mode`.  Panics if a dense fallback
    /// exceeds the capacity limit; the store's fallible compilation path
    /// ([`Relation::try_product`]) reports that as an error instead.
    pub fn product(&self, other: &Relation, mode: KernelMode, stats: &mut KernelStats) -> Relation {
        self.try_product(other, mode, stats)
            .expect("dense capacity exceeded in eager kernel")
    }

    /// Fallible [`Relation::product`]: dense fallbacks over the capacity
    /// limit return a [`CapacityError`] instead of aborting the process.
    pub fn try_product(
        &self,
        other: &Relation,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Result<Relation, CapacityError> {
        debug_assert_eq!(self.len(), other.len());
        let n = self.len();
        if mode == KernelMode::Dense {
            stats.product_dense += 1;
            // Borrow already-dense operands: the baseline must pay exactly
            // what the pre-adaptive store paid, not extra clones.
            let m = match (self, other) {
                (Relation::Dense(a), Relation::Dense(b)) => a.product(b),
                (Relation::Dense(a), b) => a.product(&b.try_to_matrix()?),
                (a, Relation::Dense(b)) => a.try_to_matrix()?.product(b),
                (a, b) => a.try_to_matrix()?.product(&b.try_to_matrix()?),
            };
            return Ok(Relation::Dense(m));
        }
        Ok(match (self, other) {
            (Relation::Identity(_), _) => {
                stats.product_trivial += 1;
                other.clone()
            }
            (_, Relation::Identity(_)) => {
                stats.product_trivial += 1;
                self.clone()
            }
            (Relation::Full(_), b) => {
                stats.product_trivial += 1;
                full_times(n, b)?
            }
            (a, Relation::Full(_)) => {
                stats.product_trivial += 1;
                times_full(n, a)
            }
            // A ∈ {Interval, Sparse}, B Interval: row u of the result is a
            // union of B's ranges — merged symbolically, materialised by
            // masked fills only if a row merges to more than one range.
            (Relation::Interval { rows, .. }, Relation::Interval { rows: b_rows, .. }) => {
                stats.product_interval += 1;
                product_into_intervals(n, SourceRows::Ranges(rows), b_rows)?
            }
            (Relation::Sparse(a), Relation::Interval { rows: b_rows, .. }) => {
                stats.product_interval += 1;
                product_into_intervals(n, SourceRows::Lists(a), b_rows)?
            }
            (Relation::Sparse(a), Relation::Sparse(b)) => {
                stats.product_sparse += 1;
                gather_sparse_target(n, SourceRows::Lists(a), b)
            }
            (Relation::Interval { rows, .. }, Relation::Sparse(b)) => {
                stats.product_sparse += 1;
                gather_sparse_target(n, SourceRows::Ranges(rows), b)
            }
            (Relation::Sparse(a), Relation::Dense(b)) => {
                stats.product_sparse += 1;
                let mut out = NodeMatrix::empty(n);
                for u in 0..n {
                    for &v in a.row(u) {
                        out.or_row_from(NodeId(u as u32), b, NodeId(v));
                    }
                }
                Relation::Dense(out).compact()
            }
            (Relation::Dense(a), Relation::Sparse(b)) => {
                stats.product_sparse += 1;
                let mut out = NodeMatrix::empty(n);
                for u in 0..n {
                    let id = NodeId(u as u32);
                    for v in a.successors(id) {
                        for &w in b.row(v.index()) {
                            out.set(id, NodeId(w));
                        }
                    }
                }
                Relation::Dense(out).compact()
            }
            (Relation::Dense(a), Relation::Interval { rows: b_rows, .. }) => {
                stats.product_interval += 1;
                let mut out = NodeMatrix::empty(n);
                for u in 0..n {
                    let id = NodeId(u as u32);
                    for v in a.successors(id) {
                        let (lo, hi) = b_rows[v.index()];
                        out.fill_row_range(id, lo as usize, hi as usize);
                    }
                }
                Relation::Dense(out).compact()
            }
            (Relation::Interval { rows, .. }, Relation::Dense(b)) => {
                stats.product_interval += 1;
                let mut out = NodeMatrix::empty(n);
                for (u, &(lo, hi)) in rows.iter().enumerate() {
                    for v in lo..hi {
                        out.or_row_from(NodeId(u as u32), b, NodeId(v));
                    }
                }
                Relation::Dense(out).compact()
            }
            (Relation::Dense(a), Relation::Dense(b)) => {
                let m = if mode.threaded() && n >= PARALLEL_MIN_DIM {
                    stats.product_dense_threaded += 1;
                    a.product_threaded(b)
                } else {
                    stats.product_dense += 1;
                    a.product(b)
                };
                Relation::Dense(m).compact()
            }
        })
    }

    /// Element-wise union.
    pub fn union(&self, other: &Relation, mode: KernelMode, stats: &mut KernelStats) -> Relation {
        self.try_union(other, mode, stats)
            .expect("dense capacity exceeded in eager kernel")
    }

    /// Fallible [`Relation::union`].
    pub fn try_union(
        &self,
        other: &Relation,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Result<Relation, CapacityError> {
        debug_assert_eq!(self.len(), other.len());
        let n = self.len();
        if mode != KernelMode::Dense {
            match (self, other) {
                (Relation::Full(_), _) | (_, Relation::Full(_)) => {
                    stats.union_structured += 1;
                    return Ok(Relation::Full(n));
                }
                _ => {}
            }
            if let (Some(a), Some(b)) = (self.interval_rows(), other.interval_rows()) {
                stats.union_structured += 1;
                return union_interval_rows(n, &a, &b);
            }
            if let (Some(a), Some(b)) = (self.sparse_view(), other.sparse_view()) {
                stats.union_structured += 1;
                let rows = (0..n).map(|u| merge_sorted(a.row(u), b.row(u)));
                return Ok(Relation::Sparse(SparseRows::from_rows(n, rows)).compact());
            }
        }
        stats.union_dense += 1;
        let mut m = self.try_to_matrix()?;
        match other {
            Relation::Dense(b) => m.union_with(b),
            b => m.union_with(&b.try_to_matrix()?),
        }
        Ok(if mode == KernelMode::Dense {
            Relation::Dense(m)
        } else {
            Relation::Dense(m).compact()
        })
    }

    /// Element-wise intersection.
    pub fn intersect(
        &self,
        other: &Relation,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Relation {
        self.try_intersect(other, mode, stats)
            .expect("dense capacity exceeded in eager kernel")
    }

    /// Fallible [`Relation::intersect`].
    pub fn try_intersect(
        &self,
        other: &Relation,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Result<Relation, CapacityError> {
        debug_assert_eq!(self.len(), other.len());
        let n = self.len();
        if mode != KernelMode::Dense {
            match (self, other) {
                (Relation::Full(_), b) => {
                    stats.intersect_structured += 1;
                    return Ok(b.clone());
                }
                (a, Relation::Full(_)) => {
                    stats.intersect_structured += 1;
                    return Ok(a.clone());
                }
                (Relation::Identity(_), b) | (b, Relation::Identity(_)) => {
                    stats.intersect_structured += 1;
                    let rows = (0..n).map(|u| {
                        let id = NodeId(u as u32);
                        if b.get(id, id) {
                            vec![u as u32]
                        } else {
                            Vec::new()
                        }
                    });
                    return Ok(Relation::Sparse(SparseRows::from_rows(n, rows)).compact());
                }
                _ => {}
            }
            if let (
                Relation::Interval { rows: a, .. },
                Relation::Interval { rows: b, .. },
            ) = (self, other)
            {
                stats.intersect_structured += 1;
                let rows = a
                    .iter()
                    .zip(b)
                    .map(|(&(alo, ahi), &(blo, bhi))| {
                        let lo = alo.max(blo);
                        let hi = ahi.min(bhi);
                        if lo < hi {
                            (lo, hi)
                        } else {
                            (0, 0)
                        }
                    })
                    .collect();
                return Ok(interval_or_simpler(n, rows));
            }
            if let (Some(a), Some(b)) = (self.sparse_view(), other.sparse_view()) {
                stats.intersect_structured += 1;
                let rows = (0..n).map(|u| intersect_sorted(a.row(u), b.row(u)));
                return Ok(Relation::Sparse(SparseRows::from_rows(n, rows)).compact());
            }
            if let (Relation::Sparse(a), Relation::Interval { rows: b, .. }) = (self, other) {
                stats.intersect_structured += 1;
                let rows = (0..n).map(|u| {
                    let (lo, hi) = b[u];
                    a.row(u).iter().copied().filter(|c| (lo..hi).contains(c)).collect()
                });
                return Ok(Relation::Sparse(SparseRows::from_rows(n, rows)).compact());
            }
            if let (Relation::Interval { rows: a, .. }, Relation::Sparse(b)) = (self, other) {
                stats.intersect_structured += 1;
                let rows = (0..n).map(|u| {
                    let (lo, hi) = a[u];
                    b.row(u).iter().copied().filter(|c| (lo..hi).contains(c)).collect()
                });
                return Ok(Relation::Sparse(SparseRows::from_rows(n, rows)).compact());
            }
        }
        stats.intersect_dense += 1;
        let mut m = self.try_to_matrix()?;
        match other {
            Relation::Dense(b) => m.intersect_with(b),
            b => m.intersect_with(&b.try_to_matrix()?),
        }
        Ok(if mode == KernelMode::Dense {
            Relation::Dense(m)
        } else {
            Relation::Dense(m).compact()
        })
    }

    /// Complement (`except`).  Almost always densifies — the complement of a
    /// sparse/interval relation is dense by construction — so the only
    /// structured cases are the trivial poles.  Under [`KernelMode::Lazy`]
    /// the store never calls this on large domains: complements stay
    /// symbolic as `LazyRel` nodes.
    pub fn complement(&self, mode: KernelMode, stats: &mut KernelStats) -> Relation {
        self.try_complement(mode, stats)
            .expect("dense capacity exceeded in eager kernel")
    }

    /// Fallible [`Relation::complement`].
    pub fn try_complement(
        &self,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Result<Relation, CapacityError> {
        stats.complement_ops += 1;
        let n = self.len();
        if mode != KernelMode::Dense {
            if let Relation::Full(_) = self {
                return Ok(Relation::empty(n));
            }
            if self.is_relation_empty() {
                return Ok(Relation::Full(n));
            }
        }
        let mut m = self.try_to_matrix()?;
        m.complement();
        Ok(Relation::Dense(m))
    }

    /// The `[M]` diagonal filter: `u ↦ (u, u)` for every non-empty row.
    pub fn diagonal_filter(&self, _mode: KernelMode, stats: &mut KernelStats) -> Relation {
        stats.diagonal_ops += 1;
        let n = self.len();
        match self {
            Relation::Identity(_) | Relation::Full(_) => Relation::Identity(n),
            _ => {
                let rows = (0..n).map(|u| {
                    if self.row_nonempty(NodeId(u as u32)) {
                        vec![u as u32]
                    } else {
                        Vec::new()
                    }
                });
                Relation::Sparse(SparseRows::from_rows(n, rows)).compact()
            }
        }
    }

    /// The inverse relation.
    pub fn transpose(&self, mode: KernelMode, stats: &mut KernelStats) -> Relation {
        self.try_transpose(mode, stats)
            .expect("dense capacity exceeded in eager kernel")
    }

    /// Fallible [`Relation::transpose`].
    pub fn try_transpose(
        &self,
        mode: KernelMode,
        stats: &mut KernelStats,
    ) -> Result<Relation, CapacityError> {
        stats.transpose_ops += 1;
        let n = self.len();
        if mode == KernelMode::Dense {
            return Ok(Relation::Dense(self.try_to_matrix()?.transpose()));
        }
        Ok(match self {
            Relation::Identity(_) | Relation::Full(_) => self.clone(),
            Relation::Sparse(s) => Relation::Sparse(s.transpose()),
            Relation::Interval { rows, .. } => {
                let nnz: usize = rows
                    .iter()
                    .map(|&(lo, hi)| hi.saturating_sub(lo) as usize)
                    .sum();
                if nnz > sparse_limit(n) {
                    return Ok(Relation::Dense(self.try_to_matrix()?.transpose()).compact());
                }
                // Out row v collects every u whose range covers v; visiting
                // u in ascending order keeps each output row sorted.
                let mut counts = vec![0u32; n + 1];
                for &(lo, hi) in rows {
                    for v in lo..hi {
                        counts[v as usize + 1] += 1;
                    }
                }
                for i in 0..n {
                    counts[i + 1] += counts[i];
                }
                let offsets = counts.clone();
                let mut cols = vec![0u32; nnz];
                let mut next = counts;
                for (u, &(lo, hi)) in rows.iter().enumerate() {
                    for v in lo..hi {
                        cols[next[v as usize] as usize] = u as u32;
                        next[v as usize] += 1;
                    }
                }
                Relation::Sparse(SparseRows {
                    n,
                    offsets,
                    cols,
                })
            }
            Relation::Dense(m) => Relation::Dense(m.transpose()).compact(),
        })
    }
}

/// `Full · B`: every row of the result is the column support of `B` (or the
/// result is empty when `B` is).
fn full_times(n: usize, b: &Relation) -> Result<Relation, CapacityError> {
    if b.is_relation_empty() {
        return Ok(Relation::empty(n));
    }
    // The column support needs only one packed row; collect it without
    // materialising `b` (interval/sparse rows fill the scratch directly).
    let stride = words_per_row(n);
    let mut support = vec![0u64; stride];
    match b {
        Relation::Dense(bm) => {
            for u in 0..n {
                for (s, w) in support.iter_mut().zip(bm.row_words(NodeId(u as u32))) {
                    *s |= w;
                }
            }
        }
        _ => {
            for u in 0..n {
                for v in b.successor_list(NodeId(u as u32)) {
                    support[v.index() / 64] |= 1u64 << (v.index() % 64);
                }
            }
        }
    }
    // All rows equal the support row: interval-shaped iff the support is one
    // contiguous range, which `compact` will rediscover — but avoid the n²
    // materialisation when the support is a single range.
    let popcount: usize = support.iter().map(|w| w.count_ones() as usize).sum();
    if popcount > 0 {
        let first_word = support.iter().position(|&w| w != 0).expect("popcount > 0");
        let last_word = support.iter().rposition(|&w| w != 0).expect("popcount > 0");
        let lo = first_word * 64 + support[first_word].trailing_zeros() as usize;
        let hi = last_word * 64 + 63 - support[last_word].leading_zeros() as usize + 1;
        if hi - lo == popcount {
            return Ok(interval_or_simpler(
                n,
                vec![(lo as u32, hi as u32); n],
            ));
        }
    }
    dense_guard(n)?;
    let mut out = NodeMatrix::empty(n);
    for u in 0..n {
        out.or_words_into_row(NodeId(u as u32), &support);
    }
    Ok(Relation::Dense(out).compact())
}

/// `A · Full`: row `u` is full iff row `u` of `A` is non-empty.
fn times_full(n: usize, a: &Relation) -> Relation {
    let rows = (0..n)
        .map(|u| {
            if a.row_nonempty(NodeId(u as u32)) {
                (0, n as u32)
            } else {
                (0, 0)
            }
        })
        .collect();
    interval_or_simpler(n, rows)
}

/// Row source for the interval-target product: either interval ranges or
/// CSR lists.
enum SourceRows<'a> {
    Ranges(&'a [(u32, u32)]),
    Lists(&'a SparseRows),
}

impl SourceRows<'_> {
    fn for_each_v(&self, u: usize, mut f: impl FnMut(usize)) {
        match self {
            SourceRows::Ranges(rows) => {
                let (lo, hi) = rows[u];
                for v in lo..hi {
                    f(v as usize);
                }
            }
            SourceRows::Lists(s) => {
                for &v in s.row(u) {
                    f(v as usize);
                }
            }
        }
    }
}

/// Product where the target operand is interval-shaped: merge the ranges of
/// `b_rows` symbolically per output row.  While every row merges into a
/// single range the result stays an `Interval`; the first row that does not
/// switches to a dense accumulator filled by boundary masks.
fn product_into_intervals(
    n: usize,
    a: SourceRows<'_>,
    b_rows: &[(u32, u32)],
) -> Result<Relation, CapacityError> {
    let mut rows_out: Vec<(u32, u32)> = Vec::with_capacity(n);
    let mut dense_out: Option<NodeMatrix> = None;
    let mut scratch: Vec<(u32, u32)> = Vec::new();
    for u in 0..n {
        scratch.clear();
        a.for_each_v(u, |v| {
            let (lo, hi) = b_rows[v];
            if lo < hi {
                scratch.push((lo, hi));
            }
        });
        merge_intervals(&mut scratch);
        match (&mut dense_out, scratch.len()) {
            (None, 0) => rows_out.push((0, 0)),
            (None, 1) => rows_out.push(scratch[0]),
            (None, _) => {
                // Materialise the interval prefix, then keep filling.
                let mut m = NodeMatrix::try_empty(n)?;
                for (r, &(lo, hi)) in rows_out.iter().enumerate() {
                    m.fill_row_range(NodeId(r as u32), lo as usize, hi as usize);
                }
                for &(lo, hi) in &scratch {
                    m.fill_row_range(NodeId(u as u32), lo as usize, hi as usize);
                }
                dense_out = Some(m);
            }
            (Some(m), _) => {
                for &(lo, hi) in &scratch {
                    m.fill_row_range(NodeId(u as u32), lo as usize, hi as usize);
                }
            }
        }
    }
    Ok(match dense_out {
        Some(m) => Relation::Dense(m).compact(),
        None => interval_or_simpler(n, rows_out),
    })
}

/// Sort by start and coalesce overlapping/adjacent ranges in place.
fn merge_intervals(ranges: &mut Vec<(u32, u32)>) {
    if ranges.len() <= 1 {
        return;
    }
    ranges.sort_unstable();
    let mut write = 0;
    for i in 1..ranges.len() {
        let (lo, hi) = ranges[i];
        if lo <= ranges[write].1 {
            ranges[write].1 = ranges[write].1.max(hi);
        } else {
            write += 1;
            ranges[write] = (lo, hi);
        }
    }
    ranges.truncate(write + 1);
}

/// Classify interval rows: all-empty → empty sparse, exact diagonal →
/// `Identity`, all-full → `Full`, otherwise keep the interval form.
fn interval_or_simpler(n: usize, rows: Vec<(u32, u32)>) -> Relation {
    debug_assert_eq!(rows.len(), n);
    let mut all_empty = true;
    let mut identity = true;
    let mut full = true;
    for (u, &(lo, hi)) in rows.iter().enumerate() {
        let empty = lo >= hi;
        all_empty &= empty;
        identity &= lo == u as u32 && hi == u as u32 + 1;
        full &= lo == 0 && hi == n as u32;
    }
    if n == 0 {
        return Relation::Identity(0);
    }
    if all_empty {
        return Relation::empty(n);
    }
    if identity {
        return Relation::Identity(n);
    }
    if full {
        return Relation::Full(n);
    }
    Relation::Interval { n, rows }
}

/// Per-row union of two interval relations: two ranges either coalesce into
/// one (kept symbolic) or the whole result falls back to masked fills.
fn union_interval_rows(
    n: usize,
    a: &[(u32, u32)],
    b: &[(u32, u32)],
) -> Result<Relation, CapacityError> {
    let mut rows_out: Vec<(u32, u32)> = Vec::with_capacity(n);
    for u in 0..n {
        let mut pair = vec![a[u], b[u]];
        pair.retain(|&(lo, hi)| lo < hi);
        merge_intervals(&mut pair);
        match pair.len() {
            0 => rows_out.push((0, 0)),
            1 => rows_out.push(pair[0]),
            _ => {
                // Rare: disjoint ranges — materialise everything.
                let mut m = NodeMatrix::try_empty(n)?;
                for (r, &(lo, hi)) in rows_out.iter().enumerate() {
                    m.fill_row_range(NodeId(r as u32), lo as usize, hi as usize);
                }
                for r in u..n {
                    for &(lo, hi) in &[a[r], b[r]] {
                        m.fill_row_range(NodeId(r as u32), lo as usize, hi as usize);
                    }
                }
                return Ok(Relation::Dense(m).compact());
            }
        }
    }
    Ok(interval_or_simpler(n, rows_out))
}

/// Merge two sorted, deduped column lists.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Intersect two sorted column lists.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Product with a CSR target operand: gather target rows through a reusable
/// bitset scratch row, emitting sorted CSR output directly — no `n²/64`
/// scan, cost proportional to the gathered bits plus the output.
fn gather_sparse_target(n: usize, a: SourceRows<'_>, b: &SparseRows) -> Relation {
    let stride = words_per_row(n);
    let mut scratch = vec![0u64; stride];
    let mut touched: Vec<usize> = Vec::new();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols: Vec<u32> = Vec::new();
    offsets.push(0u32);
    for u in 0..n {
        let row_start = cols.len();
        a.for_each_v(u, |v| {
            for &w in b.row(v) {
                let wi = w as usize / 64;
                let bit = 1u64 << (w % 64);
                if scratch[wi] & bit == 0 {
                    if scratch[wi] == 0 {
                        touched.push(wi);
                    }
                    scratch[wi] |= bit;
                    cols.push(w);
                }
            }
        });
        cols[row_start..].sort_unstable();
        offsets.push(cols.len() as u32);
        for &wi in &touched {
            scratch[wi] = 0;
        }
        touched.clear();
    }
    Relation::Sparse(SparseRows { n, offsets, cols }).compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> KernelStats {
        KernelStats::default()
    }

    fn sparse_of(n: usize, pairs: &[(u32, u32)]) -> Relation {
        let mut sorted: Vec<(u32, u32)> = pairs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Relation::Sparse(SparseRows::from_sorted_pairs(n, &sorted))
    }

    #[test]
    fn compact_detects_identity_full_interval_sparse() {
        let n = 70;
        assert_eq!(
            Relation::from_matrix(NodeMatrix::identity(n)).variant_name(),
            "identity"
        );
        assert_eq!(
            Relation::from_matrix(NodeMatrix::full(n)).variant_name(),
            "full"
        );
        let mut iv = NodeMatrix::empty(n);
        iv.fill_row_range(NodeId(0), 10, 40);
        iv.fill_row_range(NodeId(3), 60, 70);
        assert_eq!(Relation::from_matrix(iv).variant_name(), "interval");
        let mut sp = NodeMatrix::empty(n);
        sp.set(NodeId(0), NodeId(5));
        sp.set(NodeId(0), NodeId(64));
        assert_eq!(Relation::from_matrix(sp).variant_name(), "sparse");
    }

    #[test]
    fn products_match_dense_reference_across_variant_pairs() {
        let n = 70;
        let identity = Relation::Identity(n);
        let full = Relation::Full(n);
        let interval = Relation::Interval {
            n,
            rows: (0..n as u32)
                .map(|u| if u % 3 == 0 { (u, (u + 5).min(n as u32)) } else { (0, 0) })
                .collect(),
        };
        let sparse = sparse_of(n, &[(0, 1), (1, 64), (5, 5), (64, 3), (69, 69), (69, 0)]);
        let dense = Relation::Dense({
            let mut m = NodeMatrix::empty(n);
            let mut state = 99u64;
            for _ in 0..200 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (state >> 33) as usize % n;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = (state >> 33) as usize % n;
                m.set(NodeId(u as u32), NodeId(v as u32));
            }
            m
        });
        let variants = [&identity, &full, &interval, &sparse, &dense];
        let mut s = stats();
        for a in variants {
            for b in variants {
                for mode in [KernelMode::Dense, KernelMode::Adaptive, KernelMode::AdaptiveThreaded]
                {
                    let got = a.product(b, mode, &mut s).to_matrix();
                    let want = a.to_matrix().product_naive(&b.to_matrix());
                    assert_eq!(
                        got, want,
                        "{} · {} under {:?}",
                        a.variant_name(),
                        b.variant_name(),
                        mode
                    );
                }
            }
        }
        assert!(s.total() > 0);
        assert!(s.product_trivial > 0);
        assert!(s.product_interval > 0);
        assert!(s.product_sparse > 0);
    }

    #[test]
    fn union_intersect_complement_diag_transpose_match_dense_reference() {
        let n = 66;
        let interval = Relation::Interval {
            n,
            rows: (0..n as u32).map(|u| (u / 2, u)).collect(),
        };
        let sparse = sparse_of(n, &[(0, 65), (65, 0), (30, 31), (30, 2)]);
        let identity = Relation::Identity(n);
        let full = Relation::Full(n);
        let variants = [&identity, &full, &interval, &sparse];
        let mut s = stats();
        for mode in [KernelMode::Dense, KernelMode::Adaptive] {
            for a in variants {
                let am = a.to_matrix();
                // complement
                let mut want = am.clone();
                want.complement();
                assert_eq!(a.complement(mode, &mut s).to_matrix(), want);
                // diagonal
                assert_eq!(
                    a.diagonal_filter(mode, &mut s).to_matrix(),
                    am.diagonal_filter()
                );
                // transpose
                assert_eq!(a.transpose(mode, &mut s).to_matrix(), am.transpose_naive());
                for b in variants {
                    let bm = b.to_matrix();
                    let mut want_u = am.clone();
                    want_u.union_with(&bm);
                    assert_eq!(a.union(b, mode, &mut s).to_matrix(), want_u);
                    let mut want_i = am.clone();
                    want_i.intersect_with(&bm);
                    assert_eq!(a.intersect(b, mode, &mut s).to_matrix(), want_i);
                }
            }
        }
        assert!(s.union_structured > 0);
        assert!(s.intersect_structured > 0);
    }

    #[test]
    fn zero_and_one_node_domains() {
        for n in [0usize, 1] {
            let mut s = stats();
            let e = Relation::empty(n);
            let f = Relation::Full(n);
            let i = Relation::Identity(n);
            for a in [&e, &f, &i] {
                for b in [&e, &f, &i] {
                    let got = a.product(b, KernelMode::Adaptive, &mut s).to_matrix();
                    assert_eq!(got, a.to_matrix().product_naive(&b.to_matrix()), "n={n}");
                }
                assert_eq!(
                    a.complement(KernelMode::Adaptive, &mut s).count_pairs(),
                    n * n - a.count_pairs(),
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn kernel_mode_names_round_trip() {
        for mode in [KernelMode::Dense, KernelMode::Adaptive, KernelMode::AdaptiveThreaded] {
            assert_eq!(KernelMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(KernelMode::parse("bogus"), None);
        assert_eq!(KernelMode::default(), KernelMode::AdaptiveThreaded);
    }

    #[test]
    fn stats_render_every_counter() {
        let mut s = stats();
        s.step_interval = 2;
        s.product_sparse = 7;
        let line = s.to_string();
        assert!(line.contains("products"));
        assert!(s.total() == 9);
    }

    #[test]
    fn saturated_sparse_output_densifies() {
        // A chain u -> u+1 composed with Full-ish sparse rows would stay
        // CSR; force saturation instead: every row points to every column.
        let n = 80;
        let all: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| (0..n as u32).map(move |v| (u, v)))
            .collect();
        let r = sparse_of(n, &all).compact();
        assert_eq!(r.variant_name(), "full");
    }
}
