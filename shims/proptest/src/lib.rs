//! Minimal, offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! subset of the proptest API used by the workspace: the [`strategy::Strategy`] trait
//! with `prop_map` / `prop_recursive`, range and tuple strategies, `Just`,
//! `any`, `prop_oneof!`, `prop::collection::{vec, btree_set}`, and the
//! [`proptest!`](crate::proptest) test macro.
//!
//! Semantics differ from upstream in one important way: **there is no
//! shrinking**. A failing case panics with the values that produced it (via
//! the normal assert message), but no minimisation is attempted. Generation
//! is deterministic per test (seeded from the test's module path + name), so
//! failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
        }

        /// Depth-bounded recursive strategy. `f` receives the strategy for
        /// the previous depth and returns the one-level-deeper strategy; the
        /// innermost level is `self`. Each level keeps a 1-in-4 chance of
        /// emitting the shallower alternative so generated sizes are mixed.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let shallow = strat.clone();
                let deeper = f(strat).boxed();
                strat = BoxedStrategy(Rc::new(move |rng| {
                    if rng.gen_range(0u32..4) == 0 {
                        shallow.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }));
            }
            strat
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical strategy, accessed through [`any`].
    pub trait Arbitrary {
        fn generate(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for u8 {
        fn generate(rng: &mut StdRng) -> u8 {
            rng.gen_range(0u8..=u8::MAX)
        }
    }

    impl Arbitrary for u32 {
        fn generate(rng: &mut StdRng) -> u32 {
            rng.gen_range(0u32..=u32::MAX)
        }
    }

    impl Arbitrary for u64 {
        fn generate(rng: &mut StdRng) -> u64 {
            rng.gen_range(0u64..=u64::MAX)
        }
    }

    /// The canonical strategy for `T` (subset of `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::generate(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Size specifications accepted by the collection strategies.
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.is_empty() {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy with a target size drawn from `size`. If the
    /// element domain is too small to reach the target, the set is returned
    /// smaller after a bounded number of attempts (matching proptest's
    /// best-effort behaviour).
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG derived from the test's identifier (FNV-1a).
    pub fn rng_for(test_id: &str) -> StdRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_id.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// Namespaced access in the style of `proptest::prop::...`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u32..8)) {
            prop_assert!(a < 10);
            prop_assert!((5..8).contains(&b));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1usize), Just(2usize)].prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20);
        }

        #[test]
        fn sets_respect_bounds(s in prop::collection::btree_set(0u32..50, 0..10)) {
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn any_bool_takes_both_values(_x in any::<bool>()) {
            // generation itself is the test: both branches must be reachable
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Expr {
            Leaf(#[allow(dead_code)] usize),
            Pair(Box<Expr>, Box<Expr>),
        }
        fn depth(e: &Expr) -> usize {
            match e {
                Expr::Leaf(_) => 0,
                Expr::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0usize..5)
            .prop_map(Expr::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Expr::Pair(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::rng_for("recursive_strategies_terminate");
        for _ in 0..200 {
            let e = strat.generate(&mut rng);
            assert!(depth(&e) <= 3, "{e:?}");
        }
    }
}
