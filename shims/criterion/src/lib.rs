//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate vendors just
//! enough of the criterion API for the workspace benches to compile and run:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration methods,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a warm-up pass followed by
//! `sample_size` timed samples, reporting the median — with none of
//! criterion's statistics, plotting, or baseline comparison. It is good
//! enough to eyeball relative costs; treat absolute numbers with suspicion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export-compatible opaque value sink (compiler fence).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the closure given to `bench_function` / `bench_with_input`.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Time `routine`, storing the median of `samples` runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also forces lazy initialisation inside the routine).
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's time budget is per-sample.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up with one iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        self.criterion
            .report(&format!("{}/{}", self.name, id.into_benchmark_id()), b.last_median);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id.into_benchmark_id()), b.last_median);
        self
    }

    pub fn finish(&mut self) {}
}

/// Conversion of the various id forms accepted by the bench methods.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput hint (ignored by the shim).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        self.report(name, b.last_median);
        self
    }

    /// Accepted for API compatibility with `Criterion::default().sample_size(..)`.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    fn report(&mut self, id: &str, median: Duration) {
        println!("{id:<48} median {median:>12.2?}");
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(1))
                .warm_up_time(Duration::from_millis(1));
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("p", 7), &7usize, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            g.finish();
        }
        // warm-up + 3 samples
        assert_eq!(ran, 4);
    }
}
