//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! tiny subset of the `rand` API it actually uses: [`SeedableRng`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`rngs::StdRng`].
//!
//! `StdRng` here is SplitMix64 — statistically fine for test/benchmark data
//! generation, NOT cryptographic. The streams differ from upstream `rand`;
//! everything in this workspace only relies on determinism per seed, never on
//! specific sampled values.

#![forbid(unsafe_code)]

pub mod rngs {
    /// Deterministic 64-bit PRNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_seed_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_seed_u64(seed)
    }
}

mod sealed {
    pub trait RngCore {
        fn next_u64(&mut self) -> u64;
    }

    impl RngCore for crate::rngs::StdRng {
        fn next_u64(&mut self) -> u64 {
            crate::rngs::StdRng::next_u64(self)
        }
    }
}

/// The ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Map a uniform `u64` to a uniform member of the range.
    fn sample_from(&self, raw: u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(&self, raw: u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (raw as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(&self, raw: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // +1 cannot overflow in u128, even for the full u64 domain.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, i64, i32);

/// Sampling methods (subset of `rand::Rng`).
pub trait Rng: sealed::RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        // 53 uniform mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: sealed::RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000))
            .count();
        assert!(same < 10, "different seeds should diverge");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
