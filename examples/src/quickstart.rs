//! Quickstart: parse an XML document, compile a PPL query with two output
//! variables, run it and print the answers.
//!
//! Run with: `cargo run -p examples --bin quickstart`

use ppl_xpath::{Document, PplQuery};

fn main() {
    // The bibliography document from the paper's introduction.
    let xml = r#"
        <bib>
          <book><author/><title/></book>
          <book><author/><author/><title/></book>
        </bib>"#;
    let doc = Document::from_xml(xml).expect("well-formed XML");
    println!("document: {}", doc.to_terms());
    println!("nodes   : {}", doc.len());
    println!();

    // The author–title pair query of the introduction (XPath 2.0 style,
    // with free variables $y and $z selecting the pair).
    let query = PplQuery::compile(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        &["y", "z"],
    )
    .expect("the query is in the PPL fragment");

    println!("{}", query.explain());

    let answers = query.answers(&doc).expect("evaluation succeeds");
    println!("answer set ({} tuples):", answers.len());
    print!("{}", answers.render(&doc));

    // Queries outside the fragment are rejected with precise diagnostics.
    let rejected = PplQuery::compile(
        "child::book[child::author[. is $x]]/child::title[. is $x]",
        &["x"],
    );
    match rejected {
        Err(err) => println!("\nrejected as expected:\n{err}"),
        Ok(_) => unreachable!("variable sharing across '/' violates NVS(/)"),
    }
}
