//! FO completeness in practice — Lemma 1 and the expressiveness side of the
//! paper.
//!
//! The paper's expressiveness results say that Core XPath 2.0 (and already
//! its polynomial fragment PPL) captures all n-ary first-order queries.
//! This example exercises the constructive half that is implemented in the
//! workspace:
//!
//! 1. parse FO formulas over the signature `{ch*, ns*, lab_a}`,
//! 2. translate them to Core XPath 2.0 with the Lemma 1 translation,
//! 3. answer both sides with their naive evaluators and check they agree,
//! 4. for quantifier-free formulas, show that the image has no `for` loops
//!    (Lemma 2) and — when it happens to satisfy the NVS restrictions — run
//!    it through the polynomial PPL pipeline as well.
//!
//! Run with: `cargo run -p examples --bin fo_completeness`

use ppl_xpath::{Document, Engine};
use xpath_ast::ppl::check_ppl;
use xpath_ast::Var;
use xpath_fo::{fo_answer_nary, fo_to_xpath, parse_formula};
use xpath_tree::Tree;

fn main() {
    let doc = Document::from_tree(
        Tree::from_terms("bib(book(author,title),book(author,author,title),article(title))")
            .unwrap(),
    );
    println!("document: {}\n", doc.to_terms());

    // (formula source, output variables)
    let formulas = [
        (
            "lab(book, x) and lab(title, y) and chstar(x, y)",
            vec!["x", "y"],
        ),
        (
            "exists b. lab(book, b) and chstar(b, x) and lab(author, x)",
            vec!["x"],
        ),
        (
            "lab(book, x) and not (exists a. lab(author, a) and chstar(x, a) and not (x = a))",
            vec!["x"],
        ),
        ("lab(book, x) and nsstar(x, y) and lab(article, y)", vec!["x", "y"]),
    ];

    for (src, outputs) in formulas {
        let phi = parse_formula(src).expect("formula parses");
        let vars: Vec<Var> = outputs.iter().map(|n| Var::new(n)).collect();
        println!("FO  φ = {phi}");
        println!("    size {} | quantifier rank {}", phi.size(), phi.quantifier_rank());

        // FO side: Tarskian evaluation.
        let fo_answers = fo_answer_nary(doc.tree(), &phi, &vars);

        // XPath side: Lemma 1 translation, naive Core XPath 2.0 evaluation.
        let xpath = fo_to_xpath(&phi);
        println!("    ⟦φ⟧ = {xpath}");
        let xp_answers = Engine::NaiveEnumeration.answer(&doc, &xpath, &vars).unwrap();

        let xp_set: std::collections::BTreeSet<Vec<_>> =
            xp_answers.tuples().iter().cloned().collect();
        assert_eq!(fo_answers, xp_set, "Lemma 1: the two sides must agree");
        println!("    both sides agree: {} answer tuple(s)", fo_answers.len());

        if xpath.has_for() {
            println!("    (image uses for-loops: quantifiers were present)");
        } else {
            match check_ppl(&xpath) {
                Ok(()) => {
                    let fast = Engine::Ppl.answer(&doc, &xpath, &vars).unwrap();
                    assert_eq!(fast.tuples().len(), fo_answers.len());
                    println!("    image is even in PPL: polynomial engine agrees too");
                }
                Err(violations) => {
                    println!(
                        "    image is for-free (Lemma 2) but shares variables: {}",
                        violations
                            .iter()
                            .map(|v| v.restriction.paper_name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
        }
        for tuple in fo_answers.iter().take(3) {
            let cells: Vec<String> = tuple.iter().map(|n| doc.describe(*n)).collect();
            println!("      ↦ ({})", cells.join(", "));
        }
        println!();
    }

    println!(
        "Every FO query translated in linear time and produced identical answers\n\
         (Lemma 1); eliminating the quantifiers while staying polynomial is what\n\
         the PPL fragment achieves in general (Theorem 1)."
    );
}
