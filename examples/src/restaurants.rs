//! Wide-tuple extraction — the "restaurant guide" scenario the paper uses to
//! motivate output-sensitive complexity: the tuple width `n` "can easily get
//! up to 10 or more" (name, address, phone number, …), so query answering
//! must be polynomial in the size of the *answer set*, not in the number
//! `|t|ⁿ` of candidate tuples.
//!
//! This example sweeps the tuple width from 1 to 11 on a restaurant guide
//! and reports, for each width, the answer-set size and the running time of
//! the polynomial engine; for small widths it also shows the exponential
//! growth of the naive assignment-enumeration baseline.
//!
//! Run with: `cargo run -p examples --bin restaurants --release`

use ppl_xpath::{Document, Engine, PplQuery};
use std::time::Instant;
use xpath_tree::generate::{restaurants, RESTAURANT_ATTRIBUTES};
use xpath_workload::restaurant_query;

fn main() {
    let doc = Document::from_tree(restaurants(60, &RESTAURANT_ATTRIBUTES, 6));
    println!(
        "restaurant guide: {} nodes, {} restaurants, {} attribute columns",
        doc.len(),
        doc.tree().nodes_with_label_str("restaurant").len(),
        RESTAURANT_ATTRIBUTES.len()
    );
    println!(
        "candidate tuple space |t|^n at n=11: {:.2e}\n",
        (doc.len() as f64).powi(11)
    );

    // The naive baseline enumerates |t|^n assignments, so it only gets a
    // small 6-restaurant document and only the first two widths — which is
    // exactly the point the paper makes.
    let small = Document::from_tree(restaurants(6, &RESTAURANT_ATTRIBUTES, 6));

    println!(
        "{:>3} | {:>10} | {:>12} | {:>26}",
        "n", "|A|", "PPL engine", "naive engine (6 rest.)"
    );
    println!("{}", "-".repeat(62));
    for width in 1..=RESTAURANT_ATTRIBUTES.len() {
        let (query, vars) = restaurant_query(width);
        let compiled = PplQuery::compile_path(query.clone(), vars.clone()).unwrap();

        let started = Instant::now();
        let answers = compiled.answers(&doc).unwrap();
        let ppl_time = started.elapsed();

        let naive_cell = if width <= 2 {
            let started = Instant::now();
            let naive = Engine::NaiveEnumeration.answer(&small, &query, &vars).unwrap();
            let ppl_small = compiled.answers(&small).unwrap();
            assert_eq!(naive.len(), ppl_small.len());
            format!("{:?}", started.elapsed())
        } else {
            "(skipped: would enumerate |t|^n)".to_string()
        };

        println!(
            "{:>3} | {:>10} | {:>12} | {:>26}",
            width,
            answers.len(),
            format!("{ppl_time:?}"),
            naive_cell
        );
    }

    // Show one full-width answer with resolved attribute labels.
    let (query, vars) = restaurant_query(11);
    let compiled = PplQuery::compile_path(query, vars).unwrap();
    let answers = compiled.answers(&doc).unwrap();
    if let Some(tuple) = answers.tuples().first() {
        println!("\nexample full-width tuple:");
        for (var, node) in answers.variables().iter().zip(tuple) {
            println!("  {var} = {}", doc.describe(*node));
        }
    }
}
