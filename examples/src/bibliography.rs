//! Bibliography extraction — the motivating scenario of the paper's
//! introduction, at a realistic document size.
//!
//! The same author–title extraction is expressed three ways and all three
//! are checked to agree:
//!
//! 1. as an XQuery-style nested `for` loop (Core XPath 2.0 with `for`,
//!    answered by the naive specification engine);
//! 2. as the PPL query with free variables (the paper's introduction),
//!    answered by the polynomial-time pipeline;
//! 3. as an acyclic conjunctive query over axis relations, answered by
//!    Yannakakis' algorithm.
//!
//! Run with: `cargo run -p examples --bin bibliography`

use ppl_xpath::{Document, Engine, PplQuery};
use std::time::Instant;
use xpath_acq::{answer_acq, hcl_to_acq};
use xpath_ast::{parse_path, Var};
use xpath_tree::generate::bibliography;

fn main() {
    // A bibliography with 120 books and up to 4 authors per book.
    let doc = Document::from_tree(bibliography(120, 4));
    println!(
        "bibliography document: {} nodes, {} books, {} authors",
        doc.len(),
        doc.tree().nodes_with_label_str("book").len(),
        doc.tree().nodes_with_label_str("author").len(),
    );

    // --- 1. XQuery style: nested for loops (naive engine, small subset) ---
    // The for-loop formulation is outside PPL (no for loops allowed), so it
    // runs on the specification engine.  To keep the exponential baseline
    // affordable we evaluate it on a 4-book prefix only.
    let small = Document::from_tree(bibliography(4, 4));
    let xquery_style = parse_path(
        "for $b in descendant::book return \
           child::book[. is $b]/child::author[. is $y]\
             [parent::book[child::title[. is $z]]]",
    )
    .unwrap();
    let started = Instant::now();
    let naive_pairs = Engine::NaiveEnumeration
        .answer(&small, &xquery_style, &[Var::new("y"), Var::new("z")])
        .unwrap();
    println!(
        "\n[1] for-loop formulation, naive engine, 4 books  : {:4} pairs in {:?}",
        naive_pairs.len(),
        started.elapsed()
    );

    // --- 2. PPL with variables (the paper's introduction) ------------------
    let ppl = PplQuery::compile(
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        &["y", "z"],
    )
    .unwrap();
    let started = Instant::now();
    let pairs = ppl.answers(&doc).unwrap();
    println!(
        "[2] PPL formulation, polynomial engine, 120 books: {:4} pairs in {:?}",
        pairs.len(),
        started.elapsed()
    );

    // The two formulations agree on the common 10-book document.
    let ppl_small = ppl.answers(&small).unwrap();
    assert_eq!(
        naive_pairs.tuples(),
        ppl_small.tuples(),
        "the two formulations must select the same pairs"
    );
    println!("    (both formulations agree on the shared 4-book prefix)");

    // --- 3. Acyclic conjunctive query via Yannakakis -----------------------
    let hcl = ppl.hcl().clone();
    // The intro query translates to a union-free HCL⁻ expression, so it is a
    // single ACQ; answer it with Yannakakis and compare.
    let (cq, db) = hcl_to_acq(doc.tree(), &hcl, &[Var::new("y"), Var::new("z")]).unwrap();
    let started = Instant::now();
    let acq_answers = answer_acq(&cq, &db).unwrap();
    println!(
        "[3] ACQ formulation, Yannakakis, 120 books       : {:4} pairs in {:?}",
        acq_answers.len(),
        started.elapsed()
    );
    println!("    query: {cq}");
    assert_eq!(acq_answers.len(), pairs.len());

    // Show a few answers with resolved labels.
    println!("\nfirst answers:");
    for tuple in pairs.iter().take(5) {
        println!(
            "  author {} of book {}  ↦  title {}",
            doc.describe(tuple[0]),
            doc.describe(doc.tree().parent(tuple[0]).unwrap()),
            doc.describe(tuple[1])
        );
    }
}
