//! Why PPL forbids variable sharing — the Proposition 3 reduction in action.
//!
//! Proposition 3: query non-emptiness for Core XPath 2.0 without `for` loops
//! and without variables below negation is NP-complete (by reduction from
//! SAT), which is why PPL additionally forbids *variable sharing* in
//! compositions, filters and conjunctions.
//!
//! This example
//!
//! 1. generates random 3-SAT instances of growing size,
//! 2. encodes each as a (tree, query) pair following the reduction,
//! 3. shows that the PPL checker rejects every encoded query (naming the
//!    violated restrictions), and
//! 4. answers the query with the naive engine, whose running time grows
//!    exponentially with the number of propositional variables, and checks
//!    the result against a brute-force SAT solver.
//!
//! Run with: `cargo run -p examples --bin sat_hardness --release`

use ppl_xpath::{Document, Engine, PplQuery};
use std::time::Instant;
use xpath_ast::ppl::check_ppl;
use xpath_workload::{encode_sat_query, encode_sat_tree, random_3sat};

fn main() {
    println!("Proposition 3: SAT reduces to query non-emptiness with variable sharing\n");
    println!(
        "{:>5} | {:>7} | {:>6} | {:>12} | {:>6} | violations",
        "vars", "clauses", "sat?", "naive time", "agree"
    );
    println!("{}", "-".repeat(70));

    // The naive engine enumerates |t|^vars assignments, so even 5 variables
    // (a 16-node tree) would already take ~10^10 elementary steps — the
    // sweep stops at 4 and the growth factor per added variable is the
    // exponential signal.
    for num_vars in 2..=4 {
        let num_clauses = num_vars + 2;
        let instance = random_3sat(num_vars, num_clauses, 41 + num_vars as u64);
        let tree = encode_sat_tree(&instance);
        let (query, _assignment_vars) = encode_sat_query(&instance);
        let doc = Document::from_tree(tree);

        // The PPL checker rejects the encoding: this is the hardness side of
        // the fragment design.
        let violations = check_ppl(&query).expect_err("the encoding shares variables");
        let mut names: Vec<&str> = violations
            .iter()
            .map(|v| v.restriction.paper_name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert!(PplQuery::compile_path(query.clone(), vec![]).is_err());

        // Non-emptiness via the naive engine (Boolean query, arity 0).
        let started = Instant::now();
        let nonempty = !Engine::NaiveEnumeration
            .answer(&doc, &query, &[])
            .unwrap()
            .is_empty();
        let elapsed = started.elapsed();

        let expected = instance.brute_force_satisfiable();
        println!(
            "{:>5} | {:>7} | {:>6} | {:>12} | {:>6} | {}",
            num_vars,
            num_clauses,
            nonempty,
            format!("{elapsed:?}"),
            nonempty == expected,
            names.join(", ")
        );
        assert_eq!(nonempty, expected, "the reduction must be faithful");
    }

    println!(
        "\nThe naive time grows roughly by a factor |t| per extra variable \
         (assignment enumeration), matching the NP-hardness of Prop. 3;\n\
         the PPL checker rejects every encoded query because the clause \
         filters re-use the assignment variables (NVS([]) / NVS(and))."
    );
}
