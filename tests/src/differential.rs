//! Cross-engine differential fuzzing.
//!
//! This module generates random **PPL** queries (Definition 1) together with
//! random trees and checks that every evaluation pipeline in the workspace
//! produces exactly the same answer set, tuple for tuple:
//!
//! 1. [`Engine::Ppl`] — the Theorem-1 polynomial pipeline
//!    (Fig. 7 translation → Lemma 3 normalisation → Fig. 8 answering);
//! 2. [`Engine::NaiveEnumeration`] — the Fig. 2 specification semantics with
//!    assignment enumeration, the exponential ground truth;
//! 3. the Fig. 8 algorithm invoked directly on the HCL⁻ image
//!    (`ppl_to_hcl` + `answer_hcl_pplbin`), bypassing the core facade;
//! 4. the ACQ/Yannakakis path (`hcl_to_acq` + `answer_acq` on union-free
//!    images, `hcl_to_union_acq` otherwise — Props. 7/8/9).
//!
//! A second generator produces random FO formulas and checks the Lemma 1
//! round trip: `fo_answer_nary` (Tarskian satisfaction) must agree with the
//! naive engine run on `fo_to_xpath(φ)`.
//!
//! The query generator is *constructive*: it partitions the requested output
//! variables over the syntax tree so that each NVS restriction holds by
//! construction, and then re-checks the invariant with [`check_ppl`] — a
//! rejected query is a generator bug, not a skip.
//!
//! Everything is deterministic per seed, so a failing case reproduces across
//! runs; the panic message carries the term-syntax tree and the printed
//! query for one-line reproduction.

use ppl_xpath::{Document, Engine, PplQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use xpath_acq::{answer_acq, hcl_to_acq, hcl_to_union_acq};
use xpath_ast::ppl::check_ppl;
use xpath_ast::{NameTest, NodeRef, PathExpr, TestExpr, Var};
use xpath_fo::{fo_answer_nary, fo_to_xpath, Formula};
use xpath_hcl::{answer_hcl_pplbin, ppl_to_hcl};
use xpath_naive::answer_nary;
use xpath_tree::generate::{random_tree, TreeGenConfig, TreeShape};
use xpath_tree::{Axis, NodeId, Tree};

/// Upper bound on the number of union-free disjuncts the ACQ cross-check is
/// willing to materialise per query (Prop. 9 distribution is exponential in
/// the union nesting depth).
const ACQ_DISJUNCT_BUDGET: usize = 256;

// ---------------------------------------------------------------------------
// Configuration and reporting
// ---------------------------------------------------------------------------

/// Configuration of one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// RNG seed; runs are deterministic per seed.
    pub seed: u64,
    /// Number of (tree, query) pairs to check.
    pub cases: usize,
    /// Maximum tree size in nodes (sizes are drawn from `1..=max`).
    pub max_tree_size: usize,
    /// Number of distinct labels `l0 … l{alphabet-1}` used by trees and
    /// name tests (sharing the alphabet keeps queries selective but not
    /// trivially empty).
    pub alphabet: usize,
    /// Maximum tuple width (output variables per query). The naive engine
    /// enumerates `|t|^n` assignments, so keep this small.
    pub max_vars: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xD1FF_5EED,
            cases: 200,
            max_tree_size: 12,
            alphabet: 3,
            max_vars: 3,
        }
    }
}

/// Aggregate statistics of a fuzzing run, for meta-assertions (the fuzz
/// must actually exercise non-trivial queries, not vacuously agree on
/// empty answer sets).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// (tree, query) pairs checked.
    pub cases: usize,
    /// Cases whose answer set was non-empty.
    pub nonempty_answers: usize,
    /// Total answer tuples across all cases.
    pub total_tuples: usize,
    /// Cases whose query contained at least one `union`.
    pub union_queries: usize,
    /// Cases checked against the ACQ/Yannakakis path (a case is skipped
    /// only when union distribution exceeds `ACQ_DISJUNCT_BUDGET`).
    pub acq_checked: usize,
    /// Widest tuple arity seen.
    pub max_arity: usize,
}

// ---------------------------------------------------------------------------
// Random PPL query generation
// ---------------------------------------------------------------------------

/// Seeded generator of random trees and random PPL queries.
pub struct QueryGen {
    rng: StdRng,
    alphabet: usize,
}

impl QueryGen {
    pub fn new(seed: u64, alphabet: usize) -> QueryGen {
        QueryGen {
            rng: StdRng::seed_from_u64(seed),
            alphabet: alphabet.max(1),
        }
    }

    /// A random tree of one of the five generator shapes.
    pub fn gen_tree(&mut self, max_size: usize) -> Tree {
        let size = self.rng.gen_range(1..=max_size.max(1));
        let shape = match self.rng.gen_range(0u32..5) {
            0 => TreeShape::RandomAttachment,
            1 => TreeShape::BoundedBranching {
                max_children: self.rng.gen_range(1usize..=4),
            },
            2 => TreeShape::Path,
            3 => TreeShape::Star,
            _ => TreeShape::Complete {
                arity: self.rng.gen_range(2usize..=3),
            },
        };
        random_tree(&TreeGenConfig {
            size,
            shape,
            alphabet: self.alphabet,
            seed: self.rng.gen_range(0u64..=u64::MAX),
        })
    }

    /// A random PPL query binding exactly `arity` output variables
    /// `v0 … v{arity-1}`. The result always satisfies [`check_ppl`].
    pub fn gen_query(&mut self, arity: usize) -> (PathExpr, Vec<Var>) {
        let vars: Vec<Var> = (0..arity).map(|i| Var::new(&format!("v{i}"))).collect();
        let path = self.gen_path(3, &vars);
        (path, vars)
    }

    fn gen_axis(&mut self) -> Axis {
        // Favour the downward axes (selective but frequently non-empty);
        // include every axis the data model defines.
        match self.rng.gen_range(0u32..12) {
            0 | 1 => Axis::Child,
            2 | 3 => Axis::Descendant,
            4 => Axis::SelfAxis,
            5 => Axis::Parent,
            6 => Axis::Ancestor,
            7 => Axis::DescendantOrSelf,
            8 => Axis::AncestorOrSelf,
            9 => Axis::FollowingSibling,
            _ => Axis::PrecedingSibling,
        }
    }

    fn gen_name(&mut self) -> NameTest {
        if self.rng.gen_bool(0.4) {
            NameTest::Wildcard
        } else {
            NameTest::name(&format!("l{}", self.rng.gen_range(0..self.alphabet)))
        }
    }

    fn gen_step(&mut self) -> PathExpr {
        let axis = self.gen_axis();
        let name = self.gen_name();
        PathExpr::Step(axis, name)
    }

    /// A random variable-free path expression (the PPLbin source fragment).
    pub fn gen_varfree_path(&mut self, depth: u32) -> PathExpr {
        if depth == 0 {
            return if self.rng.gen_bool(0.1) {
                PathExpr::NodeRef(NodeRef::Dot)
            } else {
                self.gen_step()
            };
        }
        match self.rng.gen_range(0u32..10) {
            0..=3 => self.gen_step(),
            4 => PathExpr::Seq(
                Box::new(self.gen_varfree_path(depth - 1)),
                Box::new(self.gen_varfree_path(depth - 1)),
            ),
            5 => PathExpr::Union(
                Box::new(self.gen_varfree_path(depth - 1)),
                Box::new(self.gen_varfree_path(depth - 1)),
            ),
            6 => PathExpr::Intersect(
                Box::new(self.gen_varfree_path(depth - 1)),
                Box::new(self.gen_varfree_path(depth - 1)),
            ),
            7 => PathExpr::Except(
                Box::new(self.gen_varfree_path(depth - 1)),
                Box::new(self.gen_varfree_path(depth - 1)),
            ),
            _ => PathExpr::Filter(
                Box::new(self.gen_varfree_path(depth - 1)),
                Box::new(self.gen_varfree_test(depth - 1)),
            ),
        }
    }

    /// A random variable-free test expression.
    pub fn gen_varfree_test(&mut self, depth: u32) -> TestExpr {
        if depth == 0 {
            return TestExpr::Path(self.gen_step());
        }
        match self.rng.gen_range(0u32..8) {
            0..=2 => TestExpr::Path(self.gen_varfree_path(depth - 1)),
            3 => TestExpr::Not(Box::new(self.gen_varfree_test(depth - 1))),
            4 => TestExpr::And(
                Box::new(self.gen_varfree_test(depth - 1)),
                Box::new(self.gen_varfree_test(depth - 1)),
            ),
            5 => TestExpr::Or(
                Box::new(self.gen_varfree_test(depth - 1)),
                Box::new(self.gen_varfree_test(depth - 1)),
            ),
            _ => TestExpr::Path(self.gen_step()),
        }
    }

    /// A random path expression whose free variables are exactly `vars`.
    ///
    /// The NVS conditions are maintained structurally: variables are
    /// *partitioned* between the two sides of `/`, `[]` and `and`, while
    /// `union` and `or` duplicate the full set on both sides (which
    /// Definition 1 permits).
    pub fn gen_path(&mut self, depth: u32, vars: &[Var]) -> PathExpr {
        if vars.is_empty() {
            return self.gen_varfree_path(depth.min(2));
        }
        // Unions may share variables freely — both branches bind the full set.
        if depth > 0 && self.rng.gen_bool(0.2) {
            return PathExpr::Union(
                Box::new(self.gen_path(depth - 1, vars)),
                Box::new(self.gen_path(depth - 1, vars)),
            );
        }
        // Goto-style anchor `$v / P(rest)` (NVS(/) holds: disjoint parts).
        if depth > 0 && vars.len() >= 2 && self.rng.gen_bool(0.15) {
            let (head, rest) = vars.split_first().expect("vars nonempty");
            return PathExpr::Seq(
                Box::new(PathExpr::NodeRef(NodeRef::Var(head.clone()))),
                Box::new(self.gen_path(depth - 1, rest)),
            );
        }

        // Conjunctive node: `base [. is $v]? [T(filter_vars)]? (/ P(tail))?`
        // with {v} ⊎ filter_vars ⊎ tail = vars.
        let split = self.rng.gen_range(0..=vars.len());
        let (here, tail) = vars.split_at(split);
        let (self_bound, filter_vars) = if !here.is_empty() && self.rng.gen_bool(0.7) {
            (Some(&here[0]), &here[1..])
        } else {
            (None, here)
        };

        let mut node = self.gen_step();
        if self.rng.gen_bool(0.2) {
            node = PathExpr::Filter(Box::new(node), Box::new(self.gen_varfree_test(1)));
        }
        if let Some(v) = self_bound {
            node = PathExpr::Filter(
                Box::new(node),
                Box::new(TestExpr::Comp(NodeRef::Dot, NodeRef::Var(v.clone()))),
            );
        }
        if !filter_vars.is_empty() {
            let test = self.gen_test(depth.saturating_sub(1), filter_vars);
            node = PathExpr::Filter(Box::new(node), Box::new(test));
        }
        if !tail.is_empty() {
            let rest = self.gen_path(depth.saturating_sub(1), tail);
            node = PathExpr::Seq(Box::new(node), Box::new(rest));
        } else if self.rng.gen_bool(0.15) {
            // A trailing variable-free hop keeps `/` exercised on the right.
            node = PathExpr::Seq(Box::new(node), Box::new(self.gen_varfree_path(1)));
        }
        node
    }

    /// A random test expression whose free variables are exactly `vars`
    /// (which must be non-empty).
    pub fn gen_test(&mut self, depth: u32, vars: &[Var]) -> TestExpr {
        debug_assert!(!vars.is_empty());
        if depth == 0 {
            // Base case: bind every variable via `. is $v` conjunctions
            // (distinct variables, so NVS(and) holds).
            return vars
                .iter()
                .map(|v| TestExpr::Comp(NodeRef::Dot, NodeRef::Var(v.clone())))
                .reduce(|a, b| TestExpr::And(Box::new(a), Box::new(b)))
                .expect("vars nonempty");
        }
        match self.rng.gen_range(0u32..10) {
            // `or` duplicates the full variable set, like union.
            0 | 1 => TestExpr::Or(
                Box::new(self.gen_test(depth - 1, vars)),
                Box::new(self.gen_test(depth - 1, vars)),
            ),
            // `and` partitions the variable set.
            2 | 3 if vars.len() >= 2 => {
                let cut = self.rng.gen_range(1..vars.len());
                let (a, b) = vars.split_at(cut);
                TestExpr::And(
                    Box::new(self.gen_test(depth - 1, a)),
                    Box::new(self.gen_test(depth - 1, b)),
                )
            }
            // `$a is $b` — both sides must denote the same node.
            4 if vars.len() == 2 => TestExpr::Comp(
                NodeRef::Var(vars[0].clone()),
                NodeRef::Var(vars[1].clone()),
            ),
            // `. is $v` for a single variable.
            5 if vars.len() == 1 => {
                TestExpr::Comp(NodeRef::Dot, NodeRef::Var(vars[0].clone()))
            }
            // A path test whose navigation binds the variables.
            _ => TestExpr::Path(self.gen_path(depth - 1, vars)),
        }
    }
}

// ---------------------------------------------------------------------------
// FO formula generation (Lemma 1 round trip)
// ---------------------------------------------------------------------------

/// Seeded generator of random FO formulas over a fixed variable scope.
pub struct FormulaGen {
    rng: StdRng,
    alphabet: usize,
}

impl FormulaGen {
    pub fn new(seed: u64, alphabet: usize) -> FormulaGen {
        FormulaGen {
            rng: StdRng::seed_from_u64(seed),
            alphabet: alphabet.max(1),
        }
    }

    fn gen_atom(&mut self, scope: &[String]) -> Formula {
        let pick = |rng: &mut StdRng, scope: &[String]| -> String {
            scope[rng.gen_range(0..scope.len())].clone()
        };
        match self.rng.gen_range(0u32..4) {
            0 => {
                let x = pick(&mut self.rng, scope);
                let y = pick(&mut self.rng, scope);
                Formula::ns_star(&x, &y)
            }
            1 => {
                let x = pick(&mut self.rng, scope);
                let y = pick(&mut self.rng, scope);
                Formula::ch_star(&x, &y)
            }
            _ => {
                let label = format!("l{}", self.rng.gen_range(0..self.alphabet));
                let x = pick(&mut self.rng, scope);
                Formula::label(&label, &x)
            }
        }
    }

    /// A random formula whose free variables are contained in `scope`.
    /// `quantifiers` bounds the number of `∃` introduced below this node.
    pub fn gen_formula(&mut self, depth: u32, quantifiers: u32, scope: &[String]) -> Formula {
        if depth == 0 {
            return self.gen_atom(scope);
        }
        match self.rng.gen_range(0u32..8) {
            0 | 1 => self.gen_atom(scope),
            2 => self.gen_formula(depth - 1, quantifiers, scope).negate(),
            3 | 4 => self
                .gen_formula(depth - 1, quantifiers, scope)
                .and(self.gen_formula(depth - 1, quantifiers, scope)),
            5 => self
                .gen_formula(depth - 1, quantifiers, scope)
                .or(self.gen_formula(depth - 1, quantifiers, scope)),
            _ if quantifiers > 0 => {
                let fresh = format!("q{}", quantifiers);
                let mut inner_scope = scope.to_vec();
                inner_scope.push(fresh.clone());
                Formula::exists(
                    &fresh,
                    self.gen_formula(depth - 1, quantifiers - 1, &inner_scope),
                )
            }
            _ => self.gen_atom(scope),
        }
    }
}

// ---------------------------------------------------------------------------
// The cross-engine check
// ---------------------------------------------------------------------------

fn answer_tuples(set: &ppl_xpath::AnswerSet) -> BTreeSet<Vec<NodeId>> {
    set.tuples().iter().cloned().collect()
}

/// Check one (tree, query) pair across all four pipelines. Panics with a
/// reproducible diagnostic on the first disagreement. Returns
/// `(tuple_count, acq_checked)`.
pub fn check_case(tree: &Tree, query: &PathExpr, outputs: &[Var]) -> (usize, bool) {
    let ctx = |engine: &str| {
        format!(
            "{engine} failed\n  query : {query}\n  output: {outputs:?}\n  tree  : {}",
            tree.to_terms()
        )
    };

    check_ppl(query).unwrap_or_else(|violations| {
        panic!(
            "generator produced a non-PPL query ({violations:?})\n{}",
            ctx("check_ppl")
        )
    });

    let doc = Document::from_tree(tree.clone());

    // 1. Ground truth: the Fig. 2 specification semantics.
    let naive = answer_nary(tree, query, outputs)
        .unwrap_or_else(|e| panic!("{e}\n{}", ctx("naive enumeration")));

    // 2. The polynomial pipeline through the public facade.
    let ppl = Engine::Ppl
        .answer(&doc, query, outputs)
        .unwrap_or_else(|e| panic!("{e}\n{}", ctx("Engine::Ppl")));
    assert_eq!(
        answer_tuples(&ppl),
        naive,
        "Engine::Ppl disagrees with the naive engine\n{}",
        ctx("differential")
    );

    // 2b. The batched API over the now-warm document cache: the answer must
    //     come out of cached matrices tuple-for-tuple identical.
    let compiled = PplQuery::compile_path(query.clone(), outputs.to_vec())
        .unwrap_or_else(|e| panic!("{e}\n{}", ctx("PplQuery::compile_path")));
    let batch = doc
        .answer_batch(std::slice::from_ref(&compiled))
        .unwrap_or_else(|e| panic!("{e}\n{}", ctx("Document::answer_batch")));
    assert_eq!(
        answer_tuples(&batch[0]),
        naive,
        "answer_batch (cached matrices) disagrees with the naive engine\n{}",
        ctx("differential")
    );

    // 3. The Fig. 8 algorithm on the HCL⁻ image, bypassing the facade.
    let hcl = ppl_to_hcl(query).unwrap_or_else(|e| panic!("{e}\n{}", ctx("ppl_to_hcl")));
    let via_hcl = answer_hcl_pplbin(tree, &hcl, outputs)
        .unwrap_or_else(|e| panic!("{e}\n{}", ctx("answer_hcl_pplbin")));
    assert_eq!(
        via_hcl,
        naive,
        "answer_hcl_pplbin disagrees with the naive engine\n{}",
        ctx("differential")
    );

    // 4. The ACQ/Yannakakis path (Props. 7/8/9). Union-free images map to a
    //    single conjunctive query; unions are distributed under a budget.
    let acq_checked = if hcl.is_union_free() {
        let (cq, db) =
            hcl_to_acq(tree, &hcl, outputs).unwrap_or_else(|e| panic!("{e}\n{}", ctx("hcl_to_acq")));
        let via_acq = answer_acq(&cq, &db).unwrap_or_else(|e| panic!("{e}\n{}", ctx("answer_acq")));
        assert_eq!(
            via_acq,
            naive,
            "Yannakakis disagrees with the naive engine\n{}",
            ctx("differential")
        );
        true
    } else {
        match hcl_to_union_acq(tree, &hcl, outputs, ACQ_DISJUNCT_BUDGET) {
            Ok(union_acq) => {
                let via_acq = union_acq
                    .answer()
                    .unwrap_or_else(|e| panic!("{e}\n{}", ctx("UnionAcq::answer")));
                assert_eq!(
                    via_acq,
                    naive,
                    "union-of-ACQs disagrees with the naive engine\n{}",
                    ctx("differential")
                );
                true
            }
            // Distribution blow-up: the other three engines still cover the
            // case; record the skip so the report stays honest.
            Err(_) => false,
        }
    };

    (naive.len(), acq_checked)
}

fn has_union(p: &PathExpr) -> bool {
    match p {
        PathExpr::Step(_, _) | PathExpr::NodeRef(_) => false,
        PathExpr::Union(_, _) => true,
        PathExpr::Seq(a, b) | PathExpr::Intersect(a, b) | PathExpr::Except(a, b) => {
            has_union(a) || has_union(b)
        }
        PathExpr::Filter(p, t) => has_union(p) || test_has_union(t),
        PathExpr::For(_, a, b) => has_union(a) || has_union(b),
    }
}

fn test_has_union(t: &TestExpr) -> bool {
    match t {
        TestExpr::Path(p) => has_union(p),
        TestExpr::Comp(_, _) => false,
        TestExpr::Not(t) => test_has_union(t),
        TestExpr::And(a, b) | TestExpr::Or(a, b) => test_has_union(a) || test_has_union(b),
    }
}

/// Run the PPL cross-engine fuzz: `cfg.cases` random (tree, query) pairs,
/// all four pipelines compared tuple-for-tuple on each.
pub fn run_ppl_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut gen = QueryGen::new(cfg.seed, cfg.alphabet);
    let mut arity_rng = StdRng::seed_from_u64(cfg.seed ^ 0xA217);
    let mut report = FuzzReport::default();

    for _ in 0..cfg.cases {
        // Weighted arity: mostly 1–2 variables; wide tuples and boolean
        // queries are the tails. The naive baseline is Θ(|t|ⁿ), so trees
        // shrink as the arity grows.
        let arity = match arity_rng.gen_range(0u32..20) {
            0 | 1 => 0,
            2..=9 => 1,
            10..=16 => 2.min(cfg.max_vars),
            _ => cfg.max_vars,
        };
        let max_size = if arity >= 3 {
            cfg.max_tree_size.min(8)
        } else {
            cfg.max_tree_size
        };
        let tree = gen.gen_tree(max_size);
        let (query, outputs) = gen.gen_query(arity);

        let (tuples, acq_checked) = check_case(&tree, &query, &outputs);
        report.cases += 1;
        report.total_tuples += tuples;
        if tuples > 0 {
            report.nonempty_answers += 1;
        }
        if has_union(&query) {
            report.union_queries += 1;
        }
        if acq_checked {
            report.acq_checked += 1;
        }
        report.max_arity = report.max_arity.max(arity);
    }
    report
}

/// Statistics of one batched-API fuzz run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BatchFuzzReport {
    /// Trees checked (one batch per tree).
    pub trees: usize,
    /// Queries answered across all batches.
    pub queries: usize,
    /// Total answer tuples across all batches.
    pub total_tuples: usize,
    /// Trees whose batch hit the document cache at least once (shared
    /// subterms or repeated queries).
    pub cache_hits_seen: usize,
}

/// Fuzz the batched query API: for each random tree, generate a set of
/// random PPL queries, answer the whole set at once with
/// [`Document::answer_batch`] (shared matrix cache) and check every answer
/// against the per-query paths — a cold-cache [`PplQuery::answers_cold`] run
/// and the naive specification engine.
pub fn run_batch_fuzz(cfg: &FuzzConfig, queries_per_tree: usize) -> BatchFuzzReport {
    assert!(queries_per_tree >= 1);
    let mut gen = QueryGen::new(cfg.seed ^ 0xBA7C4, cfg.alphabet);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBA7C5);
    let mut report = BatchFuzzReport::default();

    for _ in 0..cfg.cases {
        let tree = gen.gen_tree(cfg.max_tree_size);
        let doc = Document::from_tree(tree.clone());
        let mut compiled: Vec<PplQuery> = Vec::with_capacity(queries_per_tree);
        let mut expected: Vec<BTreeSet<Vec<NodeId>>> = Vec::with_capacity(queries_per_tree);
        for _ in 0..queries_per_tree {
            let arity = rng.gen_range(0..=cfg.max_vars.min(2));
            let (query, outputs) = gen.gen_query(arity);
            let naive = answer_nary(&tree, &query, &outputs).unwrap_or_else(|e| {
                panic!("naive failed: {e}\n  query: {query}\n  tree: {}", tree.to_terms())
            });
            expected.push(naive);
            compiled.push(
                PplQuery::compile_path(query.clone(), outputs).unwrap_or_else(|e| {
                    panic!("compile failed: {e}\n  query: {query}\n  tree: {}", tree.to_terms())
                }),
            );
        }

        let batch = doc
            .answer_batch(&compiled)
            .unwrap_or_else(|e| panic!("answer_batch failed: {e}\n  tree: {}", tree.to_terms()));
        assert_eq!(batch.len(), compiled.len());
        for (i, (answer, naive)) in batch.iter().zip(&expected).enumerate() {
            let ctx = || {
                format!(
                    "  query : {}\n  tree  : {}",
                    compiled[i].source(),
                    tree.to_terms()
                )
            };
            assert_eq!(
                &answer_tuples(answer),
                naive,
                "answer_batch[{i}] disagrees with the naive engine\n{}",
                ctx()
            );
            // Per-query cold answering on a fresh document must agree too.
            let cold_doc = Document::from_tree(tree.clone());
            let cold = compiled[i]
                .answers_cold(&cold_doc)
                .unwrap_or_else(|e| panic!("answers_cold failed: {e}\n{}", ctx()));
            assert_eq!(
                cold, batch[i],
                "answer_batch[{i}] disagrees with cold per-query answering\n{}",
                ctx()
            );
            report.total_tuples += answer.len();
        }
        report.trees += 1;
        report.queries += compiled.len();
        if doc.cache_stats().hits > 0 {
            report.cache_hits_seen += 1;
        }
    }
    report
}

/// Run the FO round-trip fuzz: random formulas evaluated by Tarskian
/// satisfaction must agree with the naive engine on their XPath image
/// (Lemma 1 / Prop. 1). Returns the total tuple count across all cases.
pub fn run_fo_fuzz(seed: u64, cases: usize, max_tree_size: usize, alphabet: usize) -> usize {
    let mut trees = QueryGen::new(seed ^ 0xF0, alphabet);
    let mut formulas = FormulaGen::new(seed, alphabet);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1);
    let mut total = 0usize;

    for _ in 0..cases {
        let tree = trees.gen_tree(max_tree_size);
        let n_free = rng.gen_range(1usize..=2);
        let scope: Vec<String> = (0..n_free).map(|i| format!("x{i}")).collect();
        let phi = formulas.gen_formula(3, 1, &scope);
        let outputs: Vec<Var> = scope.iter().map(|s| Var::new(s)).collect();

        let fo_side = fo_answer_nary(&tree, &phi, &outputs);
        let xpath = fo_to_xpath(&phi);
        let xp_side = answer_nary(&tree, &xpath, &outputs).unwrap_or_else(|e| {
            panic!(
                "naive evaluation of the FO image failed: {e}\n  formula: {phi:?}\n  tree: {}",
                tree.to_terms()
            )
        });
        assert_eq!(
            fo_side,
            xp_side,
            "FO round trip broken\n  formula: {phi:?}\n  xpath  : {xpath}\n  tree   : {}",
            tree.to_terms()
        );
        total += fo_side.len();
    }
    total
}

// ---------------------------------------------------------------------------
// Planner / Session fuzzing (prepared plans, engine choice, streaming)
// ---------------------------------------------------------------------------

/// Statistics of one planner fuzz run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PlannerFuzzReport {
    /// (tree, query) pairs checked.
    pub cases: usize,
    /// Total answer tuples across all cases.
    pub total_tuples: usize,
    /// Auto plans that chose the `ppl` engine.
    pub chose_ppl: usize,
    /// Auto plans that chose the `acq` engine.
    pub chose_acq: usize,
    /// Auto plans that chose the `naive` engine.
    pub chose_naive: usize,
    /// Forced-engine executions compared against the ground truth.
    pub forced_checks: usize,
    /// Forced `acq` executions skipped on the Prop. 9 disjunct budget.
    pub acq_budget_skips: usize,
    /// Streaming drains compared against the materialised answers.
    pub stream_checks: usize,
}

/// Fuzz the planner API: for random (tree, PPL-query) pairs, the auto plan
/// and every forced-engine plan must agree tuple-for-tuple with naive
/// enumeration, the plan must explain itself, and the streaming path must
/// yield exactly the materialised answers (no duplicates, no misses).
pub fn run_planner_fuzz(cfg: &FuzzConfig) -> PlannerFuzzReport {
    use ppl_xpath::{Engine, Planner, QueryError, Session};

    let mut gen = QueryGen::new(cfg.seed ^ 0x91A7, cfg.alphabet);
    let mut arity_rng = StdRng::seed_from_u64(cfg.seed ^ 0x91A8);
    let mut report = PlannerFuzzReport::default();

    for case in 0..cfg.cases {
        let arity = arity_rng.gen_range(0..=cfg.max_vars.min(2));
        let tree = gen.gen_tree(cfg.max_tree_size);
        let (query, outputs) = gen.gen_query(arity);
        let ctx = || {
            format!(
                "case {case}\n  query : {query}\n  output: {outputs:?}\n  tree  : {}",
                tree.to_terms()
            )
        };
        let naive: BTreeSet<Vec<NodeId>> = answer_nary(&tree, &query, &outputs)
            .unwrap_or_else(|e| panic!("naive failed: {e}\n{}", ctx()));

        let session = Session::from_tree(tree.clone());
        let planner = Planner::default();

        // 1. Auto plan: must pick some engine, explain itself, and agree.
        let plan = planner
            .plan(&session, query.clone(), outputs.clone())
            .unwrap_or_else(|e| panic!("auto planning failed: {e}\n{}", ctx()));
        let explain = plan.explain();
        assert!(
            explain.contains("chosen") && explain.contains(plan.engine().name()),
            "explain() does not report the decision\n{}",
            ctx()
        );
        let auto_answers = session
            .execute(&plan)
            .unwrap_or_else(|e| panic!("auto plan failed: {e}\n{}", ctx()));
        assert_eq!(
            answer_tuples(&auto_answers),
            naive,
            "auto plan ({}) disagrees with the naive engine\n{}",
            plan.engine().name(),
            ctx()
        );
        match plan.engine() {
            Engine::Ppl => report.chose_ppl += 1,
            Engine::Acq => report.chose_acq += 1,
            Engine::NaiveEnumeration => report.chose_naive += 1,
            Engine::Hcl => panic!("planner must never auto-choose hcl\n{}", ctx()),
        }

        // 2. Every forced engine agrees too (acq may hit the union budget).
        for engine in Engine::ALL {
            let forced = planner
                .plan_with(&session, query.clone(), outputs.clone(), Some(engine))
                .unwrap_or_else(|e| panic!("forced {engine} planning failed: {e}\n{}", ctx()));
            match session.execute(&forced) {
                Ok(answers) => {
                    assert_eq!(
                        answer_tuples(&answers),
                        naive,
                        "forced {engine} disagrees with the naive engine\n{}",
                        ctx()
                    );
                    report.forced_checks += 1;
                }
                Err(QueryError::Acq(message)) if engine == Engine::Acq => {
                    assert!(
                        message.contains("budget") || message.contains("disjunct"),
                        "unexpected acq failure: {message}\n{}",
                        ctx()
                    );
                    report.acq_budget_skips += 1;
                }
                Err(e) => panic!("forced {engine} failed: {e}\n{}", ctx()),
            }
        }

        // 3. Streaming yields exactly the materialised answers, without
        //    duplicates, and prefix consumption is a subset.
        let streamed: Vec<Vec<NodeId>> = session
            .answers_stream(&plan)
            .unwrap_or_else(|e| panic!("streaming failed: {e}\n{}", ctx()))
            .collect();
        assert_eq!(streamed.len(), naive.len(), "stream duplicated tuples\n{}", ctx());
        let streamed_set: BTreeSet<Vec<NodeId>> = streamed.into_iter().collect();
        assert_eq!(streamed_set, naive, "stream disagrees\n{}", ctx());
        if !naive.is_empty() {
            let prefix: BTreeSet<Vec<NodeId>> = session
                .answers_stream(&plan)
                .unwrap_or_else(|e| panic!("streaming failed: {e}\n{}", ctx()))
                .take(1)
                .collect();
            assert!(prefix.is_subset(&naive), "prefix not a subset\n{}", ctx());
        }
        report.stream_checks += 1;

        report.cases += 1;
        report.total_tuples += naive.len();
    }
    report
}

// ---------------------------------------------------------------------------
// Corpus eviction fuzzing (memory-bounded session pool)
// ---------------------------------------------------------------------------

/// Statistics of one corpus fuzz run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CorpusFuzzReport {
    /// Documents in the fuzzed corpus.
    pub docs: usize,
    /// Queries fanned out over the corpus.
    pub queries: usize,
    /// Total answer tuples across all (document, query) cells.
    pub total_tuples: usize,
    /// Tier-1 evictions (matrix caches dropped) observed.
    pub cache_evictions: u64,
    /// Tier-2 evictions (sessions dropped) observed.
    pub session_evictions: u64,
    /// Sessions rebuilt after eviction.
    pub rebuilds: u64,
    /// Plan-cache hits across the run.
    pub plan_hits: u64,
}

/// Fuzz the corpus layer's eviction correctness: random documents are served
/// from a `Corpus` whose memory budget is deliberately smaller than the
/// working set (so the LRU pool thrashes — caches dropped, sessions rebuilt
/// mid-run), and every per-document answer is checked tuple-for-tuple
/// against a fresh cold `Session` over the same document.  Plans are forced
/// onto the `ppl` engine so the matrix caches the evictor manages are
/// actually exercised.
pub fn run_corpus_fuzz(cfg: &FuzzConfig, docs: usize, queries: usize) -> CorpusFuzzReport {
    use ppl_xpath::{Planner, Session};
    use xpath_corpus::{Corpus, CorpusConfig};

    let mut gen = QueryGen::new(cfg.seed ^ 0xC0A9, cfg.alphabet);
    let mut arity_rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0AA);
    let corpus = Corpus::with_config(CorpusConfig {
        // A few hundred bytes: far below the matrices of even one warmed
        // document, so answering steadily evicts and rebuilds.
        memory_budget: Some(384),
        threads: 3,
        queue_capacity: 2,
        engine: Some(Engine::Ppl),
        ..CorpusConfig::default()
    });
    let mut trees: Vec<(String, Tree)> = Vec::with_capacity(docs);
    for i in 0..docs {
        let tree = gen.gen_tree(cfg.max_tree_size);
        let name = format!("doc{i:02}");
        corpus.insert_tree(&name, tree.clone());
        trees.push((name, tree));
    }

    let mut report = CorpusFuzzReport {
        docs,
        ..CorpusFuzzReport::default()
    };
    for case in 0..queries {
        let arity = arity_rng.gen_range(0..=cfg.max_vars.min(2));
        let (query, outputs) = gen.gen_query(arity);
        let source = query.to_string();
        let vars: Vec<&str> = outputs.iter().map(|v| v.name()).collect();
        let ctx = |name: &str| {
            format!("case {case}, doc {name}\n  query : {source}\n  output: {outputs:?}")
        };

        let per_doc = corpus
            .answer_all(&source, &vars)
            .unwrap_or_else(|e| panic!("corpus answer_all failed: {e}\n{}", ctx("*")));
        assert_eq!(per_doc.len(), docs, "one answer set per document");

        for ((name, tree), doc_answer) in trees.iter().zip(&per_doc) {
            assert_eq!(&doc_answer.name, name, "fan-out must tag by name, in order");
            // Ground truth: a fresh cold session per document, same engine.
            let cold = Session::from_tree(tree.clone());
            let plan = Planner::default()
                .plan_with(&cold, query.clone(), outputs.clone(), Some(Engine::Ppl))
                .unwrap_or_else(|e| panic!("cold planning failed: {e}\n{}", ctx(name)));
            let expected = cold
                .execute(&plan)
                .unwrap_or_else(|e| panic!("cold execution failed: {e}\n{}", ctx(name)));
            assert_eq!(
                doc_answer.answers,
                expected,
                "eviction-thrashing corpus disagrees with a cold session\n{}",
                ctx(name)
            );
            report.total_tuples += expected.len();
        }
        report.queries += 1;
    }
    let stats = corpus.stats();
    report.cache_evictions = stats.cache_evictions;
    report.session_evictions = stats.session_evictions;
    report.rebuilds = stats.rebuilds;
    report.plan_hits = stats.plan_hits;
    report
}

// ---------------------------------------------------------------------------
// Kernel-mode differential fuzzing (PPLbin relation kernels)
// ---------------------------------------------------------------------------

/// Fuzz the adaptive relation kernels directly: random variable-free PPLbin
/// expressions over random trees, evaluated under every [`KernelMode`]
/// (dense baseline, adaptive, adaptive + threads), must produce identical
/// matrices.  Returns the total number of pairs checked.
///
/// [`KernelMode`]: xpath_pplbin::KernelMode
pub fn run_kernel_mode_fuzz(seed: u64, cases: usize, max_tree_size: usize, alphabet: usize) -> usize {
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_pplbin::{eval_relation, KernelMode, KernelStats};

    let mut gen = QueryGen::new(seed, alphabet);
    let mut total = 0usize;
    for case in 0..cases {
        let tree = gen.gen_tree(max_tree_size);
        let path = gen.gen_varfree_path(3);
        let bin = from_variable_free_path(&path)
            .unwrap_or_else(|e| panic!("variable-free path {path} did not lower: {e:?}"));
        let mut stats = KernelStats::default();
        let dense = eval_relation(&tree, &bin, KernelMode::Dense, &mut stats).to_matrix();
        for mode in [KernelMode::Adaptive, KernelMode::AdaptiveThreaded] {
            let got = eval_relation(&tree, &bin, mode, &mut stats).to_matrix();
            assert_eq!(
                got,
                dense,
                "kernel mode {mode:?} disagrees with dense (case {case})\n  query: {path}\n  tree : {}",
                tree.to_terms()
            );
        }
        total += dense.count_pairs();
    }
    total
}

// ---------------------------------------------------------------------------
// Lazy-vs-eager differential fuzzing (deferred relation algebra)
// ---------------------------------------------------------------------------

/// Statistics of one lazy-vs-eager fuzz run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LazyFuzzReport {
    /// Variable-free relation cases checked row-for-row.
    pub relation_cases: usize,
    /// Full PPL query cases checked tuple-for-tuple.
    pub query_cases: usize,
    /// Total (u, v) pairs across all relation cases.
    pub total_pairs: usize,
    /// Total answer tuples across all query cases.
    pub total_tuples: usize,
    /// Complement nodes the lazy stores actually deferred (the fuzz must
    /// exercise the symbolic path, not collapse everything eagerly).
    pub deferred_complements: u64,
}

/// Fuzz the lazy relation algebra against the eager kernels.
///
/// Two layers are compared per seed:
///
/// 1. **Relations** — random variable-free PPLbin expressions compiled
///    through a `KernelMode::Lazy` [`MatrixStore`] must agree with the dense
///    baseline both when *forced* to an eager relation and when read
///    row-by-row through [`SuccessorSource`] (the per-row path the Fig. 8
///    stream actually uses), including `row_nonempty` and early-exit
///    `row_any` answers.
/// 2. **Queries** — random PPL queries answered end-to-end through a lazy
///    store must match the naive specification engine and an eager
///    (adaptive) store, tuple for tuple.
///
/// [`MatrixStore`]: xpath_pplbin::MatrixStore
/// [`SuccessorSource`]: xpath_pplbin::SuccessorSource
pub fn run_lazy_fuzz(seed: u64, cases: usize, max_tree_size: usize, alphabet: usize) -> LazyFuzzReport {
    use xpath_ast::binexpr::from_variable_free_path;
    use xpath_hcl::answer_hcl_pplbin_with_store;
    use xpath_pplbin::{eval_relation, KernelMode, KernelStats, MatrixStore};

    let mut gen = QueryGen::new(seed, alphabet);
    let mut arity_rng = StdRng::seed_from_u64(seed ^ 0x1A2);
    let mut report = LazyFuzzReport::default();

    for case in 0..cases {
        // Layer 1: relation semantics, row for row.
        let tree = gen.gen_tree(max_tree_size);
        let n = tree.len();
        let path = gen.gen_varfree_path(3);
        let bin = from_variable_free_path(&path)
            .unwrap_or_else(|e| panic!("variable-free path {path} did not lower: {e:?}"));
        let ctx = || format!("case {case}\n  query: {path}\n  tree : {}", tree.to_terms());

        let mut stats = KernelStats::default();
        let dense = eval_relation(&tree, &bin, KernelMode::Dense, &mut stats).to_matrix();

        let mut store = MatrixStore::with_mode(n, KernelMode::Lazy);
        let forced = store
            .try_eval_relation(&tree, &bin)
            .unwrap_or_else(|e| panic!("lazy force failed: {e}\n{}", ctx()))
            .to_matrix();
        assert_eq!(forced, dense, "forced lazy relation disagrees with dense\n{}", ctx());

        let source = store
            .successor_source(&tree, &bin)
            .unwrap_or_else(|e| panic!("successor_source failed: {e}\n{}", ctx()));
        for u in 0..n {
            let uid = NodeId(u as u32);
            let row = source.row_vec(uid);
            let expected: Vec<NodeId> = dense.successors(uid).collect();
            assert_eq!(row, expected, "row {u} disagrees with dense\n{}", ctx());
            assert_eq!(
                source.row_nonempty(uid),
                !expected.is_empty(),
                "row_nonempty({u}) disagrees\n{}",
                ctx()
            );
            // Early-exit predicate search must see exactly the same row.
            if let Some(&witness) = expected.first() {
                assert!(
                    source.row_any(uid, |v| v == witness),
                    "row_any missed {witness:?} in row {u}\n{}",
                    ctx()
                );
            }
            assert!(
                !source.row_any(uid, |_| false),
                "row_any fabricated a witness in row {u}\n{}",
                ctx()
            );
            report.total_pairs += expected.len();
        }
        report.deferred_complements += store.kernel_stats().complement_ops;
        report.relation_cases += 1;

        // Layer 2: end-to-end answers over the same tree.
        let arity = arity_rng.gen_range(0..=2usize);
        let (query, outputs) = gen.gen_query(arity);
        let qctx = || {
            format!(
                "case {case}\n  query : {query}\n  output: {outputs:?}\n  tree  : {}",
                tree.to_terms()
            )
        };
        let naive = answer_nary(&tree, &query, &outputs)
            .unwrap_or_else(|e| panic!("naive failed: {e}\n{}", qctx()));
        let hcl = ppl_to_hcl(&query).unwrap_or_else(|e| panic!("{e}\n{}", qctx()));

        let mut lazy_store = MatrixStore::with_mode(n, KernelMode::Lazy);
        let lazy = answer_hcl_pplbin_with_store(&tree, &hcl, &outputs, &mut lazy_store)
            .unwrap_or_else(|e| panic!("lazy store answering failed: {e}\n{}", qctx()));
        assert_eq!(lazy, naive, "lazy store disagrees with the naive engine\n{}", qctx());

        let mut eager_store = MatrixStore::with_mode(n, KernelMode::Adaptive);
        let eager = answer_hcl_pplbin_with_store(&tree, &hcl, &outputs, &mut eager_store)
            .unwrap_or_else(|e| panic!("eager store answering failed: {e}\n{}", qctx()));
        assert_eq!(lazy, eager, "lazy and eager stores disagree\n{}", qctx());

        report.deferred_complements += lazy_store.kernel_stats().complement_ops;
        report.total_tuples += naive.len();
        report.query_cases += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_always_produces_ppl_queries() {
        let mut gen = QueryGen::new(7, 3);
        for arity in [0usize, 1, 2, 3] {
            for _ in 0..50 {
                let (q, vars) = gen.gen_query(arity);
                assert!(
                    check_ppl(&q).is_ok(),
                    "non-PPL query generated (arity {arity}): {q}"
                );
                let free = q.free_vars();
                assert_eq!(free.len(), arity, "wrong variable count in {q}");
                for v in &vars {
                    assert!(free.contains(v), "{v} unbound in {q}");
                }
            }
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let (a, _) = QueryGen::new(11, 3).gen_query(2);
        let (b, _) = QueryGen::new(11, 3).gen_query(2);
        assert_eq!(a, b);
        let (c, _) = QueryGen::new(12, 3).gen_query(2);
        assert_ne!(a, c, "different seeds should give different queries");
    }

    #[test]
    fn generated_queries_parse_print_round_trip() {
        let mut gen = QueryGen::new(23, 3);
        for _ in 0..60 {
            let (q, _) = gen.gen_query(2);
            let printed = q.to_string();
            let reparsed = xpath_ast::parse_path(&printed)
                .unwrap_or_else(|e| panic!("{printed} failed to reparse: {e}"));
            assert_eq!(reparsed, q, "round trip changed {printed}");
        }
    }

    #[test]
    fn check_case_accepts_known_good_queries() {
        let tree = Tree::from_terms("l0(l1(l0,l2),l1(l2))").unwrap();
        let q = xpath_ast::parse_path(
            "descendant::l1[child::l0[. is $v0] or child::l2[. is $v0]]",
        )
        .unwrap();
        let (tuples, acq) = check_case(&tree, &q, &[Var::new("v0")]);
        assert!(tuples > 0);
        assert!(acq);
    }

    #[test]
    #[should_panic(expected = "non-PPL query")]
    fn check_case_rejects_non_ppl_queries() {
        let tree = Tree::from_terms("a(b)").unwrap();
        let q = xpath_ast::parse_path("child::b[. is $x]/child::c[. is $x]").unwrap();
        check_case(&tree, &q, &[Var::new("x")]);
    }
}
