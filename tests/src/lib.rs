//! Cross-crate integration test support.
//!
//! * [`differential`] — random-query/random-tree generators and the
//!   cross-engine differential check used by `tests/differential.rs`.
//!
//! The theorem-by-theorem integration tests live in `tests/tests/`.

#![forbid(unsafe_code)]

pub mod differential;
