//! Concurrency tests for the thread-safe `Session` serving path.
//!
//! One `Session` — one document, one sharded matrix store — is hammered
//! from many threads at once, and every concurrent answer must agree
//! tuple-for-tuple with the single-threaded answers.  This is the test that
//! the `RefCell<MatrixStore>` design could not even express: the old cache
//! was `!Sync` and each thread needed its own document clone.

use ppl_xpath::{Engine, Planner, QueryPlan, Session};
use std::collections::BTreeSet;
use xpath_ast::{parse_path, Var};
use xpath_tests::differential::QueryGen;
use xpath_tree::generate::{random_tree, TreeGenConfig, TreeShape};
use xpath_tree::NodeId;

const THREADS: usize = 8;

fn serving_session() -> Session {
    Session::from_tree(random_tree(&TreeGenConfig {
        size: 90,
        shape: TreeShape::BoundedBranching { max_children: 4 },
        alphabet: 3,
        seed: 0x005E_5510,
    }))
}

/// A mixed plan suite over the generator alphabet: fixed compile-heavy
/// queries (shared dense subterms) plus random PPL queries, prepared with
/// both auto and forced engines.
fn plan_suite(session: &Session) -> Vec<QueryPlan> {
    let fixed = [
        ("descendant::l0[child::l1[. is $x]]", vec!["x"]),
        ("descendant::l1[. is $x]/child::l2[. is $y]", vec!["x", "y"]),
        (
            "descendant::l0[not((descendant::* except child::l1)/child::l2)][. is $x]",
            vec!["x"],
        ),
        ("descendant::l2[. is $x] union descendant::l1[. is $x]", vec!["x"]),
        ("descendant::l0[child::l1]", vec![]),
    ];
    let planner = Planner::default();
    let mut plans = Vec::new();
    for (src, vars) in &fixed {
        let path = parse_path(src).unwrap();
        let output: Vec<Var> = vars.iter().map(|n| Var::new(n)).collect();
        plans.push(session.plan_path(path.clone(), output.clone()).unwrap());
        for engine in [Engine::Ppl, Engine::Hcl, Engine::Acq] {
            plans.push(
                planner
                    .plan_with(session, path.clone(), output.clone(), Some(engine))
                    .unwrap(),
            );
        }
    }
    let mut gen = QueryGen::new(0x00C0_C011, 3);
    for _ in 0..6 {
        let (query, outputs) = gen.gen_query(1);
        plans.push(session.plan_path(query, outputs).unwrap());
    }
    plans
}

#[test]
fn eight_threads_hammering_one_session_agree_with_sequential_answers() {
    let session = serving_session();
    let plans = plan_suite(&session);

    // Ground truth on a *fresh* session, sequentially.
    let reference = serving_session().answer_batch(&plans).unwrap();

    // Hammer: every thread executes every plan, in a different order, all
    // against the same shared store.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let session = &session;
            let plans = &plans;
            let reference = &reference;
            scope.spawn(move || {
                for round in 0..3 {
                    for i in 0..plans.len() {
                        let i = (i + t + round) % plans.len();
                        let got = session.execute(&plans[i]).unwrap();
                        assert_eq!(
                            &got, &reference[i],
                            "thread {t} round {round} disagrees on plan {i} ({})",
                            plans[i]
                        );
                    }
                }
            });
        }
    });

    // The threads shared compiled matrices rather than re-compiling: far
    // more lookups hit than missed.
    let stats = session.cache_stats();
    assert!(stats.hits > stats.misses, "no sharing across threads: {stats:?}");
}

#[test]
fn answer_batch_parallel_matches_sequential_at_every_thread_count() {
    let session = serving_session();
    let plans = plan_suite(&session);
    let sequential = session.answer_batch(&plans).unwrap();
    for threads in [1, 2, 4, 8, 16] {
        let fresh = serving_session();
        let parallel = fresh.answer_batch_parallel(&plans, threads).unwrap();
        assert_eq!(parallel, sequential, "threads={threads}");
    }
    // Parallel batches on an already-warm session too.
    let parallel = session.answer_batch_parallel(&plans, THREADS).unwrap();
    assert_eq!(parallel, sequential);
}

#[test]
fn concurrent_parallel_batches_and_streams_do_not_interfere() {
    let session = serving_session();
    let plans = plan_suite(&session);
    let expected = serving_session().answer_batch(&plans).unwrap();

    std::thread::scope(|scope| {
        // Half the threads run whole parallel batches…
        for _ in 0..2 {
            let session = &session;
            let plans = &plans;
            let expected = &expected;
            scope.spawn(move || {
                let got = session.answer_batch_parallel(plans, 4).unwrap();
                assert_eq!(&got, expected);
            });
        }
        // …while the others drain answer streams for single plans.
        for t in 0..4 {
            let session = &session;
            let plans = &plans;
            let expected = &expected;
            scope.spawn(move || {
                for (i, plan) in plans.iter().enumerate() {
                    if i % 4 != t {
                        continue;
                    }
                    let streamed: BTreeSet<Vec<NodeId>> =
                        session.answers_stream(plan).unwrap().collect();
                    let reference: BTreeSet<Vec<NodeId>> =
                        expected[i].tuples().iter().cloned().collect();
                    assert_eq!(streamed, reference, "stream {i} diverged");
                }
            });
        }
    });
}

#[test]
fn sessions_and_plans_cross_thread_boundaries_by_value() {
    // Moving (not borrowing) sessions and plans into spawned threads also
    // works: they are `Send` and clones share the cache.
    let session = serving_session();
    // Forced to ppl so the cache-sharing assertion below is meaningful
    // (auto would route this step-only query to acq, which is cacheless).
    let plan = Planner::default()
        .plan_with(
            &session,
            parse_path("descendant::l1[. is $x]").unwrap(),
            vec![Var::new("x")],
            Some(Engine::Ppl),
        )
        .unwrap();
    let expected = session.execute(&plan).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let session = session.clone();
            let plan = plan.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                assert_eq!(session.execute(&plan).unwrap(), expected);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(session.cache_stats().hits > 0);
}
