//! Corpus-layer integration tests: eviction-correctness fuzzing (a
//! memory-starved, eviction-thrashing `Corpus` must answer exactly like a
//! fresh cold `Session` per document) and a daemon round trip over real
//! TCP sockets.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use xpath_corpus::server::{bind, serve};
use xpath_corpus::{Corpus, CorpusConfig};
use xpath_tests::differential::{run_corpus_fuzz, FuzzConfig};

#[test]
fn fuzz_eviction_thrashing_corpus_matches_cold_sessions() {
    let report = run_corpus_fuzz(
        &FuzzConfig {
            seed: 0xC0A9_F00D,
            cases: 0, // unused by the corpus fuzz
            max_tree_size: 12,
            alphabet: 3,
            max_vars: 2,
        },
        6,  // documents
        25, // queries fanned out over all of them
    );
    assert_eq!(report.docs, 6);
    assert_eq!(report.queries, 25);
    // Meta-assertions: the run must actually exercise the eviction
    // machinery, not pass vacuously on an idle pool.
    assert!(report.total_tuples > 50, "too few tuples: {report:?}");
    assert!(
        report.cache_evictions + report.session_evictions > 10,
        "the 384-byte budget must thrash: {report:?}"
    );
    assert!(report.rebuilds > 0, "evicted sessions must rebuild: {report:?}");
    assert!(report.plan_hits > 0, "plans must be shared across documents: {report:?}");
}

#[test]
fn fuzz_corpus_with_single_label_alphabet() {
    // One label maximises answer sizes (matrix caches grow fastest), which
    // stresses the byte accounting on every eviction decision.
    let report = run_corpus_fuzz(
        &FuzzConfig {
            seed: 0x0E_A11,
            cases: 0,
            max_tree_size: 9,
            alphabet: 1,
            max_vars: 2,
        },
        4,
        12,
    );
    assert_eq!(report.queries, 12);
    assert!(report.total_tuples > 0, "{report:?}");
}

/// End-to-end daemon round trip: LOAD two documents, QUERY one, fan out
/// with QUERYALL, force an EVICT, check STATS moved, and shut down cleanly.
#[test]
fn daemon_round_trip_over_tcp() {
    let (listener, addr) = bind("127.0.0.1:0").unwrap();
    let corpus = Arc::new(Corpus::with_config(CorpusConfig {
        memory_budget: Some(1 << 16),
        ..CorpusConfig::default()
    }));
    let server = std::thread::spawn(move || serve(listener, corpus));

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut request = |line: &str| -> Vec<String> {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let n: usize = status
            .trim()
            .strip_prefix("OK ")
            .unwrap_or_else(|| panic!("unexpected response to {line:?}: {status:?}"))
            .parse()
            .unwrap();
        (0..n)
            .map(|_| {
                let mut payload = String::new();
                reader.read_line(&mut payload).unwrap();
                payload.trim_end().to_string()
            })
            .collect()
    };

    assert_eq!(
        request("LOAD bib <bib><book><author/><title/></book><book><author/></book></bib>"),
        vec!["loaded bib nodes=6 documents=1"]
    );
    assert_eq!(
        request("LOADTERMS lib bib(book(author,title))"),
        vec!["loaded lib nodes=4 documents=2"]
    );

    let lines = request("QUERY bib descendant::book[child::author[. is $a]] -> a");
    assert_eq!(lines[0], "vars=a tuples=2");

    let lines = request("QUERYALL descendant::author[. is $a] -> a");
    assert_eq!(lines[0], "doc=bib tuples=2");
    assert_eq!(lines[3], "doc=lib tuples=1");
    assert_eq!(lines.len(), 5);

    assert_eq!(request("EVICT bib"), vec!["evicted=true"]);
    let stats = request("STATS");
    assert!(stats.contains(&"documents=2".to_string()), "{stats:?}");
    assert!(
        stats.iter().any(|l| l.starts_with("session_evictions=") && !l.ends_with("=0")),
        "{stats:?}"
    );

    // Evicted documents answer again (session rebuilt server-side).
    let lines = request("QUERY bib descendant::author[. is $a] -> a");
    assert_eq!(lines[0], "vars=a tuples=2");

    assert_eq!(request("SHUTDOWN"), vec!["bye"]);
    server.join().unwrap().unwrap();
}
