//! Cross-engine differential fuzzing (see `xpath_tests::differential`).
//!
//! Hundreds of random (tree, PPL-query) pairs are answered by four distinct
//! pipelines — the polynomial PPL engine, the exponential specification
//! baseline, the Fig. 8 HCL algorithm, and ACQ/Yannakakis — which must agree
//! tuple-for-tuple. A second suite checks the Lemma 1 FO round trip. All
//! seeds are fixed, so failures reproduce deterministically.

use xpath_tests::differential::{
    run_batch_fuzz, run_fo_fuzz, run_kernel_mode_fuzz, run_lazy_fuzz, run_planner_fuzz,
    run_ppl_fuzz, FuzzConfig,
};

#[test]
fn fuzz_all_engines_agree_on_200_random_cases() {
    let report = run_ppl_fuzz(&FuzzConfig {
        seed: 0xD1FF_5EED,
        cases: 200,
        max_tree_size: 12,
        alphabet: 3,
        max_vars: 3,
    });
    assert_eq!(report.cases, 200);
    // Meta-assertions: the fuzz must exercise real behaviour, not vacuously
    // agree on empty sets. With the fixed seed these are deterministic.
    assert!(
        report.nonempty_answers > report.cases / 4,
        "too many empty answer sets: {report:?}"
    );
    assert!(report.total_tuples > 200, "too few tuples: {report:?}");
    assert!(report.union_queries > 10, "unions under-exercised: {report:?}");
    assert!(report.max_arity >= 3, "wide tuples never generated: {report:?}");
    assert!(
        report.acq_checked > report.cases * 3 / 4,
        "ACQ path skipped too often: {report:?}"
    );
}

#[test]
fn fuzz_single_label_alphabet_stresses_wildcard_overlap() {
    // One label + wildcards: every name test matches every node, maximising
    // answer-set sizes and intersect/except interactions.
    let report = run_ppl_fuzz(&FuzzConfig {
        seed: 0xA11_0B57,
        cases: 60,
        max_tree_size: 8,
        alphabet: 1,
        max_vars: 2,
    });
    assert_eq!(report.cases, 60);
    assert!(report.nonempty_answers > report.cases / 3, "{report:?}");
}

#[test]
fn fuzz_wide_alphabet_stresses_selective_queries() {
    // Many labels over small trees: most name tests miss, exercising empty
    // intermediate relations in the HCL/ACQ pipelines.
    let report = run_ppl_fuzz(&FuzzConfig {
        seed: 0x5E1EC7,
        cases: 60,
        max_tree_size: 10,
        alphabet: 6,
        max_vars: 2,
    });
    assert_eq!(report.cases, 60);
}

#[test]
fn fuzz_batch_api_agrees_with_cold_and_naive_answers() {
    // 40 random trees × 4 random queries each: the whole set is answered in
    // one `Document::answer_batch` call over a shared matrix cache, and each
    // answer is checked against a cold per-query run and the naive engine.
    let report = run_batch_fuzz(
        &FuzzConfig {
            seed: 0xBA7C_F00D,
            cases: 40,
            max_tree_size: 10,
            alphabet: 3,
            max_vars: 2,
        },
        4,
    );
    assert_eq!(report.trees, 40);
    assert_eq!(report.queries, 160);
    assert!(report.total_tuples > 100, "batches vacuously empty: {report:?}");
    assert!(
        report.cache_hits_seen > 30,
        "batches almost never shared matrices: {report:?}"
    );
}

#[test]
fn fuzz_planner_choices_agree_with_naive_enumeration() {
    // 80 random (tree, query) pairs: the auto plan, every forced-engine
    // plan, and the streaming drain must each agree tuple-for-tuple with
    // the ground truth; the report asserts the planner actually exercised
    // more than one engine choice.
    let report = run_planner_fuzz(&FuzzConfig {
        seed: 0x091A_77E5,
        cases: 80,
        max_tree_size: 14,
        alphabet: 3,
        max_vars: 2,
    });
    assert_eq!(report.cases, 80);
    assert_eq!(report.stream_checks, 80);
    assert!(report.total_tuples > 100, "vacuously empty: {report:?}");
    assert!(report.chose_naive > 0, "naive never chosen: {report:?}");
    assert!(
        report.chose_ppl + report.chose_acq > 0,
        "matrix engines never chosen: {report:?}"
    );
    // 4 forced engines per case, minus the rare acq budget skips.
    assert_eq!(
        report.forced_checks + report.acq_budget_skips,
        report.cases * 4
    );
    assert!(report.acq_budget_skips < report.cases / 4, "{report:?}");
}

#[test]
fn fuzz_fo_round_trip_agrees_with_naive_engine() {
    let tuples = run_fo_fuzz(0xF0F0, 100, 8, 3);
    assert!(tuples > 50, "FO fuzz produced almost no tuples ({tuples})");
}

#[test]
fn fuzz_relation_kernel_modes_agree_with_dense_baseline() {
    // Random variable-free PPLbin expressions under the dense, adaptive and
    // adaptive+threaded kernels must compile to identical matrices; trees
    // are larger here than in the engine fuzz since no exponential baseline
    // is involved.
    let pairs = run_kernel_mode_fuzz(0xADA_F7ED, 120, 40, 3);
    assert!(pairs > 1_000, "kernel fuzz vacuously empty ({pairs} pairs)");
}

#[test]
fn fuzz_lazy_algebra_agrees_with_eager_kernels() {
    // Random variable-free relations read row-by-row through a lazy store
    // (forced, per-row, `row_nonempty`, early-exit `row_any`) plus full PPL
    // queries answered end-to-end must all agree with the dense baseline,
    // the naive engine, and an eager adaptive store, tuple for tuple.
    let report = run_lazy_fuzz(0x1A2_F7ED, 80, 32, 3);
    assert_eq!(report.relation_cases, 80);
    assert_eq!(report.query_cases, 80);
    assert!(report.total_pairs > 1_000, "relation fuzz vacuously empty: {report:?}");
    assert!(report.total_tuples > 50, "query fuzz vacuously empty: {report:?}");
    assert!(
        report.deferred_complements > 10,
        "the symbolic complement path was barely exercised: {report:?}"
    );
}
