//! Property tests (proptest shim) for the document-level matrix cache.
//!
//! For random trees and random PPL queries:
//!
//! * cached-store evaluation agrees tuple-for-tuple with cold evaluation,
//! * a second run through the same `Document` is answered from the cache
//!   (hit counter grows, miss counter does not),
//! * cached PPLbin binary evaluation agrees with the cold matrix engine.

use ppl_xpath::{Document, PplQuery};
use proptest::prelude::*;
use xpath_ast::binexpr::from_variable_free_path;
use xpath_pplbin::answer_binary;
use xpath_tests::differential::QueryGen;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_nary_answers_agree_with_cold_and_second_run_hits(
        seed in 0u64..1_000_000,
        arity in 0usize..3,
        max_size in 2usize..12,
    ) {
        let mut gen = QueryGen::new(seed, 3);
        let tree = gen.gen_tree(max_size);
        let (query, outputs) = gen.gen_query(arity);
        let doc = Document::from_tree(tree);
        let compiled = PplQuery::compile_path(query, outputs).unwrap();

        let cold = compiled.answers_cold(&doc).unwrap();
        prop_assert_eq!(doc.cache_stats().lookups(), 0, "cold path must not touch the cache");

        let warm = compiled.answers(&doc).unwrap();
        prop_assert_eq!(&warm, &cold, "cached evaluation differs from cold evaluation");

        let after_first = doc.cache_stats();
        let again = compiled.answers(&doc).unwrap();
        prop_assert_eq!(&again, &cold, "second cached run differs");
        let after_second = doc.cache_stats();
        prop_assert_eq!(
            after_second.misses, after_first.misses,
            "second run recompiled a matrix"
        );
        if !compiled.hcl().atoms().is_empty() {
            prop_assert!(
                after_second.hits > after_first.hits,
                "second run did not hit the cache: {:?} -> {:?}",
                after_first, after_second
            );
        }
    }

    #[test]
    fn cached_binary_matrices_agree_with_cold_engine(
        seed in 0u64..1_000_000,
        max_size in 1usize..14,
    ) {
        let mut gen = QueryGen::new(seed ^ 0xB1A5, 3);
        let tree = gen.gen_tree(max_size);
        let path = gen.gen_varfree_path(3);
        let bin = from_variable_free_path(&path).unwrap();
        let doc = Document::from_tree(tree);
        let warm = doc.eval_binexpr(&bin);
        prop_assert_eq!(&warm, &answer_binary(doc.tree(), &bin));
        // Determinism: asking again returns the identical matrix.
        prop_assert_eq!(&doc.eval_binexpr(&bin), &warm);
    }
}
