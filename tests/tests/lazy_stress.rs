//! Large-document stress tests for the lazy relation algebra.
//!
//! These are the `|t| ≫ 960` scenarios the lazy kernels exist for: documents
//! where a single dense complement matrix (`|t|²/8` bytes) would not even
//! allocate.  The 1M-node run is `#[ignore]`d — fast in release (~1 s) but
//! disproportionately slow under the debug profile the default suite uses —
//! and is exercised in release by hand or by scheduled CI:
//!
//! ```text
//! cargo test -p xpath_tests --release --test lazy_stress -- --ignored
//! ```

use xpath_ast::binexpr::from_variable_free_path;
use xpath_ast::parse_path;
use xpath_pplbin::{KernelMode, MatrixStore, DENSE_BYTE_LIMIT};
use xpath_tree::generate::dblp;
use xpath_tree::NodeId;

/// Compile `src` (a variable-free path) through a lazy store over `tree`
/// and return the store and the successor source.
fn lazy_source(
    tree: &xpath_tree::Tree,
    src: &str,
) -> (MatrixStore, xpath_pplbin::SuccessorSource) {
    let path = parse_path(src).unwrap();
    let bin = from_variable_free_path(&path).unwrap();
    let mut store = MatrixStore::with_mode(tree.len(), KernelMode::Lazy);
    let source = store
        .successor_source(tree, &bin)
        .expect("lazy compilation must not densify");
    (store, source)
}

/// At 100k nodes a dense complement is ~1.25 GB — still under the byte
/// limit, but the lazy path must answer per-row queries while staying a
/// couple of orders of magnitude below it.
#[test]
fn lazy_rows_on_100k_nodes_stay_memory_bounded() {
    let tree = dblp(100_000, 0xE14);
    let n = tree.len() as u64;
    // Nodes that are not articles, restricted to author parents — eager
    // evaluation of the `except` compiles a complement-shaped product.
    let (store, source) = lazy_source(
        &tree,
        "(descendant-or-self::* except descendant::article)/child::author",
    );
    assert_eq!(source.len(), tree.len());
    let mut pairs = 0usize;
    for u in (0..1_000u64).map(|i| NodeId((i * (n / 1_000)) as u32)) {
        pairs += source.row_vec(u).len();
        let _ = source.row_nonempty(u);
    }
    assert!(pairs > 0, "stress query selected nothing");
    // 1000 rows of a 100k-node document: far below the dense 1.25 GB.
    assert!(
        store.approx_bytes() < 64 << 20,
        "lazy store ballooned to {} bytes",
        store.approx_bytes()
    );
}

/// The headline scenario: |t| = 1,000,000.  A dense complement would need
/// `10¹²/8 = 125 GB`, far past [`DENSE_BYTE_LIMIT`]; the lazy store must
/// still answer row queries, and *forcing* the relation must fail with a
/// capacity error instead of aborting the process.
#[test]
#[ignore = "1M-node stress run; fast in release, slow under the debug profile"]
fn lazy_rows_on_1m_nodes_answer_without_densifying() {
    let tree = dblp(1_000_000, 0xE14);
    assert_eq!(tree.len(), 1_000_000);
    let dense_bytes = (tree.len() as u128 * tree.len() as u128).div_ceil(8);
    assert!(dense_bytes > DENSE_BYTE_LIMIT as u128);

    let path = parse_path("descendant-or-self::* except descendant::article").unwrap();
    let bin = from_variable_free_path(&path).unwrap();
    let mut store = MatrixStore::with_mode(tree.len(), KernelMode::Lazy);
    let source = store
        .successor_source(&tree, &bin)
        .expect("lazy compilation must not densify");

    // Sample rows across the document; each pull is per-row work only.
    let mut nonempty = 0usize;
    for u in (0..200u32).map(|i| NodeId(i * 5_000)) {
        if !source.row_vec(u).is_empty() {
            nonempty += 1;
        }
    }
    assert!(nonempty > 0, "stress query selected nothing");
    assert!(
        store.approx_bytes() < 1 << 30,
        "lazy store ballooned to {} bytes",
        store.approx_bytes()
    );

    // Eager materialisation of the same relation must refuse, not abort.
    let err = store
        .try_eval_relation(&tree, &bin)
        .expect_err("forcing a 1M-node complement must exceed the dense guard");
    let msg = err.to_string();
    assert!(msg.contains("1000000"), "unexpected capacity error: {msg}");
}
