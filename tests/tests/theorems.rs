//! Cross-crate integration tests, one section per result of the paper.
//!
//! Each test exercises the statement of a theorem, proposition or lemma
//! end-to-end across the workspace crates, using the naive specification
//! evaluators as the ground truth.

use ppl_xpath::{Document, Engine, PplQuery};
use std::collections::BTreeSet;
use xpath_acq::{answer_acq, brute_force_answer, gyo_join_forest, hcl_to_acq};
use xpath_ast::binexpr::from_variable_free_path;
use xpath_ast::ppl::{check_ppl, check_pplbin};
use xpath_ast::{parse_path, Var};
use xpath_fo::{fo_answer_nary, fo_to_xpath, parse_formula};
use xpath_hcl::{answer_hcl_pplbin, hcl_to_ppl, ppl_to_hcl};
use xpath_naive::{answer_binary as naive_binary, answer_nary, Assignment};
use xpath_pplbin::answer_binary as matrix_binary;
use xpath_tree::generate::{bibliography, random_tree, TreeGenConfig, TreeShape};
use xpath_tree::{NodeId, Tree};
use xpath_workload::{encode_sat_query, encode_sat_tree, random_3sat};

fn sample_trees() -> Vec<Tree> {
    vec![
        Tree::from_terms("a").unwrap(),
        Tree::from_terms("bib(book(author,title),book(author,author,title),paper(title))")
            .unwrap(),
        bibliography(6, 3),
        random_tree(&TreeGenConfig {
            size: 20,
            shape: TreeShape::BoundedBranching { max_children: 3 },
            alphabet: 3,
            seed: 99,
        }),
    ]
}

/// Theorem 2 (PPLbin): the Boolean-matrix engine computes exactly the binary
/// query of the specification semantics, for a suite of variable-free
/// expressions including `except` at arbitrary positions.
#[test]
fn theorem2_pplbin_matrix_engine_is_correct() {
    let suite = [
        "child::*/child::*",
        "descendant::author union child::paper/child::title",
        "descendant::* except child::*",
        "child::*[not(child::author)]/descendant::title",
        "(child::book intersect descendant::book)[child::author]",
        "self::bib/child::book[child::author[following_sibling::author]]",
    ];
    for tree in sample_trees() {
        for src in suite {
            let path = parse_path(src).unwrap();
            assert!(check_pplbin(&path).is_ok(), "{src} should be variable-free");
            let bin = from_variable_free_path(&path).unwrap();
            let fast = matrix_binary(&tree, &bin).pairs();
            let slow = naive_binary(&tree, &path).unwrap();
            assert_eq!(fast, slow, "{src} on {tree}");
        }
    }
}

/// Theorem 1 (PPL): the full pipeline — Definition 1 check, Fig. 7
/// translation, Lemma 3 normalisation, Fig. 8 answering — agrees with the
/// naive n-ary semantics on every query of the suite.
#[test]
fn theorem1_ppl_pipeline_is_correct() {
    let suite: Vec<(&str, Vec<&str>)> = vec![
        (
            "descendant::book[child::author[. is $y] and child::title[. is $z]]",
            vec!["y", "z"],
        ),
        ("descendant::author[. is $a]", vec!["a"]),
        (
            "descendant::author[. is $x] union descendant::title[. is $x]",
            vec!["x"],
        ),
        ("$s/child::*[. is $e]", vec!["s", "e"]),
        ("(descendant::* except descendant::author)[. is $n]", vec!["n"]),
        ("descendant::*[not(child::*)][. is $leaf]", vec!["leaf"]),
    ];
    for tree in sample_trees() {
        let doc = Document::from_tree(tree);
        for (src, outputs) in &suite {
            let vars: Vec<Var> = outputs.iter().map(|n| Var::new(n)).collect();
            let path = parse_path(src).unwrap();
            assert!(check_ppl(&path).is_ok(), "{src} should be in PPL");
            let compiled = PplQuery::compile(src, outputs).unwrap();
            let fast: BTreeSet<Vec<NodeId>> =
                compiled.answers(&doc).unwrap().tuples().iter().cloned().collect();
            let slow = answer_nary(doc.tree(), &path, &vars).unwrap();
            assert_eq!(fast, slow, "{src} on {}", doc.to_terms());
        }
    }
}

/// Proposition 5: the translations between PPL and HCL⁻(PPLbin) preserve
/// query answers in both directions.
#[test]
fn proposition5_translation_round_trips() {
    let suite = [
        "descendant::book[child::author[. is $y] and child::title[. is $z]]",
        "descendant::author[. is $x] union descendant::title[. is $x]",
        "$x/child::author[. is $y]",
        "descendant::*[$x is $y]",
    ];
    for tree in sample_trees() {
        for src in suite {
            let ppl = parse_path(src).unwrap();
            let vars: Vec<Var> = ppl.free_vars().into_iter().collect();
            let hcl = ppl_to_hcl(&ppl).unwrap();
            assert!(hcl.is_hcl_minus(), "Fig. 7 image must satisfy NVS(/): {src}");
            let via_hcl = answer_hcl_pplbin(&tree, &hcl, &vars).unwrap();
            let via_naive = answer_nary(&tree, &ppl, &vars).unwrap();
            assert_eq!(via_hcl, via_naive, "forward direction broken for {src}");

            // Backward: the HCL expression mapped back to PPL is equivalent.
            let back = hcl_to_ppl(&hcl);
            let back_ans = answer_nary(&tree, &back, &vars).unwrap();
            assert_eq!(back_ans, via_naive, "backward direction broken for {src}");
        }
    }
}

/// Lemma 1 / Proposition 1: the FO → Core XPath 2.0 translation preserves
/// satisfaction and n-ary answers.
#[test]
fn lemma1_fo_translation_preserves_answers() {
    let formulas: Vec<(&str, Vec<&str>)> = vec![
        ("lab(book, x) and lab(title, y) and chstar(x, y)", vec!["x", "y"]),
        ("exists b. lab(book, b) and chstar(b, x) and lab(author, x)", vec!["x"]),
        ("lab(book, x) and nsstar(x, y) and lab(paper, y)", vec!["x", "y"]),
        ("not (exists a. lab(author, a) and chstar(x, a)) and lab(book, x)", vec!["x"]),
    ];
    for tree in sample_trees().into_iter().take(3) {
        for (src, outputs) in &formulas {
            let phi = parse_formula(src).unwrap();
            let vars: Vec<Var> = outputs.iter().map(|n| Var::new(n)).collect();
            let fo_side = fo_answer_nary(&tree, &phi, &vars);
            let xpath = fo_to_xpath(&phi);
            let xp_side = answer_nary(&tree, &xpath, &vars).unwrap();
            assert_eq!(fo_side, xp_side, "{src} on {tree}");
        }
    }
}

/// Proposition 3: the SAT reduction is faithful (non-emptiness iff
/// satisfiability) and its image is rejected by the PPL checker.
#[test]
fn proposition3_sat_reduction_is_faithful_and_rejected() {
    for seed in 0..4 {
        let instance = random_3sat(3, 5, seed);
        let tree = encode_sat_tree(&instance);
        let (query, vars) = encode_sat_query(&instance);
        assert!(check_ppl(&query).is_err(), "the encoding must share variables");
        let doc = Document::from_tree(tree);
        let nonempty = !Engine::NaiveEnumeration
            .answer(&doc, &query, &[])
            .unwrap()
            .is_empty();
        assert_eq!(nonempty, instance.brute_force_satisfiable(), "seed {seed}");
        // Every answer over the assignment variables is a satisfying
        // assignment.
        let answers = Engine::NaiveEnumeration.answer(&doc, &query, &vars).unwrap();
        for tuple in answers.tuples() {
            let assignment: Vec<bool> = tuple
                .iter()
                .map(|&n| doc.label(n) == "true")
                .collect();
            assert!(instance.evaluate(&assignment));
        }
    }
}

/// Propositions 7/8: on union-free HCL⁻ queries, Yannakakis over the ACQ
/// image agrees with the Fig. 8 algorithm (and with brute force).
#[test]
fn propositions7_8_yannakakis_matches_hcl() {
    use xpath_hcl::Hcl;
    let bin = |s: &str| from_variable_free_path(&parse_path(s).unwrap()).unwrap();
    let tree = bibliography(5, 3);
    let queries: Vec<(Hcl<_>, Vec<Var>)> = vec![
        (
            Hcl::Atom(bin("descendant::book"))
                .then(Hcl::Filter(Box::new(
                    Hcl::Atom(bin("child::author")).then(Hcl::Var(Var::new("a"))),
                )))
                .then(Hcl::Atom(bin("child::title")))
                .then(Hcl::Var(Var::new("t"))),
            vec![Var::new("a"), Var::new("t")],
        ),
        (
            Hcl::Atom(bin("child::*")).then(Hcl::Var(Var::new("b"))),
            vec![Var::new("b")],
        ),
    ];
    for (hcl, output) in queries {
        let via_hcl = answer_hcl_pplbin(&tree, &hcl, &output).unwrap();
        let (cq, db) = hcl_to_acq(&tree, &hcl, &output).unwrap();
        assert!(gyo_join_forest(&cq).is_some(), "HCL⁻ images must be acyclic");
        let via_acq = answer_acq(&cq, &db).unwrap();
        let via_brute = brute_force_answer(&cq, &db);
        assert_eq!(via_acq, via_brute);
        assert_eq!(via_acq, via_hcl);
    }
}

/// Proposition 4 / Fig. 4: the embedding of variable-free Core XPath 2.0
/// into PPLbin preserves binary queries (including the corrected `[not P]`
/// case discussed in DESIGN.md).
#[test]
fn proposition4_variable_free_embedding() {
    let suite = [
        "child::*[not(child::author)]",
        "child::*[not(child::author and child::title)]",
        "child::*[not(not(child::author))]",
        "child::book intersect descendant::book",
        "descendant::* except descendant::*/descendant::*",
        "child::*[. is .]",
    ];
    for tree in sample_trees() {
        for src in suite {
            let path = parse_path(src).unwrap();
            let bin = from_variable_free_path(&path).unwrap();
            assert_eq!(
                matrix_binary(&tree, &bin).pairs(),
                naive_binary(&tree, &path).unwrap(),
                "{src} on {tree}"
            );
        }
    }
}

/// End-to-end sanity: XML round trip, query compile, answer, render.
#[test]
fn end_to_end_xml_pipeline() {
    let xml = xpath_xml::to_xml(&bibliography(8, 2));
    let doc = Document::from_xml(&xml).unwrap();
    let q = PplQuery::compile(
        "descendant::book[child::author[. is $a] and child::title[. is $t]]",
        &["a", "t"],
    )
    .unwrap();
    let answers = q.answers(&doc).unwrap();
    assert!(!answers.is_empty());
    // Model checking under an explicit assignment, through the naive
    // evaluator, agrees with membership in the answer set.
    let first = answers.tuples()[0].clone();
    let alpha = Assignment::from_pairs([
        (Var::new("a"), first[0]),
        (Var::new("t"), first[1]),
    ]);
    assert!(xpath_naive::boolean_query(doc.tree(), q.source(), &alpha).unwrap());
}
